"""The paper's research agenda (§5) as a typed registry.

The discussion section sorts open problems into easy / moderate / hard.
Keeping them as data lets the analysis layer link each simulated
experiment to the agenda item it informs, and lets EXPERIMENTS.md be
generated with full cross-references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ReproError

__all__ = ["Difficulty", "AgendaItem", "AGENDA", "items_by_difficulty", "experiments_informing"]


class Difficulty:
    EASY = "easy"
    MODERATE = "moderate"
    HARD = "hard"

    ALL = (EASY, MODERATE, HARD)


@dataclass(frozen=True)
class AgendaItem:
    """One open problem from §5."""

    key: str
    difficulty: str
    title: str
    summary: str
    informed_by_experiments: Tuple[str, ...] = ()
    technical: bool = True  # §5.3 notes some problems are not purely technical

    def __post_init__(self) -> None:
        if self.difficulty not in Difficulty.ALL:
            raise ReproError(f"unknown difficulty {self.difficulty!r}")


AGENDA: Tuple[AgendaItem, ...] = (
    # §5.1 Easy
    AgendaItem(
        key="blockchain_perf_security",
        difficulty=Difficulty.EASY,
        title="Studying the performance and security of blockchain-based systems",
        summary=(
            "Hacker communities built many blockchain systems but neglected "
            "performance evaluation and security models under new requirements."
        ),
        informed_by_experiments=("E6", "E7"),
    ),
    AgendaItem(
        key="build_new_primitives",
        difficulty=Difficulty.EASY,
        title="Design, build, and evaluate new decentralized systems and primitives",
        summary="Classic systems-research work applied to decentralization.",
        informed_by_experiments=("E4", "E5", "E8"),
    ),
    AgendaItem(
        key="federated_spof",
        difficulty=Difficulty.EASY,
        title="Eliminating single points of failure in federated approaches",
        summary=(
            "Federated systems are an ideal stepping stone but often lack "
            "canonical fault-tolerance goals."
        ),
        informed_by_experiments=("E4",),
    ),
    # §5.2 Moderate
    AgendaItem(
        key="researcher_user_mismatch",
        difficulty=Difficulty.MODERATE,
        title="Overcoming the mismatch between researcher objectives and user needs",
        summary="Systems solve exciting problems while user needs stay mundane.",
        technical=False,
    ),
    AgendaItem(
        key="research_hacker_gap",
        difficulty=Difficulty.MODERATE,
        title="Bridging the research and hacker communities",
        summary=(
            "Federated projects ship without modern privacy mechanisms; "
            "pluggable toolkits could close the gap."
        ),
        informed_by_experiments=("E5",),
    ),
    AgendaItem(
        key="quality_vs_quantity",
        difficulty=Difficulty.MODERATE,
        title="Grappling with infrastructure quality vs. quantity",
        summary=(
            "Device capacity is sufficient in aggregate (Table 3) but far "
            "poorer per unit; systems must cope with intermittency, failures, "
            "and variable performance."
        ),
        informed_by_experiments=("E3", "E9"),
    ),
    # §5.3 Hard
    AgendaItem(
        key="incentives",
        difficulty=Difficulty.HARD,
        title="Incentivizing development of democratized Internet systems",
        summary="Alternatives need engineering effort comparable to the incumbents'.",
        technical=False,
    ),
    AgendaItem(
        key="authority_infrastructure_decoupling",
        difficulty=Difficulty.HARD,
        title="Decoupling authority from infrastructure",
        summary=(
            "Systems that keep user control without being rigid about the "
            "infrastructure they run on (e.g. encrypted services on clouds)."
        ),
        informed_by_experiments=("E7",),
    ),
    AgendaItem(
        key="prevent_refeudalization",
        difficulty=Difficulty.HARD,
        title="Preventing the re-emergence of feudalism",
        summary=(
            "Economies of scale pull toward centralization; not an entirely "
            "technical problem."
        ),
        technical=False,
    ),
)


def items_by_difficulty(difficulty: str) -> List[AgendaItem]:
    if difficulty not in Difficulty.ALL:
        raise ReproError(f"unknown difficulty {difficulty!r}")
    return [item for item in AGENDA if item.difficulty == difficulty]


def experiments_informing() -> Dict[str, List[str]]:
    """Map experiment id -> agenda keys it informs (for EXPERIMENTS.md)."""
    out: Dict[str, List[str]] = {}
    for item in AGENDA:
        for experiment in item.informed_by_experiments:
            out.setdefault(experiment, []).append(item.key)
    return out
