"""Tests for the Table 3 feasibility model — the paper's only numbers."""

import pytest

from repro.core import (
    Capacity,
    CloudAssumptions,
    FeasibilityModel,
    paper_model,
)
from repro.core.units import EB, GB, MBPS, TBPS, MILLION
from repro.errors import FeasibilityError


class TestPaperNumbers:
    """Each assertion is a number printed in the paper's §4 / Table 3."""

    def test_cloud_bandwidth_200_tbps(self):
        assert paper_model().cloud_capacity().bandwidth_bps == pytest.approx(200 * TBPS)

    def test_cloud_cores_400_million(self):
        assert paper_model().cloud_capacity().cores == pytest.approx(400 * MILLION)

    def test_cloud_storage_80_eb(self):
        assert paper_model().cloud_capacity().storage_bytes == pytest.approx(80 * EB)

    def test_device_bandwidth_5000_tbps(self):
        assert paper_model().device_capacity().bandwidth_bps == pytest.approx(5000 * TBPS)

    def test_device_cores_500_million(self):
        assert paper_model().device_capacity().cores == pytest.approx(500 * MILLION)

    def test_device_storage_210_eb(self):
        assert paper_model().device_capacity().storage_bytes == pytest.approx(210 * EB)

    def test_table3_formatted_rows_match_paper(self):
        rows = paper_model().table3()
        assert rows == [
            {"resource": "Bandwidth", "cloud": "200 Tbps", "devices": "5000 Tbps"},
            {"resource": "Cores", "cloud": "400 M", "devices": "500 M"},
            {"resource": "Storage", "cloud": "80 EB", "devices": "210 EB"},
        ]

    def test_paper_conclusion_sufficient_capacity(self):
        # "Roughly speaking, there appears to be sufficient capacity."
        assert all(paper_model().sufficient().values())


class TestModelMechanics:
    def test_scale_factor_from_traffic_share(self):
        cloud = CloudAssumptions(google_traffic_share=0.25)
        assert cloud.scale_factor == 4.0

    def test_invalid_traffic_share_rejected(self):
        with pytest.raises(FeasibilityError):
            CloudAssumptions(google_traffic_share=0.0)

    def test_capacity_addition(self):
        a = Capacity(1.0, 2.0, 3.0)
        b = Capacity(10.0, 20.0, 30.0)
        total = a + b
        assert (total.bandwidth_bps, total.cores, total.storage_bytes) == (11.0, 22.0, 33.0)

    def test_capacity_covers(self):
        big = Capacity(10, 10, 10)
        small = Capacity(1, 1, 1)
        assert big.covers(small)
        assert not small.covers(big)

    def test_ratio_handles_zero_demand(self):
        supply = Capacity(1, 1, 1)
        assert supply.ratio_to(Capacity(0, 1, 1))["bandwidth"] == float("inf")

    def test_negative_capacity_rejected(self):
        with pytest.raises(FeasibilityError):
            Capacity(-1, 0, 0)

    def test_invalid_core_discount_rejected(self):
        with pytest.raises(FeasibilityError):
            FeasibilityModel(core_discount=0)


class TestSensitivity:
    def test_higher_core_discount_breaks_compute_sufficiency(self):
        model = paper_model()
        # Breakeven: 4e9 raw cores / 4e8 cloud cores = factor 10.
        assert model.breakeven_core_discount() == pytest.approx(10.0)
        assert model.with_core_discount(12.0).sufficient()["cores"] is False
        assert model.with_core_discount(9.0).sufficient()["cores"] is True

    def test_upstream_sweep_scales_bandwidth_linearly(self):
        model = paper_model()
        rows = model.sweep(
            lambda v: model.with_upstream_bps(v * MBPS), [0.01, 1.0, 10.0]
        )
        assert rows[1]["bandwidth"] == pytest.approx(25.0)  # 5000/200
        assert rows[2]["bandwidth"] == pytest.approx(250.0)
        # Even 10 kbps upstream fails to match cloud bandwidth.
        assert rows[0]["bandwidth"] < 1.0

    def test_population_scaling(self):
        model = paper_model().with_populations_scaled(0.5)
        assert model.device_capacity().storage_bytes == pytest.approx(105 * EB)

    def test_population_scale_rejects_negative(self):
        with pytest.raises(FeasibilityError):
            paper_model().with_populations_scaled(-1)

    def test_storage_sufficiency_robust_to_half_fleet(self):
        # The paper's storage margin (210 vs 80) survives halving devices.
        assert paper_model().with_populations_scaled(0.5).sufficient()["storage"]

    def test_compute_margin_is_thin(self):
        # 500 vs 400 M cores: a 25% fleet shrink breaks compute sufficiency —
        # the paper's "roughly speaking" hedge, quantified.
        assert not paper_model().with_populations_scaled(0.7).sufficient()["cores"]
