"""CLI behavior of ``python -m repro lint``: exit codes and formats."""

import json
from pathlib import Path

from repro.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures"


class TestLintCommand:
    def test_clean_path_exits_zero(self, capsys):
        assert main(["lint", str(FIXTURES / "clean.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one_with_rule_ids(self, capsys):
        code = main(["lint", str(FIXTURES / "det001_random_import.py")])
        assert code == 1
        assert "DET001" in capsys.readouterr().out

    def test_json_format_emits_schema(self, capsys):
        code = main(["lint", "--format", "json",
                     str(FIXTURES / "err001_broad_except.py")])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert [f["rule"] for f in payload["findings"]] == ["ERR001"]

    def test_rules_filter(self, capsys):
        code = main(["lint", "--rules", "ERR001",
                     str(FIXTURES / "det001_random_import.py")])
        assert code == 0
        capsys.readouterr()

    def test_unknown_rule_exits_two(self, capsys):
        code = main(["lint", "--rules", "NOPE999", str(FIXTURES)])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        code = main(["lint", str(FIXTURES / "no_such_file.py")])
        assert code == 2
        capsys.readouterr()

    def test_list_rules_catalog(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003", "DET004",
                        "PAR001", "ERR001", "API001"):
            assert rule_id in out
