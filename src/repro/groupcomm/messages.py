"""Message and room types shared by every group-communication model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.crypto.hashing import hash_obj
from repro.errors import GroupCommError

__all__ = ["Audience", "Message", "Room"]


class Audience:
    """Access levels for a post (Persona/Lockr-style, §3.2)."""

    PUBLIC = "public"
    FRIENDS = "friends"
    CLOSE_FRIENDS = "close_friends"

    ALL = (PUBLIC, FRIENDS, CLOSE_FRIENDS)


@dataclass(frozen=True)
class Message:
    """One post: author, room, body, and where it was created.

    ``body`` may be ciphertext (see :mod:`repro.groupcomm.encryption`);
    ``encrypted`` records that.  ``audience`` is the author-defined access
    level (§3.2: PrPl/Persona let users define who may read what).
    ``msg_id`` is content-derived so replication layers can deduplicate.
    """

    author: str
    room: str
    body: Any
    sent_at: float
    encrypted: bool = False
    seq: int = 0
    audience: str = Audience.FRIENDS

    @property
    def msg_id(self) -> str:
        return hash_obj(
            {
                "author": self.author,
                "room": self.room,
                "body": self.body,
                "sent_at": self.sent_at,
                "seq": self.seq,
                "audience": self.audience,
            }
        )

    @property
    def metadata(self) -> Dict[str, Any]:
        """What an observer learns without reading the body: the §3.2
        metadata-leak surface (who talked, where, when)."""
        return {"author": self.author, "room": self.room, "sent_at": self.sent_at}


@dataclass
class Room:
    """A conversation context with a membership list."""

    room_id: str
    members: set = field(default_factory=set)
    public: bool = False

    def require_member(self, user: str) -> None:
        if not self.public and user not in self.members:
            raise GroupCommError(f"{user!r} is not a member of {self.room_id!r}")

    def add_member(self, user: str) -> None:
        self.members.add(user)

    def remove_member(self, user: str) -> None:
        self.members.discard(user)
