"""Unit coverage for the vectorized cohort engine (repro.sim.cohort)."""

import math

import pytest

from repro.errors import SimulationError
from repro.obs.metrics import Metrics
from repro.obs.runtime import observe
from repro.sim.cohort import CohortEngine, DeviceCohort
from repro.sim.rng import seeded_generator


def make_cohort(size=50, up=600.0, down=300.0, attrition=0.0, seed=11,
                **kwargs):
    return DeviceCohort(
        "test", size, up, down, attrition,
        generator=seeded_generator(seed, "test.cohort"), **kwargs,
    )


class TestDeviceCohortValidation:
    def test_size_must_be_positive(self):
        with pytest.raises(SimulationError):
            make_cohort(size=0)

    def test_dwell_means_must_be_positive(self):
        with pytest.raises(SimulationError):
            make_cohort(up=0.0)
        with pytest.raises(SimulationError):
            make_cohort(down=-1.0)

    def test_attrition_must_be_a_probability(self):
        with pytest.raises(SimulationError):
            make_cohort(attrition=1.5)
        with pytest.raises(SimulationError):
            make_cohort(attrition=-0.1)

    def test_rewind_rejected(self):
        cohort = make_cohort()
        cohort.advance_to(100.0)
        with pytest.raises(SimulationError):
            cohort.advance_to(50.0)


class TestDeviceCohortDynamics:
    def test_all_start_online_by_default(self):
        cohort = make_cohort(size=30)
        assert cohort.online_count() == 30
        assert cohort.availability_time_mean() == 1.0

    def test_start_offline_option(self):
        cohort = make_cohort(size=30, start_online=False)
        assert cohort.online_count() == 0
        assert cohort.availability_time_mean() == 0.0

    def test_flip_session_identity(self):
        # Every device starts online and strictly alternates, so
        # flips == 2*sessions + currently-offline, exactly.
        cohort = make_cohort(size=200)
        cohort.advance_to(5000.0)
        offline_now = cohort.size - cohort.online_count()
        assert cohort.flips == 2 * cohort.sessions() + offline_now

    def test_availability_approaches_stationary_mean(self):
        # up/(up+down) = 2/3; long horizon, many devices.
        cohort = make_cohort(size=2000, up=600.0, down=300.0, seed=3)
        cohort.advance_to(20_000.0)
        assert abs(cohort.availability_time_mean() - 2 / 3) < 0.03

    def test_advance_returns_step_flips(self):
        cohort = make_cohort(size=100)
        first = cohort.advance_to(1000.0)
        second = cohort.advance_to(2000.0)
        assert first + second == cohort.flips
        assert first > 0 and second > 0

    def test_no_flips_in_zero_width_window(self):
        cohort = make_cohort()
        cohort.advance_to(500.0)
        assert cohort.advance_to(500.0) == 0

    def test_full_attrition_departs_everyone_for_good(self):
        cohort = make_cohort(size=80, up=10.0, down=10.0, attrition=1.0)
        cohort.advance_to(1000.0)
        assert cohort.departed_count() == 80
        assert cohort.online_count() == 0
        # One flip each: online -> offline, then departed forever.
        assert cohort.flips == 80
        assert cohort.sessions() == 0
        assert all(math.isinf(t) for t in cohort.next_flip)

    def test_zero_attrition_never_departs(self):
        cohort = make_cohort(size=80, up=10.0, down=10.0, attrition=0.0)
        cohort.advance_to(1000.0)
        assert cohort.departed_count() == 0

    def test_partial_attrition_is_monotone_and_bounded(self):
        cohort = make_cohort(size=500, up=20.0, down=20.0, attrition=0.3)
        cohort.advance_to(200.0)
        early = cohort.departed_count()
        cohort.advance_to(2000.0)
        late = cohort.departed_count()
        assert 0 < early <= late <= 500

    def test_time_mean_tracks_online_integral(self):
        # With no flips possible before t (dwells are positive), the
        # time mean over a tiny horizon stays ~1.
        cohort = make_cohort(size=10, up=1e9, down=1e9)
        cohort.advance_to(100.0)
        assert cohort.availability_time_mean() == pytest.approx(1.0)

    def test_draw_accounting_matches_flip_structure(self):
        # size initial dwells + one redraw per non-departing flip +
        # one attrition draw per going-offline flip.
        cohort = make_cohort(size=100, attrition=0.0)
        cohort.advance_to(3000.0)
        assert cohort.draws == 100 + cohort.flips


class TestCohortEngine:
    def test_tick_must_be_positive(self):
        with pytest.raises(SimulationError):
            CohortEngine(tick=0.0)

    def test_add_rejects_advanced_cohort(self):
        engine = CohortEngine(tick=10.0)
        cohort = make_cohort()
        cohort.advance_to(5.0)
        with pytest.raises(SimulationError):
            engine.add(cohort)

    def test_run_backwards_rejected(self):
        engine = CohortEngine(tick=10.0)
        engine.run(100.0)
        with pytest.raises(SimulationError):
            engine.run(50.0)

    def test_partial_final_tick_lands_on_until(self):
        engine = CohortEngine(tick=30.0)
        cohort = engine.add(make_cohort())
        boundaries = []
        engine.run(100.0, on_tick=boundaries.append)
        assert boundaries == [30.0, 60.0, 90.0, 100.0]
        assert engine.now == 100.0
        assert cohort.now == 100.0
        assert engine.ticks == 4

    def test_cohorts_advance_in_lockstep(self):
        engine = CohortEngine(tick=25.0)
        a = engine.add(make_cohort(seed=1))
        b = engine.add(make_cohort(seed=2))
        seen = []
        engine.run(200.0, on_tick=lambda t: seen.append((a.now, b.now)))
        assert all(ta == tb for ta, tb in seen)

    def test_metrics_recorded_under_observation(self):
        metrics = Metrics()
        with observe(metrics=metrics):
            engine = CohortEngine(tick=50.0)
            cohort = engine.add(make_cohort(size=120))
            engine.run(1000.0)
        assert metrics.counter("cohort.devices") == 120
        assert metrics.counter("cohort.ticks") == 20
        assert metrics.counter("cohort.flips") == cohort.flips
        assert metrics.counter("cohort.draws") == cohort.draws - 120
        assert metrics.histogram("cohort.online_fraction").count == 20

    def test_no_observation_no_metrics(self):
        engine = CohortEngine(tick=50.0)
        engine.add(make_cohort())
        engine.run(500.0)
        assert engine._metrics is None

    def test_explicit_metrics_override(self):
        metrics = Metrics()
        engine = CohortEngine(tick=50.0, metrics=metrics)
        engine.add(make_cohort(size=10))
        engine.run(100.0)
        assert metrics.counter("cohort.devices") == 10
