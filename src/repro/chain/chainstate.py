"""Chain state: block storage, validation, fork choice, and reorgs.

Each :class:`ChainState` is one node's view of the blockchain.  It keeps
every valid block it has seen (a block *tree*), a ledger snapshot per
block, and selects the tip by cumulative work — Nakamoto's heaviest-chain
rule.  Reorganizations are therefore implicit: when a heavier branch
appears, :attr:`tip` simply moves, and readers asking for ledger state get
the snapshot of the new branch.

Snapshots-per-block trades memory for simplicity; at simulation scale
(10^3–10^4 blocks) this is the right trade and makes 51%-attack rewrites
(E6) trivially observable: after the attack, `state_at(tip)` no longer
contains the victim's name operation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.chain.block import Block, make_genesis
from repro.chain.ledger import LedgerRules, LedgerState, apply_transaction
from repro.chain.transaction import Transaction
from repro.errors import InvalidBlockError

__all__ = ["ChainState"]


class ChainState:
    """One node's validated view of the block tree."""

    def __init__(
        self,
        genesis: Optional[Block] = None,
        rules: Optional[LedgerRules] = None,
        premine: Optional[Dict[str, float]] = None,
    ):
        self.rules = rules or LedgerRules()
        self.genesis = genesis or make_genesis()
        genesis_state = LedgerState()
        if premine:
            for account, amount in premine.items():
                genesis_state._credit(account, amount)
        self._blocks: Dict[str, Block] = {self.genesis.block_id: self.genesis}
        self._states: Dict[str, LedgerState] = {
            self.genesis.block_id: genesis_state
        }
        self._work: Dict[str, float] = {
            self.genesis.block_id: self.genesis.difficulty
        }
        self._children: Dict[str, List[str]] = {}
        self._tip_id: str = self.genesis.block_id
        self.reorgs = 0
        self.rejected_blocks = 0

    # -- queries ------------------------------------------------------------

    @property
    def tip(self) -> Block:
        return self._blocks[self._tip_id]

    @property
    def height(self) -> int:
        return self.tip.height

    def block(self, block_id: str) -> Block:
        block = self._blocks.get(block_id)
        if block is None:
            raise InvalidBlockError(f"unknown block {block_id[:12]}")
        return block

    def has_block(self, block_id: str) -> bool:
        return block_id in self._blocks

    def cumulative_work(self, block_id: str) -> float:
        work = self._work.get(block_id)
        if work is None:
            raise InvalidBlockError(f"unknown block {block_id[:12]}")
        return work

    def state_at(self, block_id: Optional[str] = None) -> LedgerState:
        """Ledger snapshot after the given block (default: current tip).

        The returned state is a **copy**; mutating it cannot corrupt the
        chain.
        """
        target = block_id if block_id is not None else self._tip_id
        state = self._states.get(target)
        if state is None:
            raise InvalidBlockError(f"unknown block {target[:12]}")
        return state.copy()

    def main_chain(self) -> List[Block]:
        """Blocks from genesis to tip, inclusive."""
        chain: List[Block] = []
        current: Optional[Block] = self.tip
        while current is not None:
            chain.append(current)
            current = (
                self._blocks.get(current.parent_id)
                if not current.is_genesis
                else None
            )
        chain.reverse()
        return chain

    def block_at_height(self, height: int) -> Optional[Block]:
        """The main-chain block at a height, or None above tip."""
        if height > self.tip.height or height < 0:
            return None
        current = self.tip
        while current.height > height:
            current = self._blocks[current.parent_id]
        return current

    def confirmations(self, block_id: str) -> int:
        """How deep a block is under the current tip (0 if off-main-chain)."""
        block = self._blocks.get(block_id)
        if block is None:
            return 0
        on_main = self.block_at_height(block.height)
        if on_main is None or on_main.block_id != block_id:
            return 0
        return self.tip.height - block.height + 1

    def find_transaction(self, txid: str) -> Optional[int]:
        """Main-chain height containing a txid, or None."""
        for block in self.main_chain():
            for tx in block.transactions:
                if tx.txid == txid:
                    return block.height
        return None

    # -- block acceptance -----------------------------------------------------

    def add_block(self, block: Block) -> bool:
        """Validate and store a block; returns True if it became the tip.

        Raises :class:`InvalidBlockError` for invalid blocks (unknown
        parent, bad height, invalid transactions).  Duplicate blocks are
        accepted idempotently (returns False).
        """
        if block.block_id in self._blocks:
            return False
        parent = self._blocks.get(block.parent_id)
        if parent is None:
            self.rejected_blocks += 1
            raise InvalidBlockError(
                f"orphan block {block.block_id[:12]}: unknown parent"
                f" {block.parent_id[:12]}"
            )
        if block.height != parent.height + 1:
            self.rejected_blocks += 1
            raise InvalidBlockError(
                f"block height {block.height} != parent height+1"
            )
        if block.timestamp < parent.timestamp:
            self.rejected_blocks += 1
            raise InvalidBlockError("block timestamp precedes its parent")
        try:
            block.validate_shape()
            new_state = self._apply_block(block)
        except InvalidBlockError:
            self.rejected_blocks += 1
            raise

        self._blocks[block.block_id] = block
        self._states[block.block_id] = new_state
        self._work[block.block_id] = (
            self._work[block.parent_id] + block.difficulty
        )
        self._children.setdefault(block.parent_id, []).append(block.block_id)

        return self._maybe_advance_tip(block)

    def _apply_block(self, block: Block) -> LedgerState:
        state = self._states[block.parent_id].copy()
        miner_account = None
        for tx in block.transactions:
            if tx.is_coinbase:
                miner_account = tx.payload.get("to")
                break
        for tx in block.transactions:
            try:
                apply_transaction(
                    state, tx, block.height, self.rules, fees_to=miner_account
                )
            except Exception as exc:
                raise InvalidBlockError(
                    f"block {block.block_id[:12]} contains invalid tx"
                    f" {tx.txid[:12]}: {exc}"
                ) from exc
        return state

    def _maybe_advance_tip(self, block: Block) -> bool:
        new_work = self._work[block.block_id]
        old_work = self._work[self._tip_id]
        if new_work < old_work:
            return False
        if new_work == old_work and block.block_id >= self._tip_id:
            return False  # deterministic tie-break: keep lexicographic min
        became_reorg = block.parent_id != self._tip_id
        self._tip_id = block.block_id
        if became_reorg:
            self.reorgs += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ChainState(height={self.height}, blocks={len(self._blocks)},"
            f" reorgs={self.reorgs})"
        )
