#!/usr/bin/env python3
"""Hostless web applications (§3.4): publish, fork, and survive on a swarm.

A developer publishes a ZeroNet-style site (address = public key), a
visitor population seeds it, the author walks away, and the site lives or
dies with its popularity.  A second developer forks the site Beaker-style.

Run:  python examples/webapp_swarm.py
"""

from repro.analysis import render_table
from repro.net import ConstantLatency, Network
from repro.sim import RngStreams, Simulator
from repro.webapps import HostlessSite, SiteSwarm, Tracker, VisitorProcess


def popularity_experiment() -> None:
    print("--- does the site survive its author? ---")
    rows = []
    for label, arrivals_per_min in (("niche blog", 0.2), ("popular app", 8.0)):
        sim = Simulator()
        streams = RngStreams(21)
        network = Network(sim, streams, latency=ConstantLatency(0.01))
        swarm = SiteSwarm(network, Tracker(network))

        site = HostlessSite(f"swarm-example-{label}")
        site.write_file("index.html", b"<h1>served by whoever is here</h1>")
        site.write_file("app.js", b"render()")
        bundle = site.publish()
        address = bundle.manifest.site_address

        def bootstrap():
            yield from swarm.seed("author", bundle)
            yield 300.0
            yield from swarm.stop_seeding("author", address)

        population = VisitorProcess(
            swarm, address, streams,
            arrival_rate=arrivals_per_min / 60.0, mean_seed_time=120.0,
        )
        population.start()
        sim.spawn(bootstrap())
        sim.run(until=4000.0)
        population.stop()
        rows.append({
            "site": label,
            "arrivals": population.stats.arrivals,
            "successful_visits": population.stats.successes,
            "availability": f"{population.stats.availability:.2f}",
            "seeders_at_end": len(swarm.seeders_of(address)),
        })
    print(render_table(rows))
    print("(the author seeded only the first 300 simulated seconds)")


def fork_experiment() -> None:
    print("\n--- Beaker-style forking ---")
    original = HostlessSite("original-wiki")
    original.write_file("index.html", b"<h1>wiki v1</h1>")
    original.write_file("style.css", b"body{}")
    original.publish()

    fork = original.fork("community-fork")
    fork.write_file("index.html", b"<h1>wiki v1 - community edition</h1>")
    bundle = fork.publish()

    print(f"original address: {original.address[:20]}...")
    print(f"fork address:     {fork.address[:20]}...")
    print(f"fork manifest records parent:"
          f" {bundle.manifest.parent_address[:20]}...")
    print(f"fork bundle verifies: {bundle.verify()}")
    print("openness at the code level: anyone can fork a site they visit;"
          " provenance stays cryptographically attributable.")


if __name__ == "__main__":
    popularity_experiment()
    fork_experiment()
