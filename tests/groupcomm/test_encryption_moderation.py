"""Tests for the ratchet-session model and moderation policies."""

import pytest

from repro.crypto import sha256_hex
from repro.errors import CryptoError, GroupCommError
from repro.groupcomm import (
    KeywordPolicy,
    Message,
    NoModeration,
    PerInstancePolicy,
    RatchetSession,
    ReputationPolicy,
    evaluate_policies,
)


def make_pair(secret="shared-secret"):
    return RatchetSession(secret), RatchetSession(secret)


class TestRatchetSession:
    def test_encrypt_decrypt_roundtrip(self):
        alice, bob = make_pair()
        ct = alice.encrypt({"text": "hello"})
        assert bob.decrypt(ct, peer=alice) == {"text": "hello"}

    def test_each_message_fresh_key(self):
        alice, _ = make_pair()
        c1, c2 = alice.encrypt("a"), alice.encrypt("b")
        assert c1.key_id != c2.key_id

    def test_wrong_secret_cannot_decrypt(self):
        alice, _ = make_pair("secret-1")
        eve = RatchetSession("secret-2")
        ct = alice.encrypt("private")
        with pytest.raises(CryptoError):
            eve.decrypt(ct, peer=alice)

    def test_out_of_order_decryption_works(self):
        alice, bob = make_pair()
        c1, c2, c3 = alice.encrypt("1"), alice.encrypt("2"), alice.encrypt("3")
        assert bob.decrypt(c3, peer=alice) == "3"
        assert bob.decrypt(c1, peer=alice) == "1"
        assert bob.decrypt(c2, peer=alice) == "2"

    def test_forward_secrecy_on_compromise(self):
        alice, bob = make_pair()
        old = alice.encrypt("old message")
        leak = alice.compromise()  # state leaked AFTER old message
        new = alice.encrypt("new message")
        assert not leak.can_read(old)
        assert leak.can_read(new)
        assert leak.read(new, sender=alice) == "new message"
        with pytest.raises(CryptoError):
            leak.read(old, sender=alice)

    def test_rekey_restores_security(self):
        alice, bob = make_pair()
        leak = alice.compromise()
        alice.rekey()  # DH ratchet step after the compromise
        fresh = alice.encrypt("post-compromise")
        assert not leak.can_read(fresh, victim_rekeyed=True)

    def test_no_rekey_leaves_future_exposed(self):
        alice, bob = make_pair()
        leak = alice.compromise()
        alice.rekey()
        fresh = alice.encrypt("still exposed without fresh DH semantics")
        assert leak.can_read(fresh, victim_rekeyed=False)

    def test_empty_secret_rejected(self):
        with pytest.raises(CryptoError):
            RatchetSession("")

    def test_cross_epoch_decryption(self):
        alice, bob = make_pair()
        c0 = alice.encrypt("epoch0")
        alice.rekey()
        bob.rekey()
        c1 = alice.encrypt("epoch1")
        assert bob.decrypt(c0, peer=alice) == "epoch0"
        assert bob.decrypt(c1, peer=alice) == "epoch1"


def msg(author, body, seq=0):
    return Message(author=author, room="r", body=body, sent_at=0.0, seq=seq)


class TestModerationPolicies:
    def test_no_moderation_passes_all(self):
        traffic = [msg("spammer", "BUY NOW", i) for i in range(5)]
        outcome = evaluate_policies(
            NoModeration(), traffic, spam_ids={m.msg_id for m in traffic}
        )
        assert outcome.spam_delivered == 5
        assert outcome.collateral_rate == 0.0

    def test_keyword_policy_blocks_matching(self):
        spam = [msg("s", f"buy cheap pills {i}", i) for i in range(4)]
        ham = [msg("h", f"lunch at noon {i}", i) for i in range(4)]
        outcome = evaluate_policies(
            KeywordPolicy(["cheap pills"]),
            spam + ham,
            spam_ids={m.msg_id for m in spam},
        )
        assert outcome.spam_delivered == 0
        assert outcome.legitimate_blocked == 0

    def test_keyword_policy_collateral_damage(self):
        # A medical discussion tripping the same filter.
        ham = [msg("dr", "this prescription covers cheap pills safely")]
        outcome = evaluate_policies(
            KeywordPolicy(["cheap pills"]), ham, spam_ids=set()
        )
        assert outcome.legitimate_blocked == 1
        assert outcome.collateral_rate == 1.0

    def test_keyword_policy_requires_keywords(self):
        with pytest.raises(GroupCommError):
            KeywordPolicy([])

    def test_reputation_policy_learns_from_reports(self):
        spam = [msg("spammer", f"scam {i}", i) for i in range(10)]
        policy = ReputationPolicy(report_threshold=3)
        outcome = evaluate_policies(
            policy, spam, spam_ids={m.msg_id for m in spam},
            reporters_per_spam=1,
        )
        # First 3 delivered (reports accumulate), rest blocked.
        assert outcome.spam_delivered == 3
        assert "spammer" in policy.banned_authors

    def test_reputation_threshold_validation(self):
        with pytest.raises(GroupCommError):
            ReputationPolicy(report_threshold=0)

    def test_per_instance_policies_differ(self):
        strict = KeywordPolicy(["politics"])
        lax = NoModeration()
        fed_policy = PerInstancePolicy({"strict.social": strict, "lax.social": lax})
        message = msg("u", "let's talk politics")
        delivery = fed_policy.delivery_map(message)
        assert delivery == {"strict.social": False, "lax.social": True}
        # Reachable somewhere in the federation: no global censorship.
        assert fed_policy.allows(message)

    def test_per_instance_unknown_instance(self):
        fed_policy = PerInstancePolicy({"a": NoModeration()})
        with pytest.raises(GroupCommError):
            fed_policy.allows_at("b", msg("u", "x"))

    def test_per_instance_requires_instances(self):
        with pytest.raises(GroupCommError):
            PerInstancePolicy({})

    def test_outcome_rates(self):
        spam = [msg("s", "junk", i) for i in range(4)]
        ham = [msg("h", "hello", i) for i in range(6)]
        outcome = evaluate_policies(
            NoModeration(), spam + ham, spam_ids={m.msg_id for m in spam}
        )
        assert outcome.spam_pass_rate == 1.0
        assert outcome.legitimate_total == 6
