"""PAR001: unpicklable callables handed to process-pool entry points.

:class:`repro.analysis.runner.SweepRunner` silently falls back to
serial execution when the experiment function cannot be pickled (a
lambda, a closure, a nested ``def``) — correct but slow, and exactly the
bug class the per-point top-level experiment functions were introduced
to avoid.  ``ProcessPoolExecutor.submit``/``map`` crash outright.  This
rule catches both at review time.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.engine import LintContext, Rule, register
from repro.lint.findings import Finding

__all__ = ["UnpicklableToPool"]

#: Methods that ship their callable argument to worker processes.
POOL_METHODS = frozenset({"run", "submit", "map"})


def _unpicklable_names(tree: ast.Module) -> Set[str]:
    """Names that cannot ship to a worker process: anything bound to a
    lambda, plus any ``def`` nested inside another function (a closure).

    Name-based, not scope-based — a rare shadowing false positive is an
    acceptable price for a linter, and ``# repro: noqa[PAR001]`` exists.
    """
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(node):
                if inner is not node and isinstance(
                    inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    names.add(inner.name)
    return names


@register
class UnpicklableToPool(Rule):
    rule_id = "PAR001"
    title = "lambda or nested function passed to a process-pool method"
    rationale = (
        "SweepRunner.run / ProcessPoolExecutor.submit|map pickle their"
        " callable to ship it to workers; lambdas and nested functions"
        " cannot be pickled, forcing a silent serial fallback (runner) or"
        " a crash (executor). Pass a top-level function."
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        bad_names = _unpicklable_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in POOL_METHODS
            ):
                continue
            for arg in node.args:
                if isinstance(arg, ast.Lambda):
                    yield ctx.finding(
                        self.rule_id, arg,
                        f"lambda passed to .{node.func.attr}(); process"
                        " pools need a top-level picklable callable",
                    )
                elif isinstance(arg, ast.Name) and arg.id in bad_names:
                    yield ctx.finding(
                        self.rule_id, arg,
                        f"{arg.id!r} is a lambda or nested function;"
                        f" .{node.func.attr}() needs a top-level picklable"
                        " callable",
                    )
