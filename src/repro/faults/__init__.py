"""Deterministic fault injection and invariant checking (the chaos layer).

``repro.faults`` turns the transport/churn fault knobs into a scripted,
reproducible subsystem:

* :mod:`repro.faults.plan` — declarative :class:`FaultPlan`s built from
  timed events (:class:`Partition`, :class:`Crash`, :class:`DropBurst`,
  :class:`LatencySpike`, :class:`Corrupt`, :class:`Censor`), JSON
  round-trippable.
* :mod:`repro.faults.injector` — :class:`FaultInjector` compiles a plan
  into simulator events driving ``Network``/``ChurnProcess`` hooks,
  seeded through named RNG streams so every run is bit-reproducible.
* :mod:`repro.faults.invariants` — :class:`InvariantHarness` sweeps
  registered predicates (message conservation, no double-resume,
  monotonic gauges, liveness deadlines, read-your-writes) and captures
  structured :class:`~repro.errors.InvariantViolation`\\ s.
* :mod:`repro.faults.presets` / :mod:`repro.faults.scenarios` — named
  plans and the experiment-shaped chaos workloads behind
  ``python -m repro chaos``.
"""

from repro.errors import FaultError, InvariantViolation
from repro.faults.injector import FaultInjector
from repro.faults.invariants import (
    Invariant,
    InvariantContext,
    InvariantHarness,
    eventually,
    message_conservation,
    monotonic,
    no_double_resume,
    read_your_writes,
)
from repro.faults.plan import (
    Censor,
    Corrupt,
    Crash,
    DropBurst,
    FaultPlan,
    LatencySpike,
    Partition,
)
from repro.faults.presets import PRESETS, load_plan, preset_plan
from repro.faults.scenarios import SCENARIOS, run_chaos

__all__ = [
    "Censor",
    "Corrupt",
    "Crash",
    "DropBurst",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "Invariant",
    "InvariantContext",
    "InvariantHarness",
    "InvariantViolation",
    "LatencySpike",
    "PRESETS",
    "Partition",
    "SCENARIOS",
    "eventually",
    "load_plan",
    "message_conservation",
    "monotonic",
    "no_double_resume",
    "preset_plan",
    "read_your_writes",
    "run_chaos",
]
