"""Property-based tests (hypothesis) on core data structures and invariants."""

import string

from hypothesis import assume, given, settings, strategies as st

from repro.chain import LedgerRules, LedgerState, TxKind, apply_transaction, make_transaction
from repro.crypto import MerkleTree, generate_keypair, hash_obj, verify
from repro.errors import InvalidTransactionError
from repro.gossip import ReplicaStore, Versioned
from repro.sim import Simulator, TimeWeightedGauge, summarize
from repro.storage import DataBlob, ErasureCode, seal_chunk, unseal_chunk
from repro.storage.erasure import gf_inv, gf_mul


# ---------------------------------------------------------------------------
# GF(256) field axioms
# ---------------------------------------------------------------------------

gf_elem = st.integers(min_value=0, max_value=255)
gf_nonzero = st.integers(min_value=1, max_value=255)


class TestGF256:
    @given(gf_elem, gf_elem)
    def test_multiplication_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(gf_elem, gf_elem, gf_elem)
    def test_multiplication_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(gf_elem)
    def test_one_is_identity(self, a):
        assert gf_mul(a, 1) == a

    @given(gf_nonzero)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(gf_elem, gf_elem, gf_elem)
    def test_distributive_over_xor(self, a, b, c):
        assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)


# ---------------------------------------------------------------------------
# Erasure coding: any k-subset decodes to the original
# ---------------------------------------------------------------------------

class TestErasureProperties:
    @given(
        data=st.binary(min_size=1, max_size=2000),
        k=st.integers(min_value=1, max_value=6),
        m=st.integers(min_value=0, max_value=4),
        subset_seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_k_shards_reconstruct(self, data, k, m, subset_seed):
        import random

        code = ErasureCode(k, m)
        shards = code.encode(data)
        subset = random.Random(subset_seed).sample(shards, k)
        assert code.decode(subset) == data

    @given(data=st.binary(min_size=1, max_size=500),
           k=st.integers(min_value=1, max_value=5),
           m=st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_systematic_data_shards_are_slices(self, data, k, m):
        code = ErasureCode(k, m)
        shards = code.encode(data)
        framed = len(data).to_bytes(4, "big") + data
        joined = b"".join(s.payload for s in shards[:k])
        assert joined.startswith(framed)


# ---------------------------------------------------------------------------
# Merkle trees: every proof verifies; no proof transfers across trees
# ---------------------------------------------------------------------------

class TestMerkleProperties:
    @given(leaves=st.lists(st.binary(min_size=0, max_size=64), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_all_proofs_verify(self, leaves):
        tree = MerkleTree(leaves)
        for i in range(len(leaves)):
            assert tree.proof(i).verify(tree.root)

    @given(
        leaves=st.lists(st.binary(min_size=1, max_size=32), min_size=2, max_size=20, unique=True),
        index=st.integers(min_value=0, max_value=19),
    )
    @settings(max_examples=40, deadline=None)
    def test_proof_does_not_verify_against_other_root(self, leaves, index):
        assume(index < len(leaves))
        tree = MerkleTree(leaves)
        other = MerkleTree(leaves[::-1] + [b"extra"])
        assume(tree.root != other.root)
        assert not tree.proof(index).verify(other.root)


# ---------------------------------------------------------------------------
# Sealing is a keyed involution and never the identity on nonempty chunks
# ---------------------------------------------------------------------------

class TestSealingProperties:
    @given(chunk=st.binary(min_size=1, max_size=512),
           replica=st.text(string.ascii_lowercase, min_size=1, max_size=10),
           index=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=60, deadline=None)
    def test_unseal_inverts_seal(self, chunk, replica, index):
        assert unseal_chunk(seal_chunk(chunk, replica, index), replica, index) == chunk

    @given(chunk=st.binary(min_size=8, max_size=256),
           index=st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_distinct_replicas_differ(self, chunk, index):
        assert seal_chunk(chunk, "r1", index) != seal_chunk(chunk, "r2", index)


# ---------------------------------------------------------------------------
# Ledger: value conservation and replay safety under arbitrary payments
# ---------------------------------------------------------------------------

class TestLedgerProperties:
    @given(
        amounts=st.lists(
            st.floats(min_value=0.01, max_value=50.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=15,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_payments_conserve_total_supply(self, amounts):
        rules = LedgerRules()
        alice = generate_keypair("prop-alice")
        bob = generate_keypair("prop-bob")
        state = LedgerState()
        state._credit(alice.public_key, 1000.0)
        state._credit(bob.public_key, 1000.0)
        initial = state.total_supply() + state.burned
        nonce = 0
        for amount in amounts:
            tx = make_transaction(
                alice, TxKind.PAY, {"to": bob.public_key, "amount": amount},
                nonce, fee=0.01,
            )
            try:
                apply_transaction(state, tx, 1, rules)
                nonce += 1
            except InvalidTransactionError:
                pass
        assert abs((state.total_supply() + state.burned) - initial) < 1e-6

    @given(amount=st.floats(min_value=0.01, max_value=10.0, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_replay_always_rejected(self, amount):
        rules = LedgerRules()
        alice = generate_keypair("prop-alice2")
        state = LedgerState()
        state._credit(alice.public_key, 1000.0)
        tx = make_transaction(alice, TxKind.PAY, {"to": "x", "amount": amount}, 0)
        apply_transaction(state, tx, 1, rules)
        try:
            apply_transaction(state, tx, 2, rules)
            replayed = True
        except InvalidTransactionError:
            replayed = False
        assert not replayed


# ---------------------------------------------------------------------------
# Signatures: verify(sign(m), m) always; verify(sign(m), m') never for m != m'
# ---------------------------------------------------------------------------

class TestSignatureProperties:
    @given(message=st.dictionaries(
        st.text(string.ascii_lowercase, min_size=1, max_size=8),
        st.one_of(st.integers(), st.text(max_size=20), st.booleans()),
        max_size=5,
    ))
    @settings(max_examples=50, deadline=None)
    def test_sign_verify_roundtrip(self, message):
        pair = generate_keypair("prop-signer")
        assert verify(pair.sign(message), message)

    @given(a=st.text(max_size=30), b=st.text(max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_wrong_message_rejected(self, a, b):
        assume(a != b)
        pair = generate_keypair("prop-signer2")
        assert not verify(pair.sign(a), b)


# ---------------------------------------------------------------------------
# LWW replica store: merge is commutative, idempotent, and convergent
# ---------------------------------------------------------------------------

versioned = st.builds(
    Versioned,
    value=st.integers(),
    counter=st.integers(min_value=1, max_value=100),
    writer=st.text(string.ascii_lowercase, min_size=1, max_size=4),
)


class TestReplicaStoreProperties:
    @given(items=st.lists(versioned, min_size=1, max_size=20),
           order_seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_merge_order_independent(self, items, order_seed):
        import random

        a, b = ReplicaStore(), ReplicaStore()
        for item in items:
            a.merge("k", item)
        shuffled = list(items)
        random.Random(order_seed).shuffle(shuffled)
        for item in shuffled:
            b.merge("k", item)
        assert a.item("k") == b.item("k")

    @given(item=versioned)
    def test_merge_idempotent(self, item):
        store = ReplicaStore()
        store.merge("k", item)
        assert not store.merge("k", item)  # second merge changes nothing


# ---------------------------------------------------------------------------
# Simulator: events fire in nondecreasing time order, FIFO at ties
# ---------------------------------------------------------------------------

class TestEngineProperties:
    @given(delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1, max_size=50,
    ))
    @settings(max_examples=50, deadline=None)
    def test_execution_order_sorted_by_time_then_fifo(self, delays):
        sim = Simulator()
        fired = []
        for i, delay in enumerate(delays):
            sim.schedule(delay, lambda i=i, d=delay: fired.append((d, i)))
        sim.run()
        assert fired == sorted(fired)  # time asc, insertion order at ties


# ---------------------------------------------------------------------------
# Monitors: summarize() bounds; gauge average within value bounds
# ---------------------------------------------------------------------------

class TestMonitorProperties:
    @given(values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1, max_size=100,
    ))
    @settings(max_examples=50, deadline=None)
    def test_summary_ordering_invariants(self, values):
        s = summarize(values)
        assert s.minimum <= s.p50 <= s.p90 <= s.p99 <= s.maximum
        assert s.minimum <= s.mean <= s.maximum
        assert s.stdev >= 0

    @given(steps=st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        ),
        min_size=1, max_size=30,
    ))
    @settings(max_examples=50, deadline=None)
    def test_gauge_average_bounded_by_extremes(self, steps):
        gauge = TimeWeightedGauge(initial=0.0)
        now = 0.0
        values = [0.0]
        for dt, value in steps:
            now += dt
            gauge.set(now, value)
            values.append(value)
        average = gauge.time_average(now + 1.0)
        assert min(values) - 1e-9 <= average <= max(values) + 1e-9


# ---------------------------------------------------------------------------
# Blobs: chunking round-trips; content id is a pure function of content
# ---------------------------------------------------------------------------

class TestBlobProperties:
    @given(data=st.binary(min_size=1, max_size=5000),
           chunk_size=st.integers(min_value=1, max_value=700))
    @settings(max_examples=60, deadline=None)
    def test_chunking_roundtrip(self, data, chunk_size):
        blob = DataBlob.from_bytes(data, chunk_size)
        assert blob.to_bytes() == data
        assert blob.size_bytes == len(data)

    @given(data=st.binary(min_size=1, max_size=1000))
    @settings(max_examples=30, deadline=None)
    def test_content_id_independent_of_chunking(self, data):
        # Same bytes, different chunk sizes -> same logical content but
        # different chunk boundaries; content_id is chunk-structure-aware,
        # so ids match only for identical chunking.
        a = DataBlob.from_bytes(data, 256)
        b = DataBlob.from_bytes(data, 256)
        assert a.content_id == b.content_id


# ---------------------------------------------------------------------------
# hash_obj canonicalization
# ---------------------------------------------------------------------------

json_scalars = st.one_of(
    st.integers(min_value=-1e9, max_value=1e9), st.text(max_size=20), st.booleans(), st.none()
)


class TestHashObjProperties:
    @given(mapping=st.dictionaries(st.text(max_size=10), json_scalars, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_key_order_never_matters(self, mapping):
        items = list(mapping.items())
        reversed_map = dict(reversed(items))
        assert hash_obj(mapping) == hash_obj(reversed_map)


# ---------------------------------------------------------------------------
# DHT ids and figures
# ---------------------------------------------------------------------------

class TestDhtIdProperties:
    @given(a=st.text(min_size=1, max_size=12), b=st.text(min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_bucket_index_symmetric(self, a, b):
        from repro.dht import bucket_index, node_id_for

        id_a, id_b = node_id_for(a), node_id_for(b)
        assume(id_a != id_b)
        assert bucket_index(id_a, id_b) == bucket_index(id_b, id_a)

    @given(name=st.text(min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_ids_in_range(self, name):
        from repro.dht import ID_BITS, key_for, node_id_for

        assert 0 <= node_id_for(name) < 2**ID_BITS
        assert 0 <= key_for(name) < 2**ID_BITS


class TestFigureProperties:
    @given(values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1, max_size=60,
    ))
    @settings(max_examples=50, deadline=None)
    def test_sparkline_length_and_charset(self, values):
        from repro.analysis import sparkline
        from repro.analysis.figures import _BLOCKS

        line = sparkline(values)
        assert len(line) == len(values)
        assert set(line) <= set(_BLOCKS)

    @given(
        n=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_ascii_plot_has_fixed_frame(self, n, seed):
        import random

        from repro.analysis import ascii_plot

        rng = random.Random(seed)
        xs = [rng.uniform(-10, 10) for _ in range(n)]
        ys = [rng.uniform(-10, 10) for _ in range(n)]
        out = ascii_plot(xs, ys, width=30, height=8)
        assert len(out.splitlines()) == 8 + 3
        assert "*" in out
