"""Property-based chaos testing: random bounded fault plans.

Hypothesis generates small-but-adversarial ``FaultPlan``s (overlapping
windows, unhealed partitions, crashes with and without restarts) and we
assert the two safety invariants every scenario in this repo relies on:

* **message conservation** — every sent message is delivered, dropped,
  or still in flight; nothing is double-counted or lost by the
  accounting itself, no matter which faults fire.
* **no double resume** — no combination of crash/heal/window events
  causes a process to be resumed twice (``sim.stale_resumes == 0``).

plus the reproducibility contract: the same ``(plan, seed)`` pair must
produce a byte-identical trace.
"""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import (
    Corrupt,
    Crash,
    DropBurst,
    FaultInjector,
    FaultPlan,
    InvariantHarness,
    LatencySpike,
    Partition,
    message_conservation,
    no_double_resume,
)
from repro.net import ConstantLatency, Network
from repro.obs import Tracer, observe
from repro.sim import RngStreams, Simulator

HORIZON = 100.0
NODES = ("n0", "n1", "n2", "n3")

# Keep CI runs bounded; run the full budget locally.  Applied per-test
# (not via load_profile, which would leak into other modules' defaults).
_MAX_EXAMPLES = 40 if os.environ.get("CI") else 200

chaos_settings = settings(
    max_examples=_MAX_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# --------------------------------------------------------------------------
# Strategies: bounded fault plans over the fixed 4-node topology.
# --------------------------------------------------------------------------

def times():
    return st.floats(min_value=1.0, max_value=HORIZON - 10.0,
                     allow_nan=False, allow_infinity=False)


def windows():
    return st.tuples(times(), times()).map(sorted).filter(
        lambda w: w[1] > w[0] + 0.5
    ).map(tuple)


def probs():
    return st.floats(min_value=0.05, max_value=0.95,
                     allow_nan=False, allow_infinity=False)


node_ids = st.sampled_from(NODES)


@st.composite
def partitions(draw):
    at = draw(times())
    heal = draw(st.one_of(
        st.none(),
        st.floats(min_value=at + 1.0, max_value=HORIZON,
                  allow_nan=False, allow_infinity=False),
    ))
    cut = draw(st.integers(min_value=1, max_value=len(NODES) - 1))
    return Partition((NODES[:cut], NODES[cut:]), at=at, heal_at=heal)


@st.composite
def crashes(draw):
    at = draw(times())
    restart = draw(st.one_of(
        st.none(),
        st.floats(min_value=at + 1.0, max_value=HORIZON,
                  allow_nan=False, allow_infinity=False),
    ))
    return Crash(draw(node_ids), at=at, restart_at=restart)


def drop_bursts():
    return st.builds(DropBurst, window=windows(), prob=probs())


def corrupts():
    return st.builds(Corrupt, window=windows(), prob=probs())


def latency_spikes():
    return st.builds(
        LatencySpike, window=windows(),
        factor=st.floats(min_value=1.1, max_value=10.0,
                         allow_nan=False, allow_infinity=False),
    )


def fault_plans():
    event = st.one_of(partitions(), crashes(), drop_bursts(),
                      corrupts(), latency_spikes())
    return st.lists(event, min_size=0, max_size=6).map(
        lambda evs: FaultPlan(evs, name="prop")
    )


# --------------------------------------------------------------------------
# A small generic workload: every node pings every other node on a
# staggered clock for the whole horizon.
# --------------------------------------------------------------------------

def run_workload(plan, seed, tracer=None):
    with observe(tracer=tracer):
        return _run_workload(plan, seed)


def _run_workload(plan, seed):
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams, latency=ConstantLatency(0.05),
                      loss_rate=0.05)
    for node_id in NODES:
        node = network.create_node(node_id)
        node.register_handler("ping", lambda n, payload, sender: None)

    for i, src in enumerate(NODES):
        for j, dst in enumerate(NODES):
            if src == dst:
                continue
            t = 1.0 + 0.7 * i + 0.3 * j
            while t < HORIZON - 5.0:
                sim.schedule_at(t, network.send, src, dst, "ping", t)
                t += 4.0

    injector = FaultInjector(sim, network, plan, streams)
    harness = InvariantHarness(sim, network, injector, interval=5.0)
    harness.add(message_conservation())
    harness.add(no_double_resume())
    injector.arm()
    harness.start()
    # Slack so in-flight messages settle.  Overlapping LatencySpike factors
    # multiply (documented in repro.faults.injector), so the settle window
    # must scale with the worst-case stacked amplification of the base
    # 0.05s link latency — a fixed constant strands amplified messages.
    amplification = 1.0
    for event in plan.events:
        if isinstance(event, LatencySpike):
            amplification *= event.factor
    sim.run(until=HORIZON + 60.0 + 0.05 * amplification)
    return sim, network, harness.finish()


@chaos_settings
@given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=2**20))
def test_invariants_hold_under_random_faults(plan, seed):
    sim, network, violations = run_workload(plan, seed)
    assert violations == []
    flow = network.flow_snapshot()
    assert flow["in_flight"] == 0
    assert flow["delivered"] + flow["dropped"] == flow["sent"]
    assert sim.stale_resumes == 0


@chaos_settings
@given(plan=fault_plans())
def test_invariants_hold_across_seeds(plan):
    for seed in (1, 2, 3):
        _, _, violations = run_workload(plan, seed)
        assert violations == []


@settings(parent=chaos_settings, max_examples=max(10, _MAX_EXAMPLES // 4))
@given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=2**20))
def test_same_plan_and_seed_reproduce_identical_traces(plan, seed):
    traces = []
    for _ in range(2):
        tracer = Tracer()
        run_workload(plan, seed, tracer=tracer)
        traces.append(tracer.to_jsonl())
    assert traces[0] == traces[1]


@chaos_settings
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_quiet_plan_is_fault_free(seed):
    """The empty plan injects nothing and heals nothing."""
    tracer = Tracer()
    run_workload(FaultPlan([], name="quiet"), seed, tracer=tracer)
    assert tracer.count("fault_injected") == 0
    assert tracer.count("fault_healed") == 0


# --------------------------------------------------------------------------
# Overlapping-window composition: the PR-10 heal-guard property.
# --------------------------------------------------------------------------

@st.composite
def overlapping_plans(draw):
    """Plans built to collide: every window edge is drawn from a pool of
    four instants, so identical and overlapping Partition/DropBurst
    windows — including events equal in every field — are the common
    case, not a rare one.  Exactly the shape that used to double-heal."""
    pool = sorted(draw(st.lists(
        st.sampled_from([10.0, 20.0, 30.0, 40.0, 55.0, 70.0]),
        min_size=4, max_size=4, unique=True,
    )))
    groups = (NODES[:2], NODES[2:])

    def window_events(count):
        events = []
        for _ in range(count):
            at = draw(st.sampled_from(pool[:-1]))
            heal = draw(st.one_of(st.none(), st.sampled_from(
                [t for t in pool if t > at]
            )))
            if draw(st.booleans()):
                events.append(Partition(groups, at=at, heal_at=heal))
            else:
                end = heal if heal is not None else HORIZON - 10.0
                events.append(DropBurst(window=(at, end), prob=0.5))
        return events

    return FaultPlan(window_events(draw(st.integers(2, 5))), name="overlap")


def run_overlap_workload(plan, seed):
    tracer = Tracer()
    with observe(tracer=tracer):
        sim = Simulator()
        streams = RngStreams(seed)
        network = Network(sim, streams, latency=ConstantLatency(0.05))
        for node_id in NODES:
            node = network.create_node(node_id)
            node.register_handler("ping", lambda n, payload, sender: None)
        for i, src in enumerate(NODES):
            dst = NODES[(i + 2) % len(NODES)]  # always cross-group
            t = 1.0
            while t < HORIZON - 5.0:
                sim.schedule_at(t + 0.7 * i, network.send,
                                src, dst, "ping", t)
                t += 3.0
        injector = FaultInjector(sim, network, plan, streams)
        harness = InvariantHarness(sim, network, injector, interval=5.0)
        harness.add(message_conservation())
        harness.add(no_double_resume())
        injector.arm()
        harness.start()
        sim.run(until=HORIZON + 30.0)
        return network, injector, tracer, harness.finish()


@chaos_settings
@given(plan=overlapping_plans(), seed=st.integers(min_value=0, max_value=2**20))
def test_overlapping_windows_conserve_messages_and_never_double_heal(
    plan, seed
):
    network, injector, tracer, violations = run_overlap_workload(plan, seed)
    assert violations == []
    flow = network.flow_snapshot()
    assert flow["in_flight"] == 0
    assert flow["delivered"] + flow["dropped"] == flow["sent"]
    # Last-writer-wins with guarded heals: a replaced event's heal is a
    # no-op, so heals can never outnumber injections — and each event
    # heals at most once even when another event equals it field-for-field.
    assert tracer.count("fault_healed") <= tracer.count("fault_injected")
    # If every partition in the plan carries a heal, none may leak past
    # its window: the last writer's heal always lands.
    if all(e.heal_at is not None
           for e in plan.events if isinstance(e, Partition)):
        assert not injector.partition_active
        assert network.can_reach(NODES[0], NODES[2])
