"""Suppression fixture: every violation carries a justified noqa."""

import random  # repro: noqa[DET001] - fixture exercising suppression


def swallow(fn):
    try:
        return fn()
    except Exception:  # repro: noqa - fixture: bare noqa suppresses all
        return random.random()
