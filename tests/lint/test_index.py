"""Unit tests for the whole-program index (repro.lint.index)."""

import ast
import json

from repro.lint.index import (
    ModuleFragment,
    ProjectIndex,
    build_fragment,
    _module_identity,
)


def fragment(path, source):
    return build_fragment(path, source, ast.parse(source))


def make_index(files):
    """files: {path: source} -> ProjectIndex."""
    return ProjectIndex([fragment(p, s) for p, s in files.items()])


class TestModuleIdentity:
    def test_repro_tree_paths_are_rooted_at_repro(self):
        module, package, is_pkg, _ = _module_identity(
            "/checkout/src/repro/sim/rng.py"
        )
        assert module == "repro.sim.rng"
        assert package == "repro.sim"
        assert not is_pkg

    def test_package_init_names_the_package_itself(self):
        module, package, is_pkg, _ = _module_identity(
            "/checkout/src/repro/net/__init__.py"
        )
        assert module == "repro.net"
        assert package == "repro"
        assert is_pkg

    def test_nested_repro_component_uses_the_last_one(self):
        module, _, _, _ = _module_identity(
            "/home/repro/work/src/repro/chain/ledger.py"
        )
        assert module == "repro.chain.ledger"

    def test_bare_file_is_its_own_module(self, tmp_path):
        target = tmp_path / "loose.py"
        target.write_text("x = 1\n")
        module, package, is_pkg, _ = _module_identity(str(target))
        assert module == "loose"
        assert package == ""
        assert not is_pkg

    def test_package_markers_extend_the_dotted_name(self, tmp_path):
        pkg = tmp_path / "mypkg" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "mypkg" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        target = pkg / "mod.py"
        target.write_text("x = 1\n")
        module, package, _, _ = _module_identity(str(target))
        assert module == "mypkg.sub.mod"
        assert package == "mypkg.sub"


class TestImportResolution:
    def test_plain_and_aliased_imports(self):
        frag = fragment("repro/net/a.py", (
            "import repro.sim.rng\n"
            "import repro.util as u\n"
        ))
        assert frag.module_aliases["repro.sim.rng"] == "repro.sim.rng"
        assert frag.module_aliases["u"] == "repro.util"
        assert sorted(m for m, _ in frag.runtime_imports) == [
            "repro.sim.rng", "repro.util",
        ]

    def test_from_import_records_symbols(self):
        frag = fragment("repro/net/a.py", (
            "from repro.sim.rng import seeded_rng as sr, RngStreams\n"
        ))
        assert frag.symbol_imports["sr"] == ("repro.sim.rng", "seeded_rng")
        assert frag.symbol_imports["RngStreams"] == (
            "repro.sim.rng", "RngStreams"
        )

    def test_relative_import_resolves_against_the_package(self):
        frag = fragment("repro/net/churn.py", (
            "from .gossip import fanout\n"
            "from ..sim import rng\n"
        ))
        assert frag.symbol_imports["fanout"] == ("repro.net.gossip", "fanout")
        assert frag.symbol_imports["rng"] == ("repro.sim", "rng")

    def test_relative_import_from_package_init(self):
        frag = fragment("repro/net/__init__.py", "from .churn import renew\n")
        assert frag.symbol_imports["renew"] == ("repro.net.churn", "renew")

    def test_type_checking_imports_are_not_runtime(self):
        frag = fragment("repro/net/a.py", (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    import repro.storage.proofs\n"
        ))
        targets = [m for m, _ in frag.runtime_imports]
        assert "repro.storage.proofs" not in targets
        # ... but the alias is still recorded for call resolution.
        assert "repro.storage.proofs" in frag.module_aliases

    def test_function_body_imports_are_lazy(self):
        frag = fragment("repro/net/a.py", (
            "def late():\n"
            "    import repro.storage.proofs\n"
        ))
        assert frag.runtime_imports == []
        assert "repro.storage.proofs" in frag.module_aliases

    def test_import_graph_resolves_symbol_import_to_submodule(self):
        index = make_index({
            "repro/net/__init__.py": "",
            "repro/net/churn.py": "x = 1\n",
            "repro/chain/a.py": "from repro.net import churn\n",
        })
        graph = index.import_graph()
        assert [m for m, _ in graph["repro.chain.a"]] == [
            "repro.net", "repro.net.churn",
        ]


class TestCallGraph:
    def test_local_and_symbol_imported_calls(self):
        index = make_index({
            "repro/util/helpers.py": "def helper():\n    return 1\n",
            "repro/net/a.py": (
                "from repro.util.helpers import helper\n"
                "def local():\n    return 2\n"
                "def entry():\n    return helper() + local()\n"
            ),
        })
        assert index.call_edges("repro.net.a.entry") == (
            "repro.net.a.local", "repro.util.helpers.helper",
        )

    def test_aliased_module_attr_call(self):
        index = make_index({
            "repro/util/helpers.py": "def helper():\n    return 1\n",
            "repro/net/a.py": (
                "import repro.util.helpers as uh\n"
                "def entry():\n    return uh.helper()\n"
            ),
        })
        assert index.call_edges("repro.net.a.entry") == (
            "repro.util.helpers.helper",
        )

    def test_self_method_call(self):
        index = make_index({
            "repro/net/a.py": (
                "class Node:\n"
                "    def tick(self):\n        return self.renew()\n"
                "    def renew(self):\n        return 1\n"
            ),
        })
        assert index.call_edges("repro.net.a.Node.tick") == (
            "repro.net.a.Node.renew",
        )

    def test_ctor_chained_method_call(self):
        index = make_index({
            "repro/net/b.py": (
                "class Peer:\n"
                "    def ping(self):\n        return 1\n"
            ),
            "repro/net/a.py": (
                "from repro.net.b import Peer\n"
                "def entry():\n    return Peer().ping()\n"
            ),
        })
        assert index.call_edges("repro.net.a.entry") == (
            "repro.net.b.Peer.ping",
        )

    def test_method_call_on_unknown_receiver_is_bounded_to_visible_classes(
        self,
    ):
        index = make_index({
            "repro/net/b.py": (
                "class Peer:\n"
                "    def ping(self):\n        return 1\n"
            ),
            "repro/net/c.py": (
                "class Ghost:\n"
                "    def ping(self):\n        return 2\n"
            ),
            "repro/net/a.py": (
                "from repro.net.b import Peer\n"
                "def entry(obj):\n    return obj.ping()\n"
            ),
        })
        # Ghost is not imported by a.py, so only Peer.ping is a candidate.
        assert index.call_edges("repro.net.a.entry") == (
            "repro.net.b.Peer.ping",
        )

    def test_hazard_routes_cross_module(self):
        index = make_index({
            "repro/util/clock.py": (
                "import time\n"
                "def read_clock():\n    return time.perf_counter()\n"
            ),
            "repro/sim/driver.py": (
                "from repro.util.clock import read_clock\n"
                "def sample():\n    return read_clock()\n"
            ),
        })
        routes = index.hazard_routes()
        assert "repro.sim.driver.sample" in routes
        next_hop, endpoint, hazard = routes["repro.sim.driver.sample"]
        assert endpoint == "repro.util.clock.read_clock"
        assert hazard.detail == "time.perf_counter"
        assert index.hazard_chain("repro.sim.driver.sample", routes) == [
            "repro.sim.driver.sample", "repro.util.clock.read_clock",
        ]


class TestStreamSites:
    def test_exact_literal_and_root(self):
        frag = fragment("repro/net/a.py", (
            "from repro.sim.rng import seeded_rng\n"
            "def f(seed):\n"
            "    return seeded_rng(4001, 'net.a.draw')\n"
        ))
        (site,) = frag.stream_sites
        assert site.api == "seeded_rng"
        assert site.prefix == "net.a.draw"
        assert site.exact
        assert site.root == 4001

    def test_fstring_gives_inexact_prefix(self):
        frag = fragment("repro/net/a.py", (
            "from repro.sim.rng import seeded_rng\n"
            "def f(seed, i):\n"
            "    return seeded_rng(seed, f'net.a.peer{i}')\n"
        ))
        (site,) = frag.stream_sites
        assert site.prefix == "net.a.peer"
        assert not site.exact
        assert site.root is None

    def test_name_indirection_constant_propagates(self):
        frag = fragment("repro/net/a.py", (
            "from repro.sim.rng import seeded_rng\n"
            "STREAM = 'net.a.flow'\n"
            "def f(seed):\n"
            "    return seeded_rng(seed, STREAM)\n"
        ))
        (site,) = frag.stream_sites
        assert site.prefix == "net.a.flow"
        assert site.exact

    def test_rebound_name_is_not_propagated(self):
        frag = fragment("repro/net/a.py", (
            "from repro.sim.rng import seeded_rng\n"
            "def f(seed, flag):\n"
            "    name = 'net.a.x'\n"
            "    name = 'net.a.y'\n"
            "    return seeded_rng(seed, name)\n"
        ))
        assert frag.stream_sites == []

    def test_streams_receiver_carries_the_root(self):
        frag = fragment("repro/net/a.py", (
            "from repro.sim.rng import RngStreams\n"
            "def f():\n"
            "    streams = RngStreams(3001)\n"
            "    return streams.stream('net.a.jitter')\n"
        ))
        (site,) = frag.stream_sites
        assert site.api == "stream"
        assert site.root == 3001

    def test_chained_ctor_receiver(self):
        frag = fragment("repro/net/a.py", (
            "from repro.sim.rng import RngStreams\n"
            "def f():\n"
            "    return RngStreams(7).generator('net.a.noise')\n"
        ))
        (site,) = frag.stream_sites
        assert site.api == "generator"
        assert site.root == 7

    def test_unrelated_stream_method_is_ignored(self):
        frag = fragment("repro/net/a.py", (
            "def f(fh):\n"
            "    return fh.stream()\n"
        ))
        assert frag.stream_sites == []


class TestFragmentRoundTrip:
    SOURCE = (
        "from repro.sim.rng import seeded_rng\n"
        "import repro.util.helpers as uh\n"
        "class Node:\n"
        "    def tick(self):\n"
        "        return self.renew() + uh.helper()\n"
        "    def renew(self):\n"
        "        return seeded_rng(11, 'net.a.renew').random()\n"
        "def free():\n"
        "    import random\n"
        "    return random.random()\n"
    )

    def test_round_trip_is_lossless_and_json_safe(self):
        frag = fragment("repro/net/a.py", self.SOURCE)
        doc = json.loads(json.dumps(frag.to_dict()))
        rebuilt = ModuleFragment.from_dict(doc)
        assert rebuilt == frag
        assert rebuilt.to_dict() == frag.to_dict()

    def test_rebuilt_fragment_indexes_identically(self):
        frag = fragment("repro/net/a.py", self.SOURCE)
        rebuilt = ModuleFragment.from_dict(frag.to_dict())
        cold = ProjectIndex([frag])
        warm = ProjectIndex([rebuilt])
        for qname in cold.functions:
            assert cold.call_edges(qname) == warm.call_edges(qname)
