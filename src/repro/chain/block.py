"""Blocks and block headers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.chain.transaction import Transaction
from repro.crypto.hashing import hash_obj
from repro.crypto.merkle import MerkleTree
from repro.errors import InvalidBlockError

__all__ = ["Block", "GENESIS_PARENT", "make_genesis", "make_block", "transactions_merkle_root"]

GENESIS_PARENT = "0" * 64


def transactions_merkle_root(transactions: Tuple[Transaction, ...]) -> str:
    """Merkle root over the canonical bytes of each transaction."""
    leaves = [tx.txid.encode("utf-8") for tx in transactions]
    if not leaves:
        leaves = [b"empty"]
    return MerkleTree(leaves).root


@dataclass(frozen=True)
class Block:
    """An immutable block.

    ``difficulty`` is expected hash attempts (work attested by the mining
    process); ``nonce`` optionally carries a real small-puzzle solution for
    tests that grind actual hashes.  Cumulative work for fork choice is the
    sum of ``difficulty`` along the chain.
    """

    parent_id: str
    height: int
    timestamp: float
    miner: str
    difficulty: float
    transactions: Tuple[Transaction, ...]
    merkle_root: str
    nonce: int = 0

    @property
    def block_id(self) -> str:
        return hash_obj(self.header())

    def header(self) -> dict:
        return {
            "parent_id": self.parent_id,
            "height": self.height,
            "timestamp": self.timestamp,
            "miner": self.miner,
            "difficulty": self.difficulty,
            "merkle_root": self.merkle_root,
            "nonce": self.nonce,
        }

    @property
    def is_genesis(self) -> bool:
        return self.parent_id == GENESIS_PARENT

    def validate_shape(self) -> None:
        """Structural checks independent of chain context."""
        if self.height < 0:
            raise InvalidBlockError(f"negative height {self.height}")
        if self.difficulty <= 0:
            raise InvalidBlockError(f"non-positive difficulty {self.difficulty}")
        if self.merkle_root != transactions_merkle_root(self.transactions):
            raise InvalidBlockError(
                f"merkle root mismatch in block {self.block_id[:12]}"
            )
        coinbases = [tx for tx in self.transactions if tx.is_coinbase]
        if self.is_genesis:
            return
        if len(coinbases) != 1:
            raise InvalidBlockError(
                f"block must contain exactly one coinbase, has {len(coinbases)}"
            )
        if self.transactions[0] is not coinbases[0]:
            raise InvalidBlockError("coinbase must be the first transaction")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Block(h={self.height}, id={self.block_id[:8]},"
            f" parent={self.parent_id[:8]}, txs={len(self.transactions)})"
        )


def make_block(
    parent: "Block",
    timestamp: float,
    miner: str,
    difficulty: float,
    transactions: List[Transaction],
    nonce: int = 0,
) -> Block:
    """Assemble a child block with a correct Merkle commitment."""
    txs = tuple(transactions)
    return Block(
        parent_id=parent.block_id,
        height=parent.height + 1,
        timestamp=timestamp,
        miner=miner,
        difficulty=difficulty,
        transactions=txs,
        merkle_root=transactions_merkle_root(txs),
        nonce=nonce,
    )


def make_genesis(timestamp: float = 0.0, difficulty: float = 1.0) -> Block:
    """The genesis block: empty, height 0, well-known parent id."""
    txs: Tuple[Transaction, ...] = ()
    return Block(
        parent_id=GENESIS_PARENT,
        height=0,
        timestamp=timestamp,
        miner="genesis",
        difficulty=difficulty,
        transactions=txs,
        merkle_root=transactions_merkle_root(txs),
    )
