"""Tests for OTR-style repudiable authentication."""

import pytest

from repro.crypto import generate_keypair
from repro.errors import CryptoError, GroupCommError
from repro.groupcomm import OtrConversation, SignedConversation


class TestOtrAuthentication:
    def test_peer_authenticates_in_real_time(self):
        alice_side = OtrConversation("handshake-secret")
        bob_side = OtrConversation("handshake-secret")
        message = alice_side.send("alice", "meet at noon")
        assert bob_side.authenticate(message)

    def test_wrong_secret_fails_authentication(self):
        alice_side = OtrConversation("secret-a")
        eve_side = OtrConversation("secret-b")
        message = alice_side.send("alice", "hello")
        assert not eve_side.authenticate(message)

    def test_tampered_body_fails_authentication(self):
        from repro.groupcomm.repudiation import OtrMessage

        alice_side = OtrConversation("s")
        bob_side = OtrConversation("s")
        message = alice_side.send("alice", "original")
        tampered = OtrMessage(message.index, message.author, "evil", message.mac)
        assert not bob_side.authenticate(tampered)

    def test_keys_revealed_with_next_message(self):
        conversation = OtrConversation("s")
        first = conversation.send("alice", "one")
        assert first.revealed_keys == ()
        second = conversation.send("alice", "two")
        assert len(second.revealed_keys) == 1
        assert second.revealed_keys[0][0] == 0  # key for message 0


class TestRepudiability:
    def test_transcript_loses_evidentiary_value_after_disclosure(self):
        conversation = OtrConversation("s")
        message = conversation.send("alice", "incriminating")
        assert OtrConversation.third_party_can_attribute(
            message, conversation.disclosed
        )
        conversation.end_conversation()
        assert not OtrConversation.third_party_can_attribute(
            message, conversation.disclosed
        )

    def test_anyone_can_forge_after_disclosure(self):
        conversation = OtrConversation("s")
        real = conversation.send("alice", "real message")
        disclosed = conversation.end_conversation()
        forged = OtrConversation.forge(
            real.index, "alice", "words she never said", disclosed
        )
        # The forgery passes the only check an outsider can run.
        assert conversation.mac_matches_disclosed_key(forged)
        assert conversation.mac_matches_disclosed_key(real)
        # And is structurally indistinguishable from the real message.
        assert type(forged) is type(real)
        assert forged.index == real.index

    def test_forgery_impossible_before_disclosure(self):
        conversation = OtrConversation("s")
        conversation.send("alice", "m0")
        with pytest.raises(GroupCommError):
            OtrConversation.forge(0, "alice", "fake", disclosed={})

    def test_empty_secret_rejected(self):
        with pytest.raises(CryptoError):
            OtrConversation("")


class TestSignedBaseline:
    def test_signatures_are_forever_attributable(self):
        conversation = SignedConversation()
        alice = generate_keypair("otr-pgp-alice")
        body, signature = conversation.send(alice, "incriminating")
        # Any third party, at any later time, proves authorship.
        assert SignedConversation.third_party_can_attribute(body, signature)

    def test_signature_does_not_attribute_other_text(self):
        alice = generate_keypair("otr-pgp-alice2")
        conversation = SignedConversation()
        body, signature = conversation.send(alice, "original")
        assert not SignedConversation.third_party_can_attribute("forged", signature)

    def test_contrast_with_otr(self):
        # The property-level contrast the paper cites OTR for.
        otr = OtrConversation("s")
        message = otr.send("alice", "text")
        otr.end_conversation()
        pgp = SignedConversation()
        alice = generate_keypair("otr-pgp-alice3")
        body, signature = pgp.send(alice, "text")
        assert not OtrConversation.third_party_can_attribute(message, otr.disclosed)
        assert SignedConversation.third_party_can_attribute(body, signature)
