"""Human and JSON rendering of traces and metrics, plus trace validation.

The JSON form is a stable machine interface (CI consumes it), mirroring
:mod:`repro.lint.reporters`::

    {
      "schema": 1,
      "experiment": "E4",
      "trace": {"events": 120, "dropped": 0, "by_kind": {...}},
      "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}
    }

Trace validation checks the JSONL schema that
:class:`~repro.obs.tracer.Tracer` writes: every line a JSON object with
``schema == 1``, an ``int`` ``seq`` strictly increasing from 0, a
non-empty ``str`` ``kind``, and — when present — a finite, non-negative
simulated timestamp ``t``.  Unknown kinds and extra fields are allowed
(the kind set is open), so validation survives new emitters.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional

from repro.obs.metrics import Metrics
from repro.obs.tracer import TRACE_SCHEMA_VERSION, Tracer

__all__ = [
    "JSON_SCHEMA_VERSION",
    "render_report_human",
    "render_report_json",
    "validate_trace_file",
    "validate_trace_line",
]

JSON_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

def _report_payload(
    metrics: Optional[Metrics],
    tracer: Optional[Tracer],
    experiment: Optional[str],
) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"schema": JSON_SCHEMA_VERSION}
    if experiment is not None:
        payload["experiment"] = experiment
    if tracer is not None:
        payload["trace"] = {
            "events": len(tracer),
            "dropped": tracer.dropped,
            "by_kind": tracer.by_kind(),
        }
    if metrics is not None:
        payload["metrics"] = metrics.snapshot()
    return payload


def render_report_json(
    metrics: Optional[Metrics] = None,
    tracer: Optional[Tracer] = None,
    experiment: Optional[str] = None,
) -> str:
    return json.dumps(
        _report_payload(metrics, tracer, experiment), indent=1
    )


def render_report_human(
    metrics: Optional[Metrics] = None,
    tracer: Optional[Tracer] = None,
    experiment: Optional[str] = None,
) -> str:
    """Aligned ``name  value`` lines grouped by section; '' when empty."""
    lines: List[str] = []
    if experiment is not None:
        lines.append(f"experiment: {experiment}")
    if tracer is not None:
        lines.append(f"trace: {len(tracer)} event(s)"
                     + (f", {tracer.dropped} dropped" if tracer.dropped else ""))
        for kind, count in tracer.by_kind().items():
            lines.append(f"  {kind:<24} {count}")
    if metrics is not None:
        snapshot = metrics.snapshot()
        if snapshot["counters"]:
            lines.append("counters:")
            for name, value in snapshot["counters"].items():
                lines.append(f"  {name:<32} {value}")
        if snapshot["gauges"]:
            lines.append("gauges:")
            for name, value in snapshot["gauges"].items():
                lines.append(f"  {name:<32} {value:g}")
        if snapshot["histograms"]:
            lines.append("histograms:")
            for name, summary in snapshot["histograms"].items():
                stats = "  ".join(
                    f"{key}={summary[key]:g}" if isinstance(summary[key], float)
                    else f"{key}={summary[key]}"
                    for key in ("count", "mean", "min", "max", "p50", "p99")
                    if key in summary
                )
                lines.append(f"  {name:<32} {stats}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Trace validation
# ---------------------------------------------------------------------------

def validate_trace_line(
    obj: Any, expected_seq: Optional[int] = None
) -> List[str]:
    """Schema errors for one decoded trace record ('' clean -> [])."""
    errors: List[str] = []
    if not isinstance(obj, dict):
        return [f"record is {type(obj).__name__}, expected object"]
    if obj.get("schema") != TRACE_SCHEMA_VERSION:
        errors.append(
            f"schema is {obj.get('schema')!r},"
            f" expected {TRACE_SCHEMA_VERSION}"
        )
    seq = obj.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        errors.append(f"seq is {seq!r}, expected non-negative int")
    elif expected_seq is not None and seq < expected_seq:
        errors.append(f"seq {seq} not increasing (expected >= {expected_seq})")
    kind = obj.get("kind")
    if not isinstance(kind, str) or not kind:
        errors.append(f"kind is {kind!r}, expected non-empty string")
    if "t" in obj:
        t = obj["t"]
        if (
            not isinstance(t, (int, float))
            or isinstance(t, bool)
            or not math.isfinite(t)
            or t < 0
        ):
            errors.append(f"t is {t!r}, expected finite non-negative number")
    return errors


def validate_trace_file(path: str) -> List[str]:
    """All schema errors in a JSONL trace file (empty list when valid).

    Each error is prefixed ``line N:`` for human consumption.
    """
    errors: List[str] = []
    next_seq = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError as exc:
                errors.append(f"line {lineno}: not JSON ({exc})")
                continue
            for error in validate_trace_line(obj, expected_seq=next_seq):
                errors.append(f"line {lineno}: {error}")
            seq = obj.get("seq") if isinstance(obj, dict) else None
            if isinstance(seq, int) and not isinstance(seq, bool):
                next_seq = max(next_seq, seq + 1)
    return errors
