"""Two-channel comparison semantics: exact work, banded wall clock."""

import copy

from repro.bench.compare import (
    CompareFinding,
    compare_reports,
    render_compare_human,
)

BASE = {
    "schema": 1,
    "suite": "micro",
    "repetitions": 2,
    "benchmarks": [
        {
            "name": "micro.a",
            "suite": "micro",
            "repetitions": 2,
            "best_s": 0.010,
            "mean_s": 0.011,
            "work": {"sim.events_fired": 100, "net.messages_sent": 5},
            "deterministic": True,
        },
    ],
}


def _variant(**overrides):
    doc = copy.deepcopy(BASE)
    doc["benchmarks"][0].update(overrides)
    return doc


def _regressions(findings):
    return [f for f in findings if f.regression]


class TestCompare:
    def test_identical_reports_clean(self):
        assert compare_reports(BASE, copy.deepcopy(BASE)) == []

    def test_work_counter_drift_is_exact_regression(self):
        findings = compare_reports(
            BASE, _variant(work={"sim.events_fired": 101,
                                 "net.messages_sent": 5}))
        assert [f.kind for f in _regressions(findings)] == ["work_drift"]
        assert "101" in findings[0].message

    def test_counter_appearing_or_vanishing_is_drift(self):
        gone = compare_reports(BASE, _variant(work={"sim.events_fired": 100}))
        extra = compare_reports(
            BASE, _variant(work={"sim.events_fired": 100,
                                 "net.messages_sent": 5, "new.counter": 1}))
        assert [f.kind for f in gone] == ["work_drift"]
        assert [f.kind for f in extra] == ["work_drift"]

    def test_wall_clock_within_band_clean(self):
        # 10ms -> 12ms is inside 25% + 25ms floor.
        assert compare_reports(BASE, _variant(best_s=0.012)) == []

    def test_wall_clock_past_band_regresses(self):
        findings = compare_reports(BASE, _variant(best_s=1.0))
        assert [f.kind for f in findings] == ["wall_clock"]
        assert findings[0].regression

    def test_absolute_floor_absorbs_jitter_on_tiny_benchmarks(self):
        old = _variant(best_s=0.0001)
        slightly_slower = _variant(best_s=0.010)
        assert compare_reports(old, slightly_slower) == []
        findings = compare_reports(old, slightly_slower,
                                   absolute_floor_s=0.0)
        assert [f.kind for f in findings] == ["wall_clock"]

    def test_improvement_is_note_not_regression(self):
        findings = compare_reports(BASE, _variant(best_s=0.001))
        assert [f.kind for f in findings] == ["improved"]
        assert not findings[0].regression

    def test_missing_benchmark_regresses(self):
        new = copy.deepcopy(BASE)
        new["benchmarks"] = []
        findings = compare_reports(BASE, new)
        assert [f.kind for f in findings] == ["missing"]
        assert findings[0].regression

    def test_new_benchmark_in_new_report_is_fine(self):
        new = copy.deepcopy(BASE)
        new["benchmarks"].append(dict(BASE["benchmarks"][0],
                                      name="micro.brand_new"))
        assert compare_reports(BASE, new) == []

    def test_nondeterministic_new_run_regresses(self):
        findings = compare_reports(BASE, _variant(deterministic=False))
        assert "nondeterministic" in [f.kind for f in _regressions(findings)]


class TestRenderCompare:
    def test_summary_line_counts(self):
        findings = [
            CompareFinding("micro.a", "work_drift", "drifted", True),
            CompareFinding("micro.b", "improved", "faster", False),
        ]
        text = render_compare_human(findings)
        assert "REGRESSION micro.a" in text
        assert "note" in text
        assert "1 regression(s), 1 note(s)" in text

    def test_empty_findings_report_zero(self):
        assert "0 regression(s)" in render_compare_human([])
