"""DET002 positive fixture: wall-clock reads in a simulated package."""

import time
from datetime import datetime


def stamp() -> float:
    started = time.monotonic()
    _ = datetime.now()
    return time.time() - started
