"""Replica sealing: making each stored copy physically distinct.

Proof-of-Replication (Filecoin, §3.3) requires that claiming to store N
copies means storing N *distinct* encodings, so a Sybil provider cannot
serve two replica-identities from one physical copy.  Sealing here is a
real, invertible byte transformation — XOR with a keystream derived from
``(replica_id, chunk_index)`` — so sealed chunks are genuinely different
bytes with different Merkle commitments, and "re-seal on demand" is a
computable (but slow, by simulated cost) cheat exactly as in the real
protocol's time-asymmetry argument.
"""

from __future__ import annotations

from repro.crypto.hashing import sha256
from repro.errors import StorageError
from repro.storage.blob import DataBlob

__all__ = ["seal_chunk", "unseal_chunk", "seal_blob"]


def _keystream(replica_id: str, index: int, length: int) -> bytes:
    if not replica_id:
        raise StorageError("replica id must be non-empty")
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(sha256(f"seal:{replica_id}:{index}:{counter}".encode("utf-8")))
        counter += 1
    return bytes(out[:length])


def seal_chunk(chunk: bytes, replica_id: str, index: int) -> bytes:
    """Seal one chunk for a replica identity (XOR keystream)."""
    stream = _keystream(replica_id, index, len(chunk))
    return bytes(a ^ b for a, b in zip(chunk, stream))


def unseal_chunk(sealed: bytes, replica_id: str, index: int) -> bytes:
    """Sealing is an involution under the same keystream."""
    return seal_chunk(sealed, replica_id, index)


def seal_blob(blob: DataBlob, replica_id: str) -> DataBlob:
    """The sealed encoding of a whole blob for one replica identity.

    The sealed blob has its own Merkle root — the commitment the verifier
    challenges for this replica.
    """
    sealed_chunks = tuple(
        seal_chunk(chunk, replica_id, index)
        for index, chunk in enumerate(blob.chunks)
    )
    return DataBlob(chunks=sealed_chunks, chunk_size=blob.chunk_size)
