"""Unit tests for the metrics registry and streaming histograms."""

import itertools
import json
import math

import pytest
from hypothesis import given, settings, strategies as st

import repro.obs.metrics as metrics_mod
from repro.obs import Metrics
from repro.obs.metrics import RAW_SAMPLE_CAP, Histogram, _bucket_of


class TestHistogram:
    def test_streaming_aggregates(self):
        hist = Histogram()
        for value in (3.0, 1.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.minimum == 1.0
        assert hist.maximum == 3.0
        assert hist.mean == 2.0

    def test_empty_mean_and_percentile_raise(self):
        hist = Histogram()
        with pytest.raises(ValueError):
            hist.mean
        with pytest.raises(ValueError):
            hist.percentile(0.5)

    def test_percentiles_nearest_rank(self):
        hist = Histogram()
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.percentile(0.50) == 50.0
        assert hist.percentile(0.90) == 90.0
        assert hist.percentile(0.99) == 99.0
        assert hist.percentile(0.0) == 1.0
        assert hist.percentile(1.0) == 100.0

    def test_raw_retention_caps_but_aggregates_stay_exact(self):
        hist = Histogram()
        n = RAW_SAMPLE_CAP + 100
        for value in range(n):
            hist.observe(float(value))
        assert hist.count == n
        assert len(hist.values()) == RAW_SAMPLE_CAP
        assert hist.truncated
        assert hist.maximum == float(n - 1)  # exact despite truncation
        assert hist.summary()["truncated"] is True

    def test_merge_combines_runs(self):
        a, b = Histogram(), Histogram()
        a.observe(1.0)
        a.observe(2.0)
        b.observe(10.0)
        a.merge(b)
        assert a.count == 3
        assert a.maximum == 10.0
        assert a.total == 13.0
        assert sorted(a.values()) == [1.0, 2.0, 10.0]

    def test_summary_empty(self):
        assert Histogram().summary() == {"count": 0}

    def test_summary_fields(self):
        hist = Histogram()
        for value in (0.5, 1.5, 2.5):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["min"] == 0.5
        assert summary["max"] == 2.5
        assert summary["mean"] == pytest.approx(1.5)
        assert "p50" in summary and "p99" in summary
        assert "truncated" not in summary

    def test_bucket_edges(self):
        assert _bucket_of(0.0) == 0
        assert _bucket_of(0.999) == 0
        assert _bucket_of(1.0) == 1
        assert _bucket_of(2.0) == 2
        assert _bucket_of(1024.0) == 11
        assert _bucket_of(-1.0) < 0
        assert _bucket_of(math.inf) == _bucket_of(math.nan)

    def test_truncated_percentile_answers_from_buckets(self):
        hist = Histogram()
        n = RAW_SAMPLE_CAP + 1000
        for value in range(n):
            hist.observe(float(value))
        assert hist.truncated
        assert hist.percentile_source == "buckets"
        summary = hist.summary()
        assert summary["percentile_source"] == "buckets"
        assert summary["truncated"] is True
        assert "merged_truncated" not in summary  # no merge happened
        # The sketch estimate is sane: inside range and monotone.
        assert hist.minimum <= summary["p50"] <= summary["p90"]
        assert summary["p90"] <= summary["p99"] <= hist.maximum

    def test_untruncated_percentile_stays_exact_raw(self):
        hist = Histogram()
        for value in range(100):
            hist.observe(float(value))
        assert hist.percentile_source == "raw"
        summary = hist.summary()
        assert summary["percentile_source"] == "raw"
        assert summary["p50"] == 49.0  # exact nearest-rank, not an estimate
        assert "truncated" not in summary
        assert "merged_truncated" not in summary


def _hist_of(values):
    hist = Histogram()
    for value in values:
        hist.observe(value)
    return hist


def _fold_summary(shards, order):
    acc = Histogram()
    for index in order:
        acc.merge(_hist_of(shards[index]))
    return acc.summary()


class TestMergeOrderIndependence:
    """The PR-5 headline fix: percentiles no longer depend on merge order."""

    def test_regression_truncated_merge_was_order_biased(self):
        # Two truncated shards with disjoint distributions.  The old code
        # answered percentiles from whichever raw prefix survived the
        # merge — a.merge(b) reported ~10, b.merge(a) reported ~1000.
        n = RAW_SAMPLE_CAP + 500
        low = [10.0] * n
        high = [1000.0] * n
        ab = _fold_summary([low, high], (0, 1))
        ba = _fold_summary([low, high], (1, 0))
        assert ab == ba
        assert ab["percentile_source"] == "buckets"
        assert ab["merged_truncated"] is True
        # And the estimate sees BOTH sides: the p90 must land in the
        # high shard's bucket, which the old a.merge(b) path never did.
        assert ab["p50"] < 1000.0 <= ab["p99"] or ab["p50"] >= 10.0
        assert ab["p90"] > 10.0

    def test_all_permutations_past_cap_identical(self):
        shards = [
            [float((s * 7919 + i * 31) % 5000) for i in range(2000)]
            for s in range(3)
        ]  # 6000 total observations > RAW_SAMPLE_CAP
        summaries = [
            _fold_summary(shards, order)
            for order in itertools.permutations(range(3))
        ]
        assert all(s == summaries[0] for s in summaries)
        assert summaries[0]["percentile_source"] == "buckets"
        assert summaries[0]["merged_truncated"] is True

    def test_small_merges_stay_exact_and_unflagged(self):
        shards = [[1.0, 2.0], [3.0], [4.0, 5.0]]
        summaries = [
            _fold_summary(shards, order)
            for order in itertools.permutations(range(3))
        ]
        assert all(s == summaries[0] for s in summaries)
        assert summaries[0]["percentile_source"] == "raw"
        assert "truncated" not in summaries[0]
        assert "merged_truncated" not in summaries[0]

    @given(
        shards=st.lists(
            st.lists(
                st.integers(min_value=-1000, max_value=1000).map(float),
                min_size=1, max_size=40,
            ),
            min_size=2, max_size=5,
        ),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_any_permutation_same_summary(self, shards, data):
        perm = data.draw(st.permutations(range(len(shards))))
        # Shrink the cap so hypothesis-sized inputs exercise truncation
        # (integer-valued floats keep sums exact in every order).
        original_cap = metrics_mod.RAW_SAMPLE_CAP
        metrics_mod.RAW_SAMPLE_CAP = 16
        try:
            baseline = _fold_summary(shards, range(len(shards)))
            permuted = _fold_summary(shards, perm)
        finally:
            metrics_mod.RAW_SAMPLE_CAP = original_cap
        assert baseline == permuted


class TestMetrics:
    def test_counters(self):
        metrics = Metrics()
        metrics.inc("a")
        metrics.inc("a", 4)
        assert metrics.counter("a") == 5
        assert metrics.counter("missing") == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Metrics().inc("a", -1)

    def test_gauges(self):
        metrics = Metrics()
        metrics.set_gauge("g", 1.5)
        metrics.set_gauge("g", 2.5)  # last write wins
        assert metrics.gauge("g") == 2.5
        assert metrics.gauge("missing") == 0.0
        assert metrics.gauge("missing", -1.0) == -1.0

    def test_observe_creates_histogram(self):
        metrics = Metrics()
        metrics.observe("h", 1.0)
        metrics.observe("h", 3.0)
        assert metrics.histogram("h").count == 2
        assert metrics.histogram("h").mean == 2.0

    def test_names_sorted_by_kind_then_name(self):
        metrics = Metrics()
        metrics.inc("z.count")
        metrics.inc("a.count")
        metrics.set_gauge("m.gauge", 1.0)
        metrics.observe("h.hist", 1.0)
        assert list(metrics.names()) == [
            ("counter", "a.count"),
            ("counter", "z.count"),
            ("gauge", "m.gauge"),
            ("histogram", "h.hist"),
        ]

    def test_merge(self):
        a, b = Metrics(), Metrics()
        a.inc("c", 2)
        b.inc("c", 3)
        b.set_gauge("g", 9.0)
        b.observe("h", 1.0)
        a.merge(b)
        assert a.counter("c") == 5
        assert a.gauge("g") == 9.0
        assert a.histogram("h").count == 1

    def test_snapshot_is_sorted_and_json_able(self):
        metrics = Metrics()
        metrics.inc("b")
        metrics.inc("a")
        metrics.observe("lat", 0.25)
        metrics.set_gauge("util", 0.5)
        snapshot = metrics.snapshot()
        assert list(snapshot) == ["counters", "gauges", "histograms"]
        assert list(snapshot["counters"]) == ["a", "b"]
        # Round-trips through JSON without custom encoders.
        assert json.loads(json.dumps(snapshot)) == snapshot
