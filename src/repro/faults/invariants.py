"""Continuously-checked runtime invariants for chaos runs.

An :class:`Invariant` is a named predicate over an
:class:`InvariantContext` (simulator + network + injector + scenario
extras).  The :class:`InvariantHarness` sweeps every registered
invariant at a fixed simulated interval and once more at
:meth:`~InvariantHarness.finish`; failures become structured
:class:`~repro.errors.InvariantViolation` objects, are emitted into the
trace (``invariant_violated``), and — in strict mode — raised.

Built-in invariant factories (the registry the docs catalog lists):

* :func:`message_conservation` — the transport's exact flow accounting
  must balance: ``sent == delivered + dropped + in_flight`` with
  ``in_flight >= 0``.
* :func:`no_double_resume` — no wake-up is ever delivered to a finished
  process (``Simulator.stale_resumes == 0``): the leak class the PR 3
  combinator fixes closed stays closed under faults.
* :func:`monotonic` — a scenario-supplied gauge (chain height, repair
  bytes, names registered) never decreases.
* :func:`eventually` — a liveness deadline: the predicate must hold by
  simulated time ``deadline`` (checked from the deadline onward, and at
  the final sweep).
* :func:`read_your_writes` — a scenario probe that must pass whenever
  the network is fault-free and a grace period has elapsed since the
  last heal.

A tripped invariant is checked no further (one structured violation per
invariant, not one per sweep), so reports stay readable even when a
broken conservation counter would otherwise fail every tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import FaultError, InvariantViolation
from repro.faults.injector import FaultInjector
from repro.net.transport import Network
from repro.sim.engine import Simulator

__all__ = [
    "Invariant",
    "InvariantContext",
    "InvariantHarness",
    "REGISTRY",
    "eventually",
    "message_conservation",
    "monotonic",
    "no_double_resume",
    "read_your_writes",
]

#: What a predicate may return: ``None`` (holds), a message (violated),
#: or a (message, details) pair for structured context.
CheckResult = Optional[Union[str, Tuple[str, Dict[str, Any]]]]


@dataclass
class InvariantContext:
    """Everything a predicate may inspect during a sweep."""

    sim: Simulator
    network: Network
    injector: Optional[FaultInjector] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def faults_quiet(self) -> bool:
        """No partition, censor campaign, or crashed node currently
        injected."""
        if self.injector is None:
            return True
        return not (
            self.injector.partition_active
            or self.injector.censor_active
            or self.injector.crashed_nodes
        )


@dataclass(frozen=True)
class Invariant:
    """A named, documented predicate checked by the harness."""

    name: str
    description: str
    check: Callable[[InvariantContext], CheckResult]


class InvariantHarness:
    """Periodically sweeps invariants over a running simulation.

    Parameters
    ----------
    sim / network:
        The fabric under test.
    injector:
        The active :class:`FaultInjector`, if any — lets gated
        invariants (``read_your_writes``) know about open faults.
    interval:
        Simulated seconds between sweeps.
    strict:
        When true, the first violation raises immediately (useful in
        tests); otherwise violations are collected and reported.
    extras:
        Scenario state handed to predicates via the context.

    Call :meth:`start` before ``sim.run()`` and :meth:`finish` after —
    the final sweep catches violations that appear only once the queue
    drains (e.g. ``in_flight`` not returning to zero).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        injector: Optional[FaultInjector] = None,
        interval: float = 5.0,
        strict: bool = False,
        extras: Optional[Dict[str, Any]] = None,
    ):
        if interval <= 0:
            raise FaultError(f"sweep interval must be positive: {interval}")
        self.context = InvariantContext(
            sim=sim, network=network, injector=injector,
            extras=dict(extras or {}),
        )
        self.interval = interval
        self.strict = strict
        self.invariants: List[Invariant] = []
        self.violations: List[InvariantViolation] = []
        self.checks_run = 0
        self._tripped: set = set()
        self._pending = None
        self._started = False
        self._finished = False

    def add(self, invariant: Invariant) -> "InvariantHarness":
        if any(existing.name == invariant.name for existing in self.invariants):
            raise FaultError(f"duplicate invariant name {invariant.name!r}")
        self.invariants.append(invariant)
        return self

    def start(self) -> None:
        """Begin periodic sweeps (first sweep after one interval)."""
        if self._started:
            raise FaultError("harness already started")
        self._started = True
        self._pending = self.context.sim.schedule(self.interval, self._sweep)

    def finish(self) -> List[InvariantViolation]:
        """Run one final sweep and stop; returns all violations."""
        if not self._finished:
            self._finished = True
            if self._pending is not None:
                self._pending.cancel()
                self._pending = None
            self._run_checks()
        return self.violations

    def _sweep(self) -> None:
        self._run_checks()
        self._pending = self.context.sim.schedule(self.interval, self._sweep)

    def _run_checks(self) -> None:
        sim = self.context.sim
        checked = 0
        new_violations = 0
        for invariant in self.invariants:
            if invariant.name in self._tripped:
                continue
            checked += 1
            self.checks_run += 1
            result = invariant.check(self.context)
            if result is None:
                continue
            if isinstance(result, tuple):
                message, details = result
            else:
                message, details = result, {}
            violation = InvariantViolation(
                invariant.name, message, sim.now, details
            )
            self._tripped.add(invariant.name)
            self.violations.append(violation)
            new_violations += 1
            if sim.tracer is not None:
                sim.tracer.emit(
                    "invariant_violated", t=sim.now, name=invariant.name,
                    message=message, **{f"d_{k}": v for k, v in details.items()},
                )
            if sim.metrics is not None:
                sim.metrics.inc("faults.invariant_violations")
            if self.strict:
                raise violation
        if sim.tracer is not None:
            sim.tracer.emit(
                "invariant_checked", t=sim.now, checked=checked,
                violated=new_violations,
            )
        if sim.metrics is not None:
            sim.metrics.inc("faults.invariant_sweeps")


# -- built-in invariant factories ----------------------------------------


def message_conservation() -> Invariant:
    """Transport flow accounting balances on every sweep."""

    def check(ctx: InvariantContext) -> CheckResult:
        flow = ctx.network.flow_snapshot()
        balance = flow["delivered"] + flow["dropped"] + flow["in_flight"]
        if flow["in_flight"] < 0:
            return (f"negative in-flight count: {flow['in_flight']}", flow)
        if flow["sent"] != balance:
            return (
                f"sent={flow['sent']} != delivered+dropped+in_flight"
                f"={balance}",
                flow,
            )
        return None

    return Invariant(
        name="message_conservation",
        description=(
            "every sent message is delivered, dropped, or in flight:"
            " sent == delivered + dropped + in_flight"
        ),
        check=check,
    )


def no_double_resume() -> Invariant:
    """No wake-up is ever delivered to an already-finished process."""

    def check(ctx: InvariantContext) -> CheckResult:
        stale = ctx.sim.stale_resumes
        if stale:
            return (
                f"{stale} resume(s) delivered to dead processes",
                {"stale_resumes": stale},
            )
        return None

    return Invariant(
        name="no_double_resume",
        description=(
            "combinator subscriptions never leak: zero resumes delivered"
            " to finished processes"
        ),
        check=check,
    )


def monotonic(name: str, getter: Callable[[InvariantContext], float]) -> Invariant:
    """A scenario gauge must never decrease between sweeps."""
    last: List[Optional[float]] = [None]

    def check(ctx: InvariantContext) -> CheckResult:
        value = getter(ctx)
        previous = last[0]
        last[0] = value
        if previous is not None and value < previous:
            return (
                f"value decreased: {previous} -> {value}",
                {"previous": previous, "current": value},
            )
        return None

    return Invariant(
        name=name,
        description=f"{name} never decreases across sweeps",
        check=check,
    )


def eventually(
    name: str,
    deadline: float,
    predicate: Callable[[InvariantContext], bool],
) -> Invariant:
    """``predicate`` must hold at every sweep from ``deadline`` onward.

    Sweeps before the deadline pass vacuously; make sure the run's final
    sweep (:meth:`InvariantHarness.finish`) happens at or after the
    deadline, or the liveness condition is never actually enforced.
    """

    def check(ctx: InvariantContext) -> CheckResult:
        if ctx.now < deadline:
            return None
        if not predicate(ctx):
            return (
                f"still false at t={ctx.now:g} (deadline {deadline:g})",
                {"deadline": deadline},
            )
        return None

    return Invariant(
        name=name,
        description=f"predicate holds by simulated time {deadline:g}",
        check=check,
    )


def read_your_writes(
    probe: Callable[[InvariantContext], CheckResult],
    grace: float = 0.0,
) -> Invariant:
    """A consistency probe that must pass whenever the network is calm.

    The probe is skipped while a partition is open or a crashed node is
    down, and for ``grace`` simulated seconds after the most recent heal
    (anti-entropy needs time to converge).  Once the network is quiet
    and the grace period has elapsed, any probe failure is a violation.
    """

    def check(ctx: InvariantContext) -> CheckResult:
        if not ctx.faults_quiet:
            return None
        injector = ctx.injector
        if injector is not None and injector.last_heal_at is not None:
            if ctx.now < injector.last_heal_at + grace:
                return None
        return probe(ctx)

    return Invariant(
        name="read_your_writes",
        description=(
            "replicated reads observe prior writes once faults heal"
            f" (+{grace:g}s grace)"
        ),
        check=check,
    )


#: Catalog of built-in invariant factories, for docs and the CLI.
REGISTRY: Dict[str, Callable[..., Invariant]] = {
    "message_conservation": message_conservation,
    "no_double_resume": no_double_resume,
    "monotonic": monotonic,
    "eventually": eventually,
    "read_your_writes": read_your_writes,
}
