"""Unit constants and formatting for capacity arithmetic.

Internally everything is SI base units: bits per second, bytes, cores.
The paper's Table 3 reports Tbps, exabytes, and millions of cores; the
formatters here render those.
"""

from __future__ import annotations

from repro.errors import FeasibilityError

__all__ = [
    "KBPS", "MBPS", "GBPS", "TBPS",
    "KB", "MB", "GB", "TB", "PB", "EB",
    "MILLION", "BILLION",
    "format_bandwidth", "format_storage", "format_cores",
]

KBPS = 1e3
MBPS = 1e6
GBPS = 1e9
TBPS = 1e12

KB = 1e3
MB = 1e6
GB = 1e9
TB = 1e12
PB = 1e15
EB = 1e18

MILLION = 1e6
BILLION = 1e9


def _check_non_negative(value: float, what: str) -> None:
    if value < 0:
        raise FeasibilityError(f"{what} cannot be negative: {value}")


def format_bandwidth(bps: float) -> str:
    """Render bits/second the way the paper does (e.g. '200 Tbps')."""
    _check_non_negative(bps, "bandwidth")
    for unit, name in ((TBPS, "Tbps"), (GBPS, "Gbps"), (MBPS, "Mbps"), (KBPS, "Kbps")):
        if bps >= unit:
            return f"{_trim(bps / unit)} {name}"
    return f"{_trim(bps)} bps"


def format_storage(bytes_: float) -> str:
    """Render bytes the way the paper does (e.g. '80 EB')."""
    _check_non_negative(bytes_, "storage")
    for unit, name in ((EB, "EB"), (PB, "PB"), (TB, "TB"), (GB, "GB"), (MB, "MB")):
        if bytes_ >= unit:
            return f"{_trim(bytes_ / unit)} {name}"
    return f"{_trim(bytes_)} B"


def format_cores(cores: float) -> str:
    """Render core counts the way the paper does (e.g. '400 M')."""
    _check_non_negative(cores, "cores")
    if cores >= BILLION:
        return f"{_trim(cores / BILLION)} B"
    if cores >= MILLION:
        return f"{_trim(cores / MILLION)} M"
    return _trim(cores)


def _trim(value: float) -> str:
    """'200' not '200.0'; keep one decimal only when informative."""
    if value == int(value):
        return str(int(value))
    return f"{value:.1f}"
