"""RPC timeout-path audit (ISSUE satellite 3) and transport observability.

The tracer makes the leak assertions direct: a timed-out RPC must not
leave the response ``done`` Signal waiter or any in-flight delivery
event alive past handler completion, and a successful RPC must not keep
the queue hot until the timeout horizon.
"""

import pytest

from repro.errors import NetworkError, RemoteError, ReproError, RpcTimeoutError
from repro.net import ConstantLatency, Network
from repro.obs import Metrics, Tracer, observe
from repro.sim import RngStreams, Simulator


def _net(tracer=None, metrics=None, loss_rate=0.0):
    sim = Simulator(tracer=tracer, metrics=metrics)
    network = Network(sim, RngStreams(1), latency=ConstantLatency(0.05),
                      loss_rate=loss_rate)
    return sim, network


class TestRpcTimeoutHygiene:
    def test_success_ends_at_response_not_timeout_horizon(self):
        """Pre-fix: the lost Timeout(30) kept run() spinning to t=30."""
        sim, network = _net()
        network.create_node("client")
        server = network.create_node("server")
        server.register_handler("echo", lambda node, p, s: p)

        def client():
            return (yield from network.rpc("client", "server", "echo", "hi"))

        process = sim.spawn(client())
        end = sim.run()
        assert process.result == "hi"
        assert end == pytest.approx(0.10, abs=1e-3)  # two 50 ms hops
        assert sim.pending_events == 0

    def test_timeout_prunes_done_waiter_and_drains_queue(self):
        """A late response must fire into an empty signal: the client,
        already moved on to its next wait, is not double-resumed."""
        metrics = Metrics()
        sim = Simulator(metrics=metrics)
        network = Network(sim, RngStreams(1), latency=ConstantLatency(0.05))
        network.create_node("client")
        server = network.create_node("server")

        def slow_handler(node, payload, sender):
            yield 10.0  # responds long after the client gave up
            return "late"

        server.register_handler("slow", slow_handler)
        wakes = []

        def client():
            try:
                yield from network.rpc("client", "server", "slow", timeout=2.0)
            except RpcTimeoutError:
                pass
            yield 100.0  # pre-fix, the late response resumed us here
            wakes.append(sim.now)

        sim.spawn(client())
        end = sim.run()
        assert wakes == [102.0]
        assert sim.pending_events == 0
        assert end == 102.0
        assert metrics.counter("net.rpcs_timeout") == 1
        assert metrics.counter("net.rpcs_ok") == 0
        # The dead-waiter guard never had to save us: the waiter was
        # already pruned when the late response delivered.
        assert metrics.counter("sim.signal_dead_waiters_skipped") == 0

    def test_timeout_against_offline_server_drains_queue(self):
        sim, network = _net()
        network.create_node("client")
        server = network.create_node("server")
        server.register_handler("m", lambda *a: 1)
        server.set_online(False, 0.0)

        def client():
            with pytest.raises(RpcTimeoutError):
                yield from network.rpc("client", "server", "m", timeout=2.0)
            return sim.now

        process = sim.spawn(client())
        end = sim.run()
        assert process.result == 2.0
        assert end == 2.0  # not a second longer
        assert sim.pending_events == 0


class TestRpcRetries:
    def test_retry_succeeds_after_server_recovers(self):
        metrics = Metrics()
        tracer = Tracer()
        sim = Simulator(tracer=tracer, metrics=metrics)
        network = Network(sim, RngStreams(1), latency=ConstantLatency(0.05))
        network.create_node("client")
        server = network.create_node("server")
        server.register_handler("m", lambda node, p, s: "finally")
        server.set_online(False, 0.0)
        sim.schedule(3.0, server.set_online, True, 3.0)

        def client():
            value = yield from network.rpc(
                "client", "server", "m", timeout=2.0, retries=2)
            return (value, sim.now)

        process = sim.spawn(client())
        sim.run()
        value, elapsed = process.result
        assert value == "finally"
        # attempt 0 times out at t=2, attempt 1 at t=4, attempt 2 issued
        # at t=4 completes at t=4.1.
        assert elapsed == pytest.approx(4.10, abs=1e-3)
        assert network.monitor.counters.get("rpcs_retried") == 2
        assert metrics.counter("net.rpc_retries") == 2
        assert metrics.counter("net.rpcs_timeout") == 2
        assert metrics.counter("net.rpcs_ok") == 1
        assert metrics.counter("net.rpcs_sent") == 3
        spans = list(tracer.iter_kind("rpc"))
        assert [s["outcome"] for s in spans] == ["timeout", "timeout", "ok"]
        assert [s["attempt"] for s in spans] == [0, 1, 2]
        assert metrics.histogram("net.rpc_latency_s").count == 1
        assert sim.pending_events == 0

    def test_exhausted_retries_raise(self):
        metrics = Metrics()
        sim = Simulator(metrics=metrics)
        network = Network(sim, RngStreams(1), latency=ConstantLatency(0.05))
        network.create_node("client")
        server = network.create_node("server")
        server.register_handler("m", lambda *a: 1)
        server.set_online(False, 0.0)

        def client():
            try:
                yield from network.rpc(
                    "client", "server", "m", timeout=1.0, retries=1)
            except RpcTimeoutError:
                return "gave-up"

        assert sim.run_process(client()) == "gave-up"
        assert metrics.counter("net.rpc_retries") == 1
        assert metrics.counter("net.rpcs_timeout") == 2
        assert sim.pending_events == 0

    def test_remote_errors_are_not_retried(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        network = Network(sim, RngStreams(1), latency=ConstantLatency(0.05))
        network.create_node("client")
        server = network.create_node("server")

        def bad_handler(node, payload, sender):
            raise ReproError("broken")

        server.register_handler("m", bad_handler)

        def client():
            try:
                yield from network.rpc("client", "server", "m", retries=5)
            except RemoteError:
                return "remote-error"

        assert sim.run_process(client()) == "remote-error"
        assert network.monitor.counters.get("rpcs_retried") == 0
        spans = list(tracer.iter_kind("rpc"))
        assert [s["outcome"] for s in spans] == ["remote_error"]

    def test_negative_retries_rejected(self):
        sim, network = _net()
        network.create_node("a")
        network.create_node("b")
        rpc = network.rpc("a", "b", "m", retries=-1)
        with pytest.raises(NetworkError):
            next(rpc)


class TestMessageTraceEvents:
    def test_send_and_deliver_traced(self):
        tracer = Tracer()
        metrics = Metrics()
        sim = Simulator(tracer=tracer, metrics=metrics)
        network = Network(sim, RngStreams(1), latency=ConstantLatency(0.05))
        network.create_node("a")
        b = network.create_node("b")
        got = []
        b.register_handler("ping", lambda node, p, s: got.append((p, s)))
        network.send("a", "b", "ping", "hello", size_bytes=64)
        sim.run()
        assert got == [("hello", "a")]
        send = next(tracer.iter_kind("msg_send"))
        assert (send["src"], send["dst"], send["method"]) == ("a", "b", "ping")
        assert send["bytes"] == 64
        deliver = next(tracer.iter_kind("msg_deliver"))
        assert deliver["t"] == pytest.approx(0.05, abs=1e-3)
        assert metrics.counter("net.messages_sent") == 1
        assert metrics.counter("net.messages_delivered") == 1

    def test_drop_reasons_traced(self):
        tracer = Tracer()
        metrics = Metrics()
        sim = Simulator(tracer=tracer, metrics=metrics)
        network = Network(sim, RngStreams(1), latency=ConstantLatency(0.05))
        network.create_node("a")
        off = network.create_node("off")
        off.set_online(False, 0.0)
        network.create_node("far")
        network.partition([["a"], ["far"]])
        network.send("a", "off", "m")
        network.send("a", "far", "m")
        sim.run()
        drops = list(tracer.iter_kind("msg_drop"))
        assert sorted(d["reason"] for d in drops) == ["offline", "partition"]
        assert metrics.counter("net.messages_dropped") == 2
        assert metrics.counter("net.messages_dropped.offline") == 1
        assert metrics.counter("net.messages_dropped.partition") == 1

    def test_rpc_request_and_response_legs_labelled(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        network = Network(sim, RngStreams(1), latency=ConstantLatency(0.05))
        network.create_node("client")
        server = network.create_node("server")
        server.register_handler("m", lambda node, p, s: "ok")

        def client():
            yield from network.rpc("client", "server", "m")

        sim.run_process(client())
        legs = [e.get("leg") for e in tracer.iter_kind("msg_send")]
        assert legs == ["rpc_request", "rpc_response"]


class TestAmbientObservation:
    def test_network_adopts_ambient_hooks_via_simulator(self):
        tracer = Tracer()
        metrics = Metrics()
        with observe(tracer=tracer, metrics=metrics):
            sim = Simulator()
            network = Network(sim, RngStreams(1))
        assert sim.tracer is tracer
        assert network._metrics is metrics
        # Outside the block, new simulators are unobserved again.
        assert Simulator().tracer is None
