"""Tests for ``python -m repro trace`` and the run_trace entry point."""

import argparse
import json

import pytest

from repro.__main__ import main
from repro.obs import validate_trace_file
from repro.obs.cli import add_trace_arguments, run_trace
from repro.sim import Simulator


def _parse(argv):
    parser = argparse.ArgumentParser()
    add_trace_arguments(parser)
    return parser.parse_args(argv)


def _tiny_driver():
    """A minimal sim-based experiment for exercising the CLI plumbing."""
    sim = Simulator()

    def worker():
        yield 1.0
        yield 2.0
        return "ok"

    sim.spawn(worker(), name="worker")
    sim.run()
    return [{"result": "ok"}]


EXPERIMENTS = {"E1": _tiny_driver}


class TestRunTrace:
    def test_trace_writes_valid_jsonl(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        args = _parse(["E1", "--out", str(out)])
        assert run_trace(args, EXPERIMENTS) == 0
        assert validate_trace_file(str(out)) == []
        stdout = capsys.readouterr().out
        assert "experiment: E1" in stdout
        assert "process_finished" in stdout
        assert f"trace written: {out}" in stdout

    def test_json_format_report(self, capsys):
        args = _parse(["E1", "--format", "json"])
        assert run_trace(args, EXPERIMENTS) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "E1"
        assert payload["trace"]["by_kind"]["process_spawned"] == 1
        assert payload["metrics"]["counters"]["sim.processes_finished"] == 1

    def test_capacity_caps_trace(self, capsys):
        args = _parse(["E1", "--capacity", "2"])
        assert run_trace(args, EXPERIMENTS) == 0
        assert "dropped" in capsys.readouterr().out

    def test_lowercase_name_accepted(self, capsys):
        args = _parse(["e1"])
        assert run_trace(args, EXPERIMENTS) == 0
        assert "experiment: E1" in capsys.readouterr().out

    def test_unknown_experiment_is_usage_error(self, capsys):
        args = _parse(["E99"])
        assert run_trace(args, EXPERIMENTS) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_missing_name_is_usage_error(self, capsys):
        args = _parse([])
        assert run_trace(args, EXPERIMENTS) == 2
        assert "required" in capsys.readouterr().err

    def test_negative_capacity_is_usage_error(self, capsys):
        args = _parse(["E1", "--capacity", "-5"])
        assert run_trace(args, EXPERIMENTS) == 2


class TestValidateMode:
    def test_valid_trace_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert run_trace(_parse(["E1", "--out", str(out)]), EXPERIMENTS) == 0
        capsys.readouterr()
        assert run_trace(_parse(["--validate", str(out)]), EXPERIMENTS) == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_trace_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema":9,"seq":0,"kind":"x"}\n')
        assert run_trace(_parse(["--validate", str(bad)]), EXPERIMENTS) == 1
        assert "schema error" in capsys.readouterr().out

    def test_unreadable_path_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert run_trace(_parse(["--validate", str(missing)]), EXPERIMENTS) == 2
        assert "cannot read" in capsys.readouterr().err


class TestMainEndToEnd:
    def test_trace_real_experiment(self, tmp_path, capsys):
        """The CI smoke path: trace a real (small) experiment, validate
        the artifact with the validator the CI step uses."""
        out = tmp_path / "e6c.jsonl"
        assert main(["trace", "E6C", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "event_fired" in stdout
        assert "sim.queue_depth" in stdout
        assert validate_trace_file(str(out)) == []
        first = json.loads(out.read_text().splitlines()[0])
        assert first["seq"] == 0

    def test_trace_e6c_is_deterministic(self, tmp_path):
        """Two traced runs of the same seeded experiment produce
        byte-identical JSONL — the tracer's determinism contract."""
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(["trace", "E6C", "--out", str(a)]) == 0
        assert main(["trace", "E6C", "--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
