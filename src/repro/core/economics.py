"""The re-feudalization dynamic (§5.3): economies of scale, simulated.

The paper's hardest problem: "centralization is frequently driven by
economies of scale", so even a successfully democratized Internet tends
to re-centralize.  This module makes that claim a dynamical system:

* :func:`unit_cost` — a scale-economy cost curve: unit cost falls with
  the volume an operator serves (learning-by-doing / amortized fixed
  costs) toward an asymptotic floor;
* :class:`ProviderMarket` — a repeated market game: providers price at
  cost + margin, demand flows toward cheaper providers, and next round's
  cost reflects this round's volume.  That is a positive feedback loop:
  share -> cheaper -> more share.  Whether it runs away depends on the
  product of ``scale_advantage`` and ``price_sensitivity`` — with either
  at zero the market stays fragmented forever.

The knob :attr:`MarketParams.scale_advantage` is exactly the paper's
"not an entirely technical problem": holding it at zero is what a
successful anti-feudal *economic* design would have to achieve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import FeasibilityError
from repro.sim.rng import RngStreams

__all__ = ["unit_cost", "MarketParams", "ProviderMarket", "herfindahl_index"]


def unit_cost(
    volume: float,
    base_cost: float = 1.0,
    floor_cost: float = 0.2,
    scale_advantage: float = 0.25,
) -> float:
    """Unit cost of serving, falling with served volume.

    ``cost(v) = floor + (base - floor) * (1 + v)^(-scale_advantage)`` — a
    power-law scale curve.  ``scale_advantage = 0`` gives flat costs (no
    advantage to being big).
    """
    if volume < 0:
        raise FeasibilityError(f"volume cannot be negative: {volume}")
    if not 0 <= scale_advantage <= 1:
        raise FeasibilityError(
            f"scale_advantage must be in [0,1]: {scale_advantage}"
        )
    if floor_cost > base_cost:
        raise FeasibilityError("floor cost cannot exceed base cost")
    return floor_cost + (base_cost - floor_cost) * (1 + volume) ** (-scale_advantage)


def herfindahl_index(shares: List[float]) -> float:
    """The Herfindahl-Hirschman concentration index: sum of squared market
    shares.  1/N for a symmetric N-provider market; 1.0 for a monopoly."""
    total = sum(shares)
    if total <= 0:
        raise FeasibilityError("shares must sum to a positive total")
    return sum((share / total) ** 2 for share in shares)


@dataclass(frozen=True)
class MarketParams:
    """Market dynamics constants."""

    base_cost: float = 1.0
    floor_cost: float = 0.2
    scale_advantage: float = 0.25
    margin: float = 0.1              # price = cost * (1 + margin)
    price_sensitivity: float = 8.0   # demand share ~ price^-sensitivity
    demand_total: float = 1000.0     # units of service demanded per round
    volume_inertia: float = 0.5      # smoothing of served volume
    exit_share: float = 0.01         # providers below this share exit

    def __post_init__(self) -> None:
        if not 0 <= self.scale_advantage <= 1:
            raise FeasibilityError("scale_advantage must be in [0,1]")
        if self.price_sensitivity < 0 or self.margin < 0:
            raise FeasibilityError("sensitivity and margin must be >= 0")
        if not 0 <= self.volume_inertia < 1:
            raise FeasibilityError("volume_inertia must be in [0,1)")


@dataclass
class _Provider:
    name: str
    volume: float
    alive: bool = True


class ProviderMarket:
    """A repeated price-competition market with scale feedback."""

    def __init__(
        self,
        n_providers: int,
        params: Optional[MarketParams] = None,
        streams: Optional[RngStreams] = None,
        volume_jitter: float = 0.05,
    ):
        if n_providers < 1:
            raise FeasibilityError("need at least one provider")
        self.params = params or MarketParams()
        rng = (streams or RngStreams(0)).stream("market.init")
        start = self.params.demand_total / n_providers
        # Tiny volume jitter seeds the symmetry-breaking that scale
        # economies then amplify (or don't).
        self.providers = [
            _Provider(
                name=f"prov{i}",
                volume=start * (1 + rng.uniform(-volume_jitter, volume_jitter)),
            )
            for i in range(n_providers)
        ]
        self.round = 0

    # -- one market round -----------------------------------------------------

    def prices(self) -> Dict[str, float]:
        return {
            provider.name: unit_cost(
                provider.volume,
                self.params.base_cost,
                self.params.floor_cost,
                self.params.scale_advantage,
            ) * (1 + self.params.margin)
            for provider in self.providers
            if provider.alive
        }

    def demand_shares(self) -> Dict[str, float]:
        """Logit-style demand split: share ~ price^-sensitivity."""
        prices = self.prices()
        weights = {
            name: price ** (-self.params.price_sensitivity)
            for name, price in prices.items()
        }
        total = sum(weights.values())
        return {name: weight / total for name, weight in weights.items()}

    def step(self) -> None:
        """One round: demand splits by price; served volume feeds next
        round's costs; starved providers exit."""
        self.round += 1
        shares = self.demand_shares()
        inertia = self.params.volume_inertia
        for provider in self.providers:
            if not provider.alive:
                continue
            share = shares[provider.name]
            if share < self.params.exit_share and len(self.alive()) > 1:
                provider.alive = False
                continue
            served = share * self.params.demand_total
            provider.volume = inertia * provider.volume + (1 - inertia) * served

    def run(self, rounds: int) -> List[Dict[str, float]]:
        """Run the dynamic; returns per-round concentration metrics."""
        history = []
        for _ in range(rounds):
            self.step()
            shares = self.demand_shares()
            history.append(
                {
                    "round": self.round,
                    "providers_alive": len(self.alive()),
                    "hhi": herfindahl_index(list(shares.values())),
                    "top_share": max(shares.values()),
                }
            )
        return history

    def alive(self) -> List[_Provider]:
        return [provider for provider in self.providers if provider.alive]

    def concentration(self) -> float:
        return herfindahl_index(list(self.demand_shares().values()))
