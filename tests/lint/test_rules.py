"""Positive and negative coverage for every lint rule."""

import textwrap

from repro.lint import lint_source


def rule_ids(source, path="pkg/repro/module.py"):
    return [f.rule_id for f in lint_source(textwrap.dedent(source), path=path)]


class TestDET001:
    def test_plain_import_flagged(self):
        assert "DET001" in rule_ids("import random\n")

    def test_aliased_and_from_imports_flagged(self):
        assert "DET001" in rule_ids("import random as rnd\n")
        assert "DET001" in rule_ids("from random import Random\n")

    def test_function_level_import_flagged(self):
        src = """
        def f(seed):
            import random as _random
            return _random.Random(seed)
        """
        assert "DET001" in rule_ids(src)

    def test_rng_module_exempt(self):
        assert rule_ids("import random\n", path="src/repro/sim/rng.py") == []

    def test_seeded_rng_usage_clean(self):
        src = """
        from repro.sim.rng import seeded_rng

        def f(seed):
            return seeded_rng(seed, "demo.f").random()
        """
        assert rule_ids(src) == []


class TestDET002:
    def test_wall_clock_call_in_sim_package(self):
        src = """
        import time

        def f():
            return time.time()
        """
        assert rule_ids(src, path="repro/sim/engine.py") == ["DET002"]

    def test_datetime_now_in_chain_package(self):
        src = """
        from datetime import datetime

        def f():
            return datetime.now()
        """
        assert rule_ids(src, path="repro/chain/mempool.py") == ["DET002"]

    def test_from_time_import_flagged(self):
        src = "from time import monotonic\n"
        assert rule_ids(src, path="repro/net/transport.py") == ["DET002"]

    def test_wall_clock_allowed_outside_simulated_packages(self):
        src = """
        import time

        def f():
            return time.perf_counter()
        """
        assert rule_ids(src, path="repro/analysis/runner.py") == []

    def test_simulated_time_attribute_clean(self):
        src = """
        def f(sim):
            return sim.now
        """
        assert rule_ids(src, path="repro/sim/engine.py") == []


class TestDET003:
    def test_np_random_call_flagged(self):
        src = """
        import numpy as np

        def f(n):
            return np.random.rand(n)
        """
        assert "DET003" in rule_ids(src)

    def test_numpy_random_seed_flagged(self):
        src = """
        import numpy

        def f():
            numpy.random.seed(0)
        """
        assert "DET003" in rule_ids(src)

    def test_from_numpy_random_import_flagged(self):
        assert "DET003" in rule_ids("from numpy.random import rand\n")

    def test_default_rng_not_global_state(self):
        # default_rng is explicitly seeded, so DET003 stays quiet; the
        # construction site itself is DET004's business.
        src = """
        import numpy as np

        def f(seed):
            return np.random.default_rng(seed).random()
        """
        assert "DET003" not in rule_ids(src)

    def test_no_numpy_no_findings(self):
        assert rule_ids("import math\n") == []


class TestDET004:
    def test_default_rng_attribute_chain_flagged(self):
        src = """
        import numpy as np

        def f(seed):
            return np.random.default_rng(seed)
        """
        assert rule_ids(src) == ["DET004"]

    def test_generator_via_random_alias_flagged(self):
        src = """
        import numpy.random as npr

        def f(seed):
            return npr.Generator(npr.PCG64(seed))
        """
        assert rule_ids(src) == ["DET004", "DET004"]

    def test_direct_ctor_import_call_flagged(self):
        src = """
        from numpy.random import default_rng

        def f(seed):
            return default_rng(seed)
        """
        assert rule_ids(src) == ["DET004"]

    def test_rng_module_exempt(self):
        src = """
        import numpy

        def seeded_generator(root_seed, name):
            return numpy.random.Generator(numpy.random.PCG64(root_seed))
        """
        assert rule_ids(src, path="src/repro/sim/rng.py") == []

    def test_seeded_generator_usage_clean(self):
        src = """
        from repro.sim.rng import seeded_generator

        def f(seed):
            return seeded_generator(seed, "demo.f").random(10)
        """
        assert rule_ids(src) == []

    def test_unrelated_default_rng_name_clean(self):
        # A local function that merely shares a ctor name is not numpy's.
        src = """
        def default_rng(seed):
            return seed

        def f(seed):
            return default_rng(seed)
        """
        assert rule_ids(src) == []


class TestPAR001:
    def test_lambda_to_runner_run(self):
        src = """
        def f(runner, configs):
            return runner.run("exp", lambda seed: seed, configs)
        """
        assert rule_ids(src) == ["PAR001"]

    def test_nested_function_to_submit(self):
        src = """
        def f(executor):
            def point(seed):
                return seed
            return executor.submit(point, 1)
        """
        assert rule_ids(src) == ["PAR001"]

    def test_lambda_valued_name_to_map(self):
        src = """
        transform = lambda x: x + 1

        def f(pool, items):
            return pool.map(transform, items)
        """
        assert rule_ids(src) == ["PAR001"]

    def test_top_level_function_clean(self):
        src = """
        def point(seed):
            return seed

        def f(runner, configs):
            return runner.run("exp", point, configs)
        """
        assert rule_ids(src) == []

    def test_sorted_key_lambda_not_flagged(self):
        src = """
        def f(items):
            return sorted(items, key=lambda x: x.name)
        """
        assert rule_ids(src) == []


class TestERR001:
    def test_swallowed_broad_except(self):
        src = """
        def f(fn):
            try:
                return fn()
            except Exception:
                return None
        """
        assert rule_ids(src) == ["ERR001"]

    def test_bare_except_flagged(self):
        src = """
        def f(fn):
            try:
                return fn()
            except:
                return None
        """
        assert rule_ids(src) == ["ERR001"]

    def test_reraise_allowed(self):
        src = """
        def f(fn):
            try:
                return fn()
            except Exception as exc:
                raise RuntimeError("wrapped") from exc
        """
        assert rule_ids(src) == []

    def test_narrow_handler_allowed(self):
        src = """
        def f(fn):
            try:
                return fn()
            except (ValueError, KeyError):
                return None
        """
        assert rule_ids(src) == []


class TestAPI001:
    def test_phantom_export_flagged(self):
        src = """
        __all__ = ["missing"]
        """
        assert rule_ids(src) == ["API001"]

    def test_unexported_public_def_flagged(self):
        src = """
        __all__ = ["f"]

        def f():
            return 1

        def g():
            return 2
        """
        assert rule_ids(src) == ["API001"]

    def test_private_defs_need_no_export(self):
        src = """
        __all__ = ["f"]

        def f():
            return 1

        def _helper():
            return 2
        """
        assert rule_ids(src) == []

    def test_module_without_all_exempt(self):
        src = """
        def anything():
            return 1
        """
        assert rule_ids(src) == []

    def test_conditional_definition_counts(self):
        src = """
        __all__ = ["f"]

        try:
            from fastlib import f
        except ImportError:
            def f():
                return 1
        """
        assert rule_ids(src) == []


class TestFLT001:
    def test_partition_assignment_flagged(self):
        src = """
        def sabotage(network):
            network._partition = {"a": 0, "b": 1}
        """
        assert rule_ids(src) == ["FLT001"]

    def test_loss_rate_mutation_flagged(self):
        src = """
        def degrade(network):
            network.loss_rate = 0.5
        """
        assert rule_ids(src) == ["FLT001"]

    def test_aug_and_annotated_assignments_flagged(self):
        assert "FLT001" in rule_ids("def f(n):\n    n.drop_prob += 0.1\n")
        assert "FLT001" in rule_ids(
            "def f(n):\n    n.loss_rate: float = 0.2\n"
        )

    def test_set_fault_surface_call_flagged(self):
        src = """
        def install(network, surface):
            network._set_fault_surface(surface)
        """
        assert rule_ids(src) == ["FLT001"]

    def test_faults_package_exempt(self):
        src = """
        def install(network, surface):
            network._set_fault_surface(surface)
        """
        assert rule_ids(src, path="src/repro/faults/injector.py") == []

    def test_transport_module_exempt(self):
        src = """
        class Network:
            def __init__(self):
                self._partition = None
                self.loss_rate = 0.0
        """
        assert rule_ids(src, path="src/repro/net/transport.py") == []

    def test_public_partition_api_clean(self):
        src = """
        def split(network):
            network.partition([["a"], ["b"]])
            network.heal()
        """
        assert rule_ids(src) == []

    def test_constructor_kwarg_clean(self):
        src = """
        def build(sim, streams, Network):
            return Network(sim, streams, loss_rate=0.02)
        """
        assert rule_ids(src) == []

    def test_censor_assignment_flagged(self):
        src = """
        def censor_by_hand(network, surface):
            network._censor = surface
        """
        assert rule_ids(src) == ["FLT001"]

    def test_set_censor_surface_call_flagged(self):
        src = """
        def install(network, surface):
            network._set_censor_surface(surface)
        """
        assert rule_ids(src) == ["FLT001"]

    def test_blocklist_in_place_mutation_flagged(self):
        for mutation in ("surface.blocklist.add('relay0')",
                         "surface.blocklist.discard('svc0')",
                         "surface.blocklist.update(ids)",
                         "surface.blocklist.clear()"):
            src = f"def poke(surface, ids):\n    {mutation}\n"
            assert rule_ids(src) == ["FLT001"], mutation

    def test_blocklist_reassignment_flagged(self):
        assert rule_ids(
            "def poke(surface):\n    surface.blocklist = set()\n"
        ) == ["FLT001"]

    def test_censor_mutation_exempt_inside_faults(self):
        src = """
        def reblock(surface, relay):
            surface.blocklist.add(relay)
        """
        assert rule_ids(src, path="src/repro/faults/injector.py") == []

    def test_unrelated_set_mutation_clean(self):
        src = """
        def track(state, relay):
            state.seen.add(relay)
            blocklist = set()
            blocklist.add(relay)
        """
        assert rule_ids(src) == []


BENCH_PATH = "src/repro/bench/micro.py"


class TestBEN001:
    def test_perf_counter_call_flagged(self):
        src = """
        import time

        def bench_x(metrics):
            start = time.perf_counter()
        """
        assert rule_ids(src, path=BENCH_PATH) == ["BEN001"]

    def test_wall_clock_import_flagged(self):
        assert rule_ids("from time import perf_counter\n",
                        path=BENCH_PATH) == ["BEN001"]
        assert rule_ids("from time import monotonic\n",
                        path=BENCH_PATH) == ["BEN001"]

    def test_datetime_now_flagged(self):
        src = """
        import datetime

        def bench_x(metrics):
            return datetime.datetime.now()
        """
        assert rule_ids(src, path=BENCH_PATH) == ["BEN001"]

    def test_bare_time_import_clean(self):
        # Importing the module alone is fine; only clock reads are not.
        assert rule_ids("import time\n", path=BENCH_PATH) == []

    def test_time_sleep_clean(self):
        # sleep does not *read* the clock into benchmark behaviour.
        src = """
        import time

        def bench_x(metrics):
            time.sleep(0)
        """
        assert rule_ids(src, path=BENCH_PATH) == []

    def test_harness_module_exempt(self):
        src = """
        import time

        def run_benchmark(bench):
            return time.perf_counter()
        """
        assert rule_ids(src, path="src/repro/bench/harness.py") == []

    def test_outside_bench_package_out_of_scope(self):
        src = """
        import time

        def elsewhere():
            return time.perf_counter()
        """
        assert rule_ids(src, path="src/repro/analysis/runner.py") == []

    def test_noqa_suppression(self):
        src = ("import time\n"
               "def bench_x(metrics):\n"
               "    t = time.perf_counter()  # repro: noqa[BEN001]\n")
        assert rule_ids(src, path=BENCH_PATH) == []


class TestSHD001:
    def test_outbox_assignment_flagged(self):
        src = """
        def smuggle(network):
            network._shard_outbox = []
        """
        assert rule_ids(src) == ["SHD001"]

    def test_assignment_map_and_transit_flagged(self):
        src = """
        def rewire(network, router):
            network._shard_assignment = {"a": 0}
            router._envelopes_in_transit = []
        """
        assert rule_ids(src) == ["SHD001", "SHD001"]

    def test_aug_and_annotated_assignments_flagged(self):
        assert "SHD001" in rule_ids("def f(n):\n    n._shard_seq += 1\n")
        assert "SHD001" in rule_ids(
            "def f(n):\n    n._shard_outbox: list = []\n"
        )

    def test_injection_call_flagged(self):
        src = """
        def shortcut(network, envelope):
            network._inject_envelope(envelope)
        """
        assert rule_ids(src) == ["SHD001"]

    def test_take_outbox_call_flagged(self):
        src = """
        def steal(network):
            return network._take_outbox()
        """
        assert rule_ids(src) == ["SHD001"]

    def test_shard_module_exempt(self):
        src = """
        class ShardNetwork:
            def __init__(self):
                self._shard_outbox = []

            def barrier(self, envelope):
                self._inject_envelope(envelope)
        """
        assert rule_ids(src, path="src/repro/sim/shard.py") == []

    def test_public_shard_api_clean(self):
        src = """
        def drive(coordinator, network, router):
            network.send("a", "b", "ping", {})
            router.collect([])
            router.drain()
            return coordinator.run()
        """
        assert rule_ids(src) == []

    def test_noqa_suppression(self):
        src = ("def f(n):\n"
               "    n._shard_outbox = []  # repro: noqa[SHD001]\n")
        assert rule_ids(src) == []
