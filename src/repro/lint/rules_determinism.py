"""Determinism rules: DET001 (random), DET002 (wall clock), DET003 (numpy).

The contract these rules enforce is the one :mod:`repro.sim.rng`
documents: every stochastic draw flows from a named, seed-derived
stream, and simulated components never observe host time.  That is what
makes serial, parallel, and cached sweep replays bit-identical.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from repro.lint.engine import LintContext, Rule, register
from repro.lint.findings import Finding

# The scope/alias constants are shared with the whole-program index so
# the per-file rules and DET005/DET006 can never drift apart.
from repro.lint.index import (
    DATETIME_NOW_ATTRS,
    NUMPY_GENERATOR_CTORS,
    NUMPY_SEEDED_OK,
    SIMULATED_PACKAGES,
    WALL_CLOCK_ATTRS,
)

__all__ = [
    "RandomOutsideRng",
    "WallClockInSim",
    "NumpyGlobalRandom",
    "UngovernedNumpyGenerator",
]


@register
class RandomOutsideRng(Rule):
    rule_id = "DET001"
    title = "stdlib random imported outside repro/sim/rng.py"
    rationale = (
        "All randomness must route through RngStreams / seeded_rng /"
        " derive_seed so draws are named, seed-derived, and replayable;"
        " an ad-hoc random.Random sidesteps the stream discipline."
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.is_module("sim", "rng.py"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield ctx.finding(
                            self.rule_id, node,
                            "import of stdlib 'random'; use"
                            " repro.sim.rng (RngStreams / seeded_rng /"
                            " derive_seed) instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield ctx.finding(
                        self.rule_id, node,
                        "import from stdlib 'random'; use repro.sim.rng"
                        " (RngStreams / seeded_rng / derive_seed) instead",
                    )


def _attr_chain(node: ast.AST) -> Tuple[str, ...]:
    """``a.b.c`` as ``("a", "b", "c")``; empty when not a pure name chain."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


@register
class WallClockInSim(Rule):
    rule_id = "DET002"
    title = "wall-clock read inside a simulated package"
    rationale = (
        "Code under sim/, net/, chain/, storage/ and groupcomm/ runs in"
        " simulated time (Simulator.now); reading the host clock makes"
        " results depend on machine speed and scheduling."
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not ctx.in_package(*SIMULATED_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in WALL_CLOCK_ATTRS:
                            yield ctx.finding(
                                self.rule_id, node,
                                f"wall-clock import 'time.{alias.name}' in"
                                " simulated code; use the simulator clock"
                                " (sim.now)",
                            )
            elif isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if len(chain) >= 2 and chain[-2] == "time" and (
                    chain[-1] in WALL_CLOCK_ATTRS
                ):
                    yield ctx.finding(
                        self.rule_id, node,
                        f"wall-clock call '{'.'.join(chain)}' in simulated"
                        " code; use the simulator clock (sim.now)",
                    )
                elif len(chain) >= 2 and chain[-1] in DATETIME_NOW_ATTRS and (
                    chain[-2] in ("datetime", "date")
                ):
                    yield ctx.finding(
                        self.rule_id, node,
                        f"wall-clock call '{'.'.join(chain)}' in simulated"
                        " code; use the simulator clock (sim.now)",
                    )


@register
class NumpyGlobalRandom(Rule):
    rule_id = "DET003"
    title = "unseeded numpy.random global-state call"
    rationale = (
        "numpy's module-level random functions share hidden global state;"
        " any draw perturbs every later draw anywhere in the process,"
        " breaking stream independence. Use numpy.random.default_rng(seed)"
        " with an explicit derive_seed(...) seed."
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        numpy_aliases: Set[str] = set()
        random_aliases: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            random_aliases.add(alias.asname)
                        else:
                            numpy_aliases.add("numpy")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            random_aliases.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in NUMPY_SEEDED_OK:
                            yield ctx.finding(
                                self.rule_id, node,
                                f"import of global-state"
                                f" numpy.random.{alias.name}; use"
                                " numpy.random.default_rng(seed) instead",
                            )
        if not numpy_aliases and not random_aliases:
            return
        for node in ast.walk(ctx.tree):
            chain = _attr_chain(node) if isinstance(node, ast.Attribute) else ()
            if len(chain) == 3 and chain[0] in numpy_aliases and (
                chain[1] == "random"
            ) and chain[2] not in NUMPY_SEEDED_OK:
                yield ctx.finding(
                    self.rule_id, node,
                    f"global-state call '{'.'.join(chain)}'; use"
                    " numpy.random.default_rng(seed) instead",
                )
            elif len(chain) == 2 and chain[0] in random_aliases and (
                chain[1] not in NUMPY_SEEDED_OK
            ):
                yield ctx.finding(
                    self.rule_id, node,
                    f"global-state call '{'.'.join(chain)}'; use"
                    " numpy.random.default_rng(seed) instead",
                )


@register
class UngovernedNumpyGenerator(Rule):
    rule_id = "DET004"
    title = "numpy Generator constructed outside repro/sim/rng.py"
    rationale = (
        "Vectorized randomness must route through"
        " repro.sim.rng.seeded_generator / RngStreams.generator so numpy"
        " streams are named, derive_seed-derived, and draw-order"
        " checksummable; an ad-hoc default_rng()/Generator() sidesteps"
        " the stream discipline exactly like DET001's random.Random."
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.is_module("sim", "rng.py"):
            return
        numpy_aliases: Set[str] = set()
        random_aliases: Set[str] = set()
        ctor_aliases: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            random_aliases.add(alias.asname)
                        else:
                            numpy_aliases.add("numpy")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            random_aliases.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name in NUMPY_GENERATOR_CTORS:
                            ctor_aliases.add(alias.asname or alias.name)
        if not (numpy_aliases or random_aliases or ctor_aliases):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            ungoverned = (
                (
                    len(chain) == 3
                    and chain[0] in numpy_aliases
                    and chain[1] == "random"
                    and chain[2] in NUMPY_GENERATOR_CTORS
                )
                or (
                    len(chain) == 2
                    and chain[0] in random_aliases
                    and chain[1] in NUMPY_GENERATOR_CTORS
                )
                or (len(chain) == 1 and chain[0] in ctor_aliases)
            )
            if ungoverned:
                yield ctx.finding(
                    self.rule_id, node,
                    f"ungoverned generator construction"
                    f" '{'.'.join(chain)}(...)'; use"
                    " repro.sim.rng.seeded_generator(root_seed, name)"
                    " (or RngStreams.generator) instead",
                )
