"""Bitswap-style pairwise barter ledgers (IPFS's incentive, Table 2).

IPFS does not use a blockchain: each pair of peers keeps a *ledger* of
bytes exchanged, and a peer stops serving ("chokes") counterparties whose
debt ratio grows too large.  This is the one Table 2 incentive scheme
that needs no payments at all — and it has the known weakness the
experiments show: it polices *reciprocity*, not *storage*, so freeloaders
are choked but data loss is invisible until retrieval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.errors import RemoteError, RpcTimeoutError, StorageError
from repro.net.transport import Network
from repro.storage.blob import DataBlob

__all__ = ["BitswapLedger", "BitswapPeer"]


@dataclass
class _PairLedger:
    """One direction-aware byte ledger for a peer pair."""

    bytes_sent: int = 0       # we uploaded this many bytes to the peer
    bytes_received: int = 0   # the peer uploaded this many bytes to us

    @property
    def debt_ratio(self) -> float:
        """How indebted the *peer* is to us: sent / (received + 1)."""
        return self.bytes_sent / (self.bytes_received + 1)


class BitswapLedger:
    """All pairwise ledgers for one peer, with the choking rule."""

    def __init__(self, choke_debt_ratio: float = 2.0, grace_bytes: int = 4096):
        if choke_debt_ratio <= 0:
            raise StorageError("choke ratio must be positive")
        self.choke_debt_ratio = choke_debt_ratio
        self.grace_bytes = grace_bytes
        self._pairs: Dict[str, _PairLedger] = {}

    def pair(self, peer: str) -> _PairLedger:
        ledger = self._pairs.get(peer)
        if ledger is None:
            ledger = _PairLedger()
            self._pairs[peer] = ledger
        return ledger

    def record_sent(self, peer: str, n_bytes: int) -> None:
        self.pair(peer).bytes_sent += n_bytes

    def record_received(self, peer: str, n_bytes: int) -> None:
        self.pair(peer).bytes_received += n_bytes

    def should_serve(self, peer: str) -> bool:
        """Tit-for-tat: serve until the peer's debt exceeds the choke
        ratio (with a grace allowance so new peers can bootstrap)."""
        ledger = self.pair(peer)
        if ledger.bytes_sent <= self.grace_bytes:
            return True
        return ledger.debt_ratio <= self.choke_debt_ratio

    def debtors(self) -> List[Tuple[str, float]]:
        """Peers by descending debt ratio (diagnostics)."""
        return sorted(
            ((peer, ledger.debt_ratio) for peer, ledger in self._pairs.items()),
            key=lambda item: -item[1],
        )


class BitswapPeer:
    """A peer exchanging blob chunks under pairwise barter accounting."""

    def __init__(
        self,
        network: Network,
        node_id: str,
        choke_debt_ratio: float = 2.0,
        grace_bytes: int = 4096,
    ):
        self.network = network
        self.node_id = node_id
        if not network.has_node(node_id):
            network.create_node(node_id)
        self.ledger = BitswapLedger(choke_debt_ratio, grace_bytes)
        self._blocks: Dict[str, Dict[int, bytes]] = {}
        self.chokes_issued = 0
        network.node(node_id).register_handler("bitswap.want", self._on_want)

    # -- local store --------------------------------------------------------

    def add_blob(self, blob: DataBlob) -> str:
        self._blocks[blob.content_id] = dict(enumerate(blob.chunks))
        return blob.content_id

    def has_chunk(self, content_id: str, index: int) -> bool:
        return index in self._blocks.get(content_id, {})

    def chunk_count(self, content_id: str) -> int:
        return len(self._blocks.get(content_id, {}))

    # -- protocol --------------------------------------------------------------

    def _on_want(self, node, payload: dict, sender: str):
        content_id, index = payload["content_id"], payload["index"]
        if not self.ledger.should_serve(sender):
            self.chokes_issued += 1
            raise StorageError(f"{self.node_id!r} chokes {sender!r} (debt)")
        chunk = self._blocks.get(content_id, {}).get(index)
        if chunk is None:
            raise StorageError(f"{self.node_id!r} lacks chunk {index}")
        self.ledger.record_sent(sender, len(chunk))
        return chunk

    def fetch_chunk(self, peer: str, content_id: str, index: int) -> Generator:
        """Request one chunk; records received bytes on success."""
        chunk = yield from self.network.rpc(
            self.node_id, peer, "bitswap.want",
            {"content_id": content_id, "index": index},
            response_bytes=1024,
        )
        self.ledger.record_received(peer, len(chunk))
        self._blocks.setdefault(content_id, {})[index] = chunk
        return chunk

    def fetch_blob(
        self, peers: List[str], content_id: str, chunk_count: int
    ) -> Generator:
        """Fetch all chunks round-robin from peers; returns missing count.

        Chokes and missing chunks are skipped (partial downloads are
        Bitswap's normal condition, resolved by retrying elsewhere).
        """
        missing = 0
        for index in range(chunk_count):
            if self.has_chunk(content_id, index):
                continue
            got = False
            for offset in range(len(peers)):
                peer = peers[(index + offset) % len(peers)]
                try:
                    yield from self.fetch_chunk(peer, content_id, index)
                    got = True
                    break
                except (RemoteError, RpcTimeoutError):
                    continue
            if not got:
                missing += 1
        return missing
