"""Shard-engine experiment drivers (``--engine shard``).

Sharded counterparts of the E4/E5 drivers plus an E6-class
registration smoke, built on :mod:`repro.sim.shard`.  The workloads
here are *send-based* restatements of the experiments: cross-shard RPC
is unsupported (the response generator would block across a
synchronization barrier), so every protocol is expressed as one-way
request and reply legs — which is also how the real wire protocols
behind the paper's §3 systems work.

Every workload keeps its randomness on per-node streams
(``churn.<node_id>``, ``shard.place.<node_id>``), uses a
pairwise-deterministic latency model, and runs lossless — the
determinism contract of :mod:`repro.sim.shard`, which is what makes
aggregates equal for every shard count ``K`` (the property suite in
``tests/sim/test_shard_equivalence.py`` holds each driver to it).

Like :mod:`repro.analysis.experiments`, grid-shaped drivers split into
a top-level ``_*_point`` function (JSON-safe kwargs, picklable, one
grid point) and a public ``run_*_shard`` driver that fans the grid out
through a :class:`repro.analysis.runner.SweepRunner` — the shard
engine composes with the sweep cache and worker pool unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.runner import SweepRunner
from repro.faults.presets import preset_plan
from repro.net.churn import ChurnProcess, ChurnProfile
from repro.net.latency import ConstantLatency, PlanetLatency
from repro.net.node import Node
from repro.sim.rng import RngStreams
from repro.sim.shard import Shard, ShardWorkload, ShardedSimulator

__all__ = [
    "federation_workload",
    "ping_mesh_workload",
    "registration_workload",
    "run_federation_availability_shard",
    "run_social_tradeoff_shard",
    "run_registration_shard_smoke",
    "run_shard_chaos",
]


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over a sorted sequence (0 <= q <= 100)."""
    if not values:
        return 0.0
    rank = max(1, -(-len(values) * int(q) // 100))  # ceil(n*q/100)
    return values[rank - 1]


# ---------------------------------------------------------------------------
# E4 — federation availability, send-based
# ---------------------------------------------------------------------------

def _federation_build(
    shard: Shard,
    model_name: str,
    n_servers: int,
    n_users: int,
    n_messages: int,
    failed_servers: int,
    fail_at: float,
    read_at: float,
) -> None:
    servers = [f"srv{i}" for i in range(n_servers)]
    users = [f"u{i}" for i in range(n_users)]
    home = {user: servers[i % n_servers] for i, user in enumerate(users)}
    network, sim = shard.network, shard.sim
    server_log: Dict[str, set] = {s: set() for s in servers}
    user_msgs: Dict[str, set] = {u: set() for u in users}
    shard.state["server_log"] = server_log
    shard.state["user_msgs"] = user_msgs
    shard.state["fetches"] = {"count": 0}

    def on_post(node: Node, payload: Any, sender_id: str) -> None:
        mid = payload["mid"]
        server_log[node.node_id].add(mid)
        if model_name != "single_home":
            for other in servers:
                if other != node.node_id:
                    network.send(node.node_id, other, "replicate",
                                 {"mid": mid})

    def on_replicate(node: Node, payload: Any, sender_id: str) -> None:
        server_log[node.node_id].add(payload["mid"])

    def on_fetch(node: Node, payload: Any, sender_id: str) -> None:
        user = payload["user"]
        network.send(node.node_id, user, "history",
                     {"mids": sorted(server_log[node.node_id])})
        if model_name == "single_home":
            # A single-home hub holds only its own users' posts; it
            # pulls the rest on demand, and a dead peer never answers.
            for other in servers:
                if other != node.node_id:
                    network.send(node.node_id, other, "pull",
                                 {"user": user})

    def on_pull(node: Node, payload: Any, sender_id: str) -> None:
        network.send(node.node_id, payload["user"], "history",
                     {"mids": sorted(server_log[node.node_id])})

    def on_history(node: Node, payload: Any, sender_id: str) -> None:
        user_msgs[node.node_id].update(payload["mids"])

    for server in servers:
        node = network.add_node(Node(server))
        node.register_handler("post", on_post)
        node.register_handler("replicate", on_replicate)
        node.register_handler("fetch", on_fetch)
        node.register_handler("pull", on_pull)
    for user in users:
        node = network.add_node(Node(user, node_class="personal_computer"))
        node.register_handler("history", on_history)

    # Posting phase: author i posts message i to its home server.
    for i in range(n_messages):
        author = users[i % n_users]
        if shard.owns(author):
            sim.schedule_at(1.0 + 0.5 * i, network.send, author,
                            home[author], "post", {"mid": i})

    # Deterministic failures: the first k servers die, on every shard
    # (ghost copies flip too, keeping liveness globally consistent).
    def fail_servers() -> None:
        for server in servers[:failed_servers]:
            network.node(server).set_online(False, sim.now)

    sim.schedule_at(fail_at, fail_servers)

    # Read phase: each user fetches from its home; under failover the
    # user walks the ring until its history is complete.
    def fetch_from(user: str, server: str) -> None:
        if len(user_msgs[user]) >= n_messages:
            return
        shard.state["fetches"]["count"] += 1
        network.send(user, server, "fetch", {"user": user})

    for j, user in enumerate(users):
        if not shard.owns(user):
            continue
        sim.schedule_at(read_at + 0.1 * j, fetch_from, user, home[user])
        if model_name == "replicated_failover":
            base = servers.index(home[user])
            for f in range(1, n_servers):
                fallback = servers[(base + f) % n_servers]
                sim.schedule_at(read_at + 0.1 * j + 5.0 * f,
                                fetch_from, user, fallback)


def _federation_collect(
    shard: Shard, n_messages: int, n_users: int
) -> Dict[str, Any]:
    users_complete = 0
    messages_read = 0
    for user, mids in shard.state["user_msgs"].items():
        if not shard.owns(user):
            continue
        messages_read += len(mids)
        if len(mids) >= n_messages:
            users_complete += 1
    posts_stored = sum(
        len(log) for server, log in shard.state["server_log"].items()
        if shard.owns(server)
    )
    return {
        "users_complete": users_complete,
        "messages_read": messages_read,
        "posts_stored": posts_stored,
        "fetches": shard.state["fetches"]["count"],
    }


def federation_workload(
    model_name: str,
    n_servers: int = 5,
    n_users: int = 20,
    n_messages: int = 8,
    failed_servers: int = 1,
    fail_at: float = 30.0,
    read_at: float = 40.0,
    horizon: float = 100.0,
) -> ShardWorkload:
    """E4 as a shard workload: post, replicate, fail, then read.

    ``single_home`` pulls history across hubs at read time (dead hubs
    never answer), ``replicated`` pushes every post everywhere, and
    ``replicated_failover`` additionally walks users to the next live
    hub — the §3.2 availability ladder, exactly as in
    :func:`repro.analysis.experiments.run_federation_availability`.
    """
    node_ids = tuple(
        [f"srv{i}" for i in range(n_servers)]
        + [f"u{i}" for i in range(n_users)]
    )
    return ShardWorkload(
        name=f"e4_shard_{model_name}",
        node_ids=node_ids,
        build=lambda shard: _federation_build(
            shard, model_name, n_servers, n_users, n_messages,
            failed_servers, fail_at, read_at,
        ),
        collect=lambda shard: _federation_collect(
            shard, n_messages, n_users
        ),
        latency_factory=lambda streams: ConstantLatency(0.02),
        horizon=horizon,
    )


def _federation_shard_point(
    model_name: str,
    seed: int,
    shards: int,
    mode: str,
    n_servers: int,
    n_users: int,
    n_messages: int,
    failed_servers: int,
) -> Dict[str, object]:
    """One E4 shard grid point: one federation model, K shards."""
    coordinator = ShardedSimulator(
        federation_workload,
        {
            "model_name": model_name,
            "n_servers": n_servers,
            "n_users": n_users,
            "n_messages": n_messages,
            "failed_servers": failed_servers,
        },
        shards=shards,
        seed=seed,
        mode=mode,
    )
    results = coordinator.run()
    users_complete = sum(r["users_complete"] for r in results)
    return {
        "model": model_name,
        "shards": shards,
        "servers": n_servers,
        "failed": failed_servers,
        "users_complete": users_complete,
        "messages_read": sum(r["messages_read"] for r in results),
        "posts_stored": sum(r["posts_stored"] for r in results),
        "read_availability": users_complete / n_users,
        "messages_crossed": coordinator.router.messages_crossed,
        "sync_rounds": coordinator.sync_rounds,
    }


def run_federation_availability_shard(
    seed: int = 1,
    shards: int = 2,
    n_servers: int = 5,
    n_users: int = 20,
    n_messages: int = 8,
    failed_servers: int = 1,
    mode: str = "inline",
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """E4 on the shard engine: one row per federation model.

    Workload aggregates (``users_complete``, ``messages_read``,
    ``posts_stored``, ``read_availability``) are equal for every
    ``shards`` value; ``messages_crossed``/``sync_rounds`` describe the
    engine itself and do vary with K.
    """
    runner = runner or SweepRunner()
    configs = [
        {
            "model_name": model_name,
            "seed": seed,
            "shards": shards,
            "mode": mode,
            "n_servers": n_servers,
            "n_users": n_users,
            "n_messages": n_messages,
            "failed_servers": failed_servers,
        }
        for model_name in ("single_home", "replicated", "replicated_failover")
    ]
    return runner.run(
        "E4_federation_availability_shard", _federation_shard_point, configs
    )


# ---------------------------------------------------------------------------
# E5 — ping-mesh RTT under churn, send-based
# ---------------------------------------------------------------------------

def _mesh_ids(n_nodes: int) -> List[str]:
    return [f"p{i}" for i in range(n_nodes)]


def _mesh_latency(streams: RngStreams, n_nodes: int) -> PlanetLatency:
    # Coordinates come from per-node streams, so every shard (and the
    # single-process reference) places every node identically — the
    # pre-placement that makes PlanetLatency pairwise-deterministic.
    model = PlanetLatency(streams)
    for node_id in _mesh_ids(n_nodes):
        rng = streams.stream(f"shard.place.{node_id}")
        model.place(Node(node_id), rng.random(), rng.random())
    return model


def _ping_mesh_build(
    shard: Shard,
    n_nodes: int,
    degree: int,
    n_rounds: int,
    churn: bool,
) -> None:
    ids = _mesh_ids(n_nodes)
    network, sim = shard.network, shard.sim
    rtts: List[float] = []
    sent = {"count": 0}
    shard.state["rtts"] = rtts
    shard.state["sent"] = sent

    def on_ping(node: Node, payload: Any, sender_id: str) -> None:
        network.send(node.node_id, sender_id, "pong", payload)

    def on_pong(node: Node, payload: Any, sender_id: str) -> None:
        rtts.append(sim.now - payload["sent"])

    for node_id in ids:
        node = network.add_node(Node(node_id, node_class="personal_computer"))
        node.register_handler("ping", on_ping)
        node.register_handler("pong", on_pong)

    # Deterministic small-world-ish neighbor set: ring plus one chord.
    def neighbors(i: int) -> List[str]:
        hops = [1, n_nodes - 1] + ([degree] if degree > 1 else [])
        seen: List[str] = []
        for hop in hops:
            peer = ids[(i + hop) % n_nodes]
            if peer != ids[i] and peer not in seen:
                seen.append(peer)
        return seen

    def ping(src: str, dst: str) -> None:
        sent["count"] += 1
        network.send(src, dst, "ping", {"sent": sim.now})

    for i, node_id in enumerate(ids):
        if not shard.owns(node_id):
            continue
        for round_no in range(n_rounds):
            for j, peer in enumerate(neighbors(i)):
                at = 1.0 + 7.0 * round_no + 0.013 * i + 0.003 * j
                sim.schedule_at(at, ping, node_id, peer)
        if churn:
            process = ChurnProcess(
                sim, shard.streams, network.node(node_id),
                ChurnProfile(mean_uptime=60.0, mean_downtime=15.0,
                             name="mesh"),
            )
            process.start()
            shard.churn[node_id] = process


def _ping_mesh_collect(shard: Shard) -> Dict[str, Any]:
    return {
        "pings_sent": shard.state["sent"]["count"],
        "rtts": sorted(shard.state["rtts"]),
    }


def ping_mesh_workload(
    n_nodes: int = 16,
    degree: int = 3,
    n_rounds: int = 4,
    churn: bool = True,
    horizon: float = 60.0,
) -> ShardWorkload:
    """E5-class workload: RTT probing over a ring-plus-chord mesh.

    Placed :class:`~repro.net.latency.PlanetLatency` gives
    geographically-consistent RTTs; per-node churn (when enabled)
    drops probes to offline peers, thinning the histogram exactly as
    the paper's always-on-vs-churning comparison expects.
    """
    return ShardWorkload(
        name="e5_shard_ping_mesh",
        node_ids=tuple(_mesh_ids(n_nodes)),
        build=lambda shard: _ping_mesh_build(
            shard, n_nodes, degree, n_rounds, churn
        ),
        collect=_ping_mesh_collect,
        latency_factory=lambda streams: _mesh_latency(streams, n_nodes),
        horizon=horizon,
    )


def _ping_mesh_point(
    seed: int,
    shards: int,
    mode: str,
    n_nodes: int,
    degree: int,
    n_rounds: int,
    churn: bool,
    engine: str = "shard",
) -> Dict[str, object]:
    """One E5 shard grid point (``engine="single"`` is the equivalence
    target the property suite compares against)."""
    if engine == "single":
        from repro.sim.shard import run_single_process

        merged = run_single_process(
            ping_mesh_workload(n_nodes, degree, n_rounds, churn), seed
        )
        results = [merged]
        crossed = 0
        rounds = 0
    else:
        coordinator = ShardedSimulator(
            ping_mesh_workload,
            {
                "n_nodes": n_nodes,
                "degree": degree,
                "n_rounds": n_rounds,
                "churn": churn,
            },
            shards=shards,
            seed=seed,
            mode=mode,
        )
        results = coordinator.run()
        crossed = coordinator.router.messages_crossed
        rounds = coordinator.sync_rounds
    rtts = sorted(rtt for r in results for rtt in r["rtts"])
    return {
        "nodes": n_nodes,
        "shards": shards,
        "churn": churn,
        "pings_sent": sum(r["pings_sent"] for r in results),
        "pongs_received": len(rtts),
        "rtt_p50_ms": round(1000 * _percentile(rtts, 50), 3),
        "rtt_p95_ms": round(1000 * _percentile(rtts, 95), 3),
        "messages_crossed": crossed,
        "sync_rounds": rounds,
    }


def run_social_tradeoff_shard(
    seed: int = 3,
    shards: int = 2,
    mesh_sizes: Sequence[int] = (12, 24),
    degree: int = 3,
    n_rounds: int = 4,
    mode: str = "inline",
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """E5 on the shard engine: RTT/loss rows per mesh size, with and
    without churn (the always-on half is the centralized baseline)."""
    runner = runner or SweepRunner()
    configs = [
        {
            "seed": seed,
            "shards": shards,
            "mode": mode,
            "n_nodes": n_nodes,
            "degree": degree,
            "n_rounds": n_rounds,
            "churn": churn,
        }
        for n_nodes in mesh_sizes
        for churn in (False, True)
    ]
    return runner.run("E5_social_tradeoff_shard", _ping_mesh_point, configs)


# ---------------------------------------------------------------------------
# E6-class registration smoke + chaos
# ---------------------------------------------------------------------------

def _registration_build(
    shard: Shard, n_clients: int, retry_every: float, horizon: float
) -> None:
    clients = [f"client{i}" for i in range(n_clients)]
    network, sim = shard.network, shard.sim
    certified: Dict[str, bool] = {c: False for c in clients}
    attempts = {"count": 0}
    shard.state["certified"] = certified
    shard.state["attempts"] = attempts

    def on_register(node: Node, payload: Any, sender_id: str) -> None:
        network.send(node.node_id, sender_id, "cert", {})

    def on_cert(node: Node, payload: Any, sender_id: str) -> None:
        certified[node.node_id] = True

    ca = network.add_node(Node("ca"))
    ca.register_handler("register", on_register)
    for client in clients:
        node = network.add_node(Node(client, node_class="personal_computer"))
        node.register_handler("cert", on_cert)

    def attempt(client: str) -> None:
        if certified[client]:
            return
        attempts["count"] += 1
        network.send(client, "ca", "register", {})

    for i, client in enumerate(clients):
        if not shard.owns(client):
            continue
        at = 1.0 + float(i)
        while at < horizon:
            sim.schedule_at(at, attempt, client)
            at += retry_every


def _registration_collect(shard: Shard) -> Dict[str, Any]:
    certified = sum(
        1 for client, done in shard.state["certified"].items()
        if done and shard.owns(client)
    )
    return {
        "certified": certified,
        "attempts": shard.state["attempts"]["count"],
    }


def registration_workload(
    n_clients: int = 6,
    retry_every: float = 10.0,
    horizon: float = 100.0,
) -> ShardWorkload:
    """E6-class smoke: clients register with a CA, retrying until
    certified.  Node names (``client0`` … / ``ca``) match the
    ``registration-partition`` fault preset, so the same plan drives
    the chaos golden."""
    node_ids = tuple(
        ["ca"] + [f"client{i}" for i in range(n_clients)]
    )
    return ShardWorkload(
        name="e6_shard_registration",
        node_ids=node_ids,
        build=lambda shard: _registration_build(
            shard, n_clients, retry_every, horizon
        ),
        collect=_registration_collect,
        latency_factory=lambda streams: ConstantLatency(0.05),
        horizon=horizon,
    )


def _registration_shard_point(
    seed: int,
    shards: int,
    mode: str,
    n_clients: int,
    preset: str = "",
) -> Dict[str, object]:
    """One registration smoke point, optionally under a fault preset."""
    plan = preset_plan(preset) if preset else None
    coordinator = ShardedSimulator(
        registration_workload,
        {"n_clients": n_clients},
        shards=shards,
        seed=seed,
        mode=mode,
        plan=plan,
    )
    results = coordinator.run()
    return {
        "clients": n_clients,
        "shards": shards,
        "preset": preset or "none",
        "certified": sum(r["certified"] for r in results),
        "attempts": sum(r["attempts"] for r in results),
        "messages_crossed": coordinator.router.messages_crossed,
        "sync_rounds": coordinator.sync_rounds,
    }


def run_registration_shard_smoke(
    seed: int = 1,
    shards: int = 2,
    n_clients: int = 6,
    mode: str = "inline",
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """E6-class smoke on the shard engine: clean run and the
    ``registration-partition`` preset side by side.  Every client
    certifies in both rows — the partitioned client just needs more
    attempts (retries ride out the partition window)."""
    runner = runner or SweepRunner()
    configs = [
        {
            "seed": seed,
            "shards": shards,
            "mode": mode,
            "n_clients": n_clients,
            "preset": preset,
        }
        for preset in ("", "registration-partition")
    ]
    return runner.run(
        "E6_registration_shard_smoke", _registration_shard_point, configs
    )


def run_shard_chaos(
    preset: str = "registration-partition",
    seed: int = 1,
    shards: int = 2,
    n_clients: int = 6,
) -> Dict[str, object]:
    """Chaos run with a barrier-time conservation sweep.

    Arms ``preset`` on every shard and, at every synchronization
    barrier, checks message conservation over the combined cross-shard
    envelope accounting: ``sent == delivered + dropped + in_flight``
    (router-carried envelopes count as in flight).  Inline mode only —
    worker-process counters are unreachable between barriers.
    """
    checks = {"count": 0, "violations": 0}
    coordinator = ShardedSimulator(
        registration_workload,
        {"n_clients": n_clients},
        shards=shards,
        seed=seed,
        mode="inline",
        plan=preset_plan(preset),
    )

    def on_sync(round_no: int, barrier_time: float) -> None:
        flow = coordinator.live_flow()
        if flow is None:  # pragma: no cover - inline mode always has flow
            return
        checks["count"] += 1
        if flow["sent"] != (
            flow["delivered"] + flow["dropped"] + flow["in_flight"]
        ):
            checks["violations"] += 1

    results = coordinator.run(on_sync=on_sync)
    flow = coordinator.flow
    return {
        "preset": preset,
        "shards": shards,
        "certified": sum(r["certified"] for r in results),
        "attempts": sum(r["attempts"] for r in results),
        "sent": flow["sent"],
        "delivered": flow["delivered"],
        "dropped": flow["dropped"],
        "in_flight": flow["in_flight"],
        "conservation_checks": checks["count"],
        "conservation_violations": checks["violations"],
        "messages_crossed": coordinator.router.messages_crossed,
        "sync_rounds": coordinator.sync_rounds,
    }
