"""``python -m repro bench``: exit codes, reports, double-run identity."""

import json

from repro.__main__ import main
from repro.bench.report import validate_bench_report

FAST = ["--filter", "rng", "--repetitions", "1"]


def _run_to_file(tmp_path, name, extra=()):
    out = tmp_path / name
    code = main(["bench", "--suite", "micro", *FAST,
                 "--out", str(out), *extra])
    return code, out


class TestExitCodes:
    def test_list_exits_zero(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "micro.engine.schedule_fire_cancel" in out
        assert "macro.sweep.cold_warm_cache" in out

    def test_bad_repetitions_exits_two(self, capsys):
        assert main(["bench", "--repetitions", "0"]) == 2
        assert "--repetitions" in capsys.readouterr().err

    def test_negative_tolerance_exits_two(self, capsys):
        assert main(["bench", "--tolerance", "-1"]) == 2
        assert "--tolerance" in capsys.readouterr().err

    def test_empty_selection_exits_two(self, capsys):
        assert main(["bench", "--filter", "no.such.benchmark"]) == 2
        assert "no benchmarks matched" in capsys.readouterr().err

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        code = main(["bench", "--compare", str(tmp_path / "absent.json")])
        assert code == 2
        assert "cannot read report" in capsys.readouterr().err

    def test_invalid_baseline_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": 99}')
        code = main(["bench", "--compare", str(bad), str(bad)])
        assert code == 2
        assert "schema validation" in capsys.readouterr().err

    def test_three_compare_paths_exits_two(self, capsys):
        code = main(["bench", "--compare", "a.json", "b.json", "c.json"])
        assert code == 2
        assert "--compare" in capsys.readouterr().err


class TestRunAndReport:
    def test_out_writes_schema_valid_report(self, tmp_path, capsys):
        code, out = _run_to_file(tmp_path, "bench.json")
        assert code == 0
        doc = json.loads(out.read_text())
        assert validate_bench_report(doc) == []
        names = [b["name"] for b in doc["benchmarks"]]
        assert names == ["micro.rng.stream_draw"]
        assert doc["benchmarks"][0]["deterministic"] is True

    def test_json_format_emits_report_with_compare_section(self, capsys):
        code = main(["bench", "--suite", "micro", *FAST,
                     "--format", "json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["compare"] == []
        assert doc["nondeterministic"] == []

    def test_double_run_work_sections_byte_identical(self, tmp_path,
                                                     capsys):
        # The acceptance property: two runs of the same code produce
        # byte-identical work counters (wall clock may differ).
        _, first = _run_to_file(tmp_path, "a.json")
        _, second = _run_to_file(tmp_path, "b.json")
        work = [
            json.dumps(
                {b["name"]: b["work"]
                 for b in json.loads(path.read_text())["benchmarks"]},
                sort_keys=True,
            )
            for path in (first, second)
        ]
        assert work[0] == work[1]

    def test_compare_against_own_baseline_exits_zero(self, tmp_path,
                                                     capsys):
        _, baseline = _run_to_file(tmp_path, "baseline.json")
        code, _ = _run_to_file(tmp_path, "again.json",
                               extra=["--compare", str(baseline)])
        assert code == 0


class TestRegressionDetection:
    def _doctored(self, tmp_path, capsys, mutate):
        _, baseline = _run_to_file(tmp_path, "old.json")
        capsys.readouterr()
        doc = json.loads(baseline.read_text())
        mutate(doc["benchmarks"][0])
        slowed = tmp_path / "new.json"
        slowed.write_text(json.dumps(doc))
        return baseline, slowed

    def test_injected_slowdown_exits_one(self, tmp_path, capsys):
        def slow_down(bench):
            bench["best_s"] = bench["best_s"] + 1.0
            bench["mean_s"] = bench["mean_s"] + 1.0

        baseline, slowed = self._doctored(tmp_path, capsys, slow_down)
        code = main(["bench", "--compare", str(baseline), str(slowed)])
        assert code == 1
        assert "wall clock regressed" in capsys.readouterr().out

    def test_work_drift_exits_one(self, tmp_path, capsys):
        def drift(bench):
            bench["work"]["bench.rng_draws"] += 1

        baseline, drifted = self._doctored(tmp_path, capsys, drift)
        code = main(["bench", "--compare", str(baseline), str(drifted)])
        assert code == 1
        assert "drifted" in capsys.readouterr().out

    def test_nondeterministic_new_report_exits_one(self, tmp_path, capsys):
        def wobble(bench):
            bench["deterministic"] = False

        baseline, wobbly = self._doctored(tmp_path, capsys, wobble)
        code = main(["bench", "--compare", str(baseline), str(wobbly)])
        assert code == 1
        assert "NONDETERMINISTIC" in capsys.readouterr().out
