"""E2 — regenerate Table 2 (storage systems: blockchain usage x incentive).

Before printing each row, the bench *runs* the profile's mechanism: a
deal is made under the profile's proof kind, one audit epoch executes,
and an honest provider gets paid — so the table reflects mechanisms that
demonstrably work in this library, not transcription.
"""

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.net import ConstantLatency, Network
from repro.sim import RngStreams, Simulator
from repro.storage import (
    DealState,
    ProofKind,
    StorageMarketplace,
    StorageProvider,
    TABLE2_SYSTEMS,
    make_random_blob,
    table2_rows,
)


def _run_profile_mechanisms():
    results = {}
    for profile in TABLE2_SYSTEMS:
        sim = Simulator()
        streams = RngStreams(42)
        network = Network(sim, streams, latency=ConstantLatency(0.01))
        market = StorageMarketplace(network, streams)
        provider = StorageProvider(network, "provider")
        market.register_provider(provider)
        network.create_node("consumer")
        market.ledger.credit("consumer", 100.0)
        blob = make_random_blob(streams, 8 * 1024, chunk_size=1024)

        def scenario():
            deal = yield from market.make_deal(
                "consumer", blob, epochs=1,
                proof_kind=profile.proof_kind, price_per_epoch=1.0,
            )
            yield from market.run_epoch()
            return deal

        deal = sim.run_process(scenario())
        results[profile.name] = deal
    return results


def test_bench_table2(benchmark):
    results = benchmark(_run_profile_mechanisms)
    emit("Table 2 — Comparison of surveyed storage systems",
         render_table(table2_rows()))
    # Every profile's mechanism ran and the honest provider was paid.
    assert len(results) == 7
    for name, deal in results.items():
        assert deal.state == DealState.COMPLETED, name
        assert deal.epochs_paid == 1, name
    # Paper facts encoded in the table: only IPFS and MaidSafe avoid
    # blockchains entirely; Filecoin uses replication proofs.
    rows = {r["system"]: r for r in table2_rows()}
    non_chain = [s for s, r in rows.items() if r["blockchain_usage"] == "None"]
    assert sorted(non_chain) == ["IPFS", "MaidSafe"]
    assert "Proof-of-replication" in rows["Filecoin"]["incentive_scheme"]
