"""DET003 positive fixture: numpy global-state randomness (never
imported by tests; numpy need not resolve)."""

import numpy as np


def noisy(n: int):
    np.random.seed(0)
    return np.random.rand(n)
