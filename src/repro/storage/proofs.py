"""The storage proof systems of Table 2 as challenge-response games.

Each verifier holds only a commitment (Merkle root + chunk count) and
challenges providers over the network:

* **Proof-of-Storage** (Sia's contract checks, Swarm's SWEAR): random
  chunk index; the answer must open the Merkle commitment.  A provider
  missing fraction ``f`` of chunks fails each round with probability
  ~``f`` — soundness grows exponentially in rounds.
* **Proof-of-Retrievability** (Storj): sample ``s`` indices per round;
  additionally the client periodically retrieves and reassembles, so
  "stores but won't serve" is also caught.
* **Proof-of-Replication** (Filecoin): challenge *sealed* replicas under
  a response deadline.  A dedup cheater re-seals on demand and busts the
  deadline; an honest replica answers in one disk read.
* **Proof-of-Spacetime** (Filecoin): PoRep repeated on a schedule; the
  record of passed epochs is the spacetime proof.

Outcomes report both correctness failures and deadline violations, so
experiments can separate "didn't have the data" from "had to cheat slowly".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.crypto.merkle import MerkleProof, _leaf_hash
from repro.errors import RemoteError, RpcTimeoutError, StorageError
from repro.net.transport import Network
from repro.sim.rng import RngStreams

__all__ = [
    "Commitment",
    "ChallengeOutcome",
    "ProofRoundReport",
    "StorageVerifier",
    "SpacetimeRecord",
]


@dataclass(frozen=True)
class Commitment:
    """What the verifier remembers about stored data: O(1) state."""

    root: str
    chunk_count: int

    def verify_answer(self, index: int, chunk: bytes, proof: MerkleProof) -> bool:
        if proof.leaf_index != index:
            return False
        if proof.leaf_hash != _leaf_hash(chunk):
            return False
        return proof.verify(self.root)


@dataclass(frozen=True)
class ChallengeOutcome:
    """One challenge: did it verify, and how fast was the answer."""

    index: int
    ok: bool
    response_time: float
    deadline_met: bool
    reason: str = ""


@dataclass
class ProofRoundReport:
    """Aggregate over a round of challenges."""

    outcomes: List[ChallengeOutcome] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(o.ok and o.deadline_met for o in self.outcomes)

    @property
    def correctness_failures(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def deadline_violations(self) -> int:
        return sum(1 for o in self.outcomes if o.ok and not o.deadline_met)


@dataclass
class SpacetimeRecord:
    """The proof-of-spacetime ledger: which epochs a provider proved."""

    provider: str
    commitment_root: str
    epochs_proved: List[float] = field(default_factory=list)
    epochs_failed: List[float] = field(default_factory=list)

    @property
    def uptime_fraction(self) -> float:
        total = len(self.epochs_proved) + len(self.epochs_failed)
        return len(self.epochs_proved) / total if total else 0.0


class StorageVerifier:
    """Client-side prover-auditor bound to a network node."""

    def __init__(
        self,
        network: Network,
        client_id: str,
        streams: RngStreams,
        response_deadline: float = 0.5,
        rpc_timeout: float = 30.0,
    ):
        if response_deadline <= 0:
            raise StorageError("response deadline must be positive")
        self.network = network
        self.client_id = client_id
        if not network.has_node(client_id):
            network.create_node(client_id)
        self.response_deadline = response_deadline
        self.rpc_timeout = rpc_timeout
        self._rng = streams.stream(f"verifier.{client_id}")

    # -- single challenge -------------------------------------------------------

    def challenge_once(
        self, provider_id: str, commitment: Commitment, index: Optional[int] = None
    ) -> Generator:
        """Challenge one chunk; returns a :class:`ChallengeOutcome`."""
        if index is None:
            index = self._rng.randrange(commitment.chunk_count)
        start = self.network.sim.now
        try:
            chunk, proof = yield from self.network.rpc(
                self.client_id,
                provider_id,
                "store.challenge",
                {"commitment_id": commitment.root, "index": index},
                timeout=self.rpc_timeout,
            )
        except (RpcTimeoutError, RemoteError) as exc:
            return ChallengeOutcome(
                index=index,
                ok=False,
                response_time=self.network.sim.now - start,
                deadline_met=False,
                reason=type(exc).__name__,
            )
        elapsed = self.network.sim.now - start
        ok = commitment.verify_answer(index, chunk, proof)
        return ChallengeOutcome(
            index=index,
            ok=ok,
            response_time=elapsed,
            deadline_met=elapsed <= self.response_deadline,
            reason="" if ok else "bad-proof",
        )

    # -- proof-of-storage ----------------------------------------------------------

    def proof_of_storage(
        self, provider_id: str, commitment: Commitment, rounds: int = 1
    ) -> Generator:
        """``rounds`` independent random-chunk challenges."""
        report = ProofRoundReport()
        for _ in range(rounds):
            outcome = yield from self.challenge_once(provider_id, commitment)
            report.outcomes.append(outcome)
        return report

    # -- proof-of-retrievability ------------------------------------------------------

    def proof_of_retrievability(
        self,
        provider_id: str,
        commitment: Commitment,
        sample_size: int = 4,
    ) -> Generator:
        """Sample several distinct chunks in one audit; all must verify."""
        count = min(sample_size, commitment.chunk_count)
        indices = self._rng.sample(range(commitment.chunk_count), count)
        report = ProofRoundReport()
        for index in indices:
            outcome = yield from self.challenge_once(
                provider_id, commitment, index
            )
            report.outcomes.append(outcome)
        return report

    def retrieve_all(
        self, provider_id: str, commitment: Commitment
    ) -> Generator:
        """Full retrieval + verification: the ultimate retrievability test.

        Returns the chunk list; raises :class:`StorageError` if any chunk
        is missing or fails verification.
        """
        chunks: List[bytes] = []
        for index in range(commitment.chunk_count):
            try:
                chunk, proof = yield from self.network.rpc(
                    self.client_id,
                    provider_id,
                    "store.get",
                    {"commitment_id": commitment.root, "index": index},
                    timeout=self.rpc_timeout,
                )
            except (RpcTimeoutError, RemoteError) as exc:
                raise StorageError(
                    f"retrieval of chunk {index} failed: {exc}"
                ) from exc
            if not commitment.verify_answer(index, chunk, proof):
                raise StorageError(f"chunk {index} failed verification")
            chunks.append(chunk)
        return chunks

    # -- proof-of-replication ------------------------------------------------------------

    def proof_of_replication(
        self,
        provider_id: str,
        sealed_commitments: List[Commitment],
        challenges_per_replica: int = 1,
    ) -> Generator:
        """Challenge every claimed sealed replica under the deadline.

        Distinct sealed commitments have distinct roots, so byte-identical
        answers cannot be shared between replicas; a provider holding one
        physical copy must re-seal per challenge and blows the deadline.
        Returns ``{replica_root: ProofRoundReport}``.
        """
        reports: Dict[str, ProofRoundReport] = {}
        for commitment in sealed_commitments:
            report = ProofRoundReport()
            for _ in range(challenges_per_replica):
                outcome = yield from self.challenge_once(provider_id, commitment)
                report.outcomes.append(outcome)
            reports[commitment.root] = report
        return reports

    # -- proof-of-spacetime ----------------------------------------------------------------

    def proof_of_spacetime(
        self,
        provider_id: str,
        commitment: Commitment,
        epochs: int,
        epoch_length: float,
        record: Optional[SpacetimeRecord] = None,
    ) -> Generator:
        """Run one challenge per epoch for ``epochs`` epochs.

        Returns the :class:`SpacetimeRecord` — continuous storage over time
        is exactly what the accumulated pass/fail history attests.
        """
        if record is None:
            record = SpacetimeRecord(provider=provider_id, commitment_root=commitment.root)
        for _ in range(epochs):
            outcome = yield from self.challenge_once(provider_id, commitment)
            now = self.network.sim.now
            if outcome.ok and outcome.deadline_met:
                record.epochs_proved.append(now)
            else:
                record.epochs_failed.append(now)
            yield epoch_length
        return record
