#!/usr/bin/env python3
"""The decentralized storage marketplace (§3.3 / Table 2) end to end.

A consumer stores a file with three providers: an honest one, one that
quietly drops half the data, and one running the Filecoin-style
Sybil/dedup cheat (claiming two sealed replicas while storing one).  Ten
audit epochs later the earnings table shows why the proof systems exist.

Run:  python examples/storage_marketplace.py
"""

from repro.analysis import render_table
from repro.net import ConstantLatency, Network
from repro.sim import RngStreams, Simulator
from repro.storage import (
    Commitment,
    ProofKind,
    StorageDeal,
    StorageMarketplace,
    StorageProvider,
    make_random_blob,
    seal_blob,
)

EPOCHS = 10


def main() -> None:
    sim = Simulator()
    streams = RngStreams(11)
    network = Network(sim, streams, latency=ConstantLatency(0.01))
    market = StorageMarketplace(network, streams, response_deadline=0.3)

    honest = StorageProvider(network, "honest-provider")
    dropper = StorageProvider(network, "dropping-provider")
    sybil = StorageProvider(network, "sybil-provider", seal_time=1.0)
    for provider in (honest, dropper, sybil):
        market.register_provider(provider)
    network.create_node("consumer")
    market.ledger.credit("consumer", 1000.0)

    blob = make_random_blob(streams, 64 * 1024, chunk_size=1024)
    print(f"consumer stores a {blob.size_bytes // 1024} KiB blob"
          f" ({len(blob.chunks)} chunks, merkle root"
          f" {blob.merkle_root[:16]}...)\n")

    def scenario():
        deals = {}
        deals["honest"] = yield from market.make_deal(
            "consumer", blob, epochs=EPOCHS,
            proof_kind=ProofKind.STORAGE, provider_id="honest-provider",
            price_per_epoch=1.0,
        )
        deals["dropper"] = yield from market.make_deal(
            "consumer", blob, epochs=EPOCHS,
            proof_kind=ProofKind.RETRIEVABILITY, provider_id="dropping-provider",
            price_per_epoch=1.0,
        )
        # The Sybil provider claims a sealed replica it never stores.
        sealed = seal_blob(blob, "replica-2")
        sybil.accept_blob(seal_blob(blob, "replica-1"))
        sybil.claim_sealed_without_storing(sealed, blob, "replica-2")
        deals["sybil"] = yield from market.register_external_deal(StorageDeal(
            deal_id="sybil-deal",
            consumer="consumer",
            provider_id="sybil-provider",
            commitment=Commitment(sealed.merkle_root, len(sealed.chunks)),
            size_bytes=blob.size_bytes,
            price_per_epoch=1.0,
            epochs_total=EPOCHS,
            proof_kind=ProofKind.REPLICATION,
        ))
        # The dropper cheats right after the deal opens.
        dropper.drop_chunks(blob.merkle_root, 0.5, streams.stream("drop"))

        for epoch in range(EPOCHS):
            yield from market.run_epoch()
        return deals

    deals = sim.run_process(scenario(), until=1_000_000.0)

    rows = []
    for label, deal in deals.items():
        rows.append({
            "provider": deal.provider_id,
            "behaviour": label,
            "audit": deal.proof_kind,
            "epochs_paid": f"{deal.epochs_paid}/{EPOCHS}",
            "earned": f"{market.provider_earnings(deal.provider_id):.2f}",
            "state": deal.state,
        })
    print(render_table(rows))

    print(
        "\nReading: the honest provider collects the full contract; the"
        "\ndata-dropper is slashed once a sampled audit hits a missing"
        "\nchunk; the Sybil provider answers correctly but too slowly"
        "\n(it must re-seal on demand) and is slashed on the deadline —"
        "\nproof-of-replication working as §3.3 describes."
    )


if __name__ == "__main__":
    main()
