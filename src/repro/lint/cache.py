"""On-disk incremental cache for the lint driver.

Whole-program linting re-parses every file on every run; for an
unchanged tree that work is pure waste.  :class:`LintCache` stores, per
file, the post-suppression per-file findings *and* the serialized
:class:`~repro.lint.index.ModuleFragment` (plus the noqa map project
findings are filtered through), keyed by::

    sha256(cache schema, rule-pack version, path, selected per-file
           rule ids, file content)

so any content edit, rule-selection change, or rule-pack version bump
misses cleanly.  Project rules are *never* cached — they always
recompute over the fragments, which is what makes warm and cold runs
byte-identical: per-file findings are replayed from the entry, and the
fragments the project rules see are round-tripped copies of what a cold
parse would have produced.

Entries are one JSON file each under the cache directory (default
``.repro_lint_cache``, or ``$REPRO_LINT_CACHE_DIR``), written atomically
via a temp file and :func:`os.replace`.  A corrupt or schema-mismatched
entry is treated as a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

__all__ = ["CACHE_DIR_ENV", "DEFAULT_CACHE_DIR", "LINT_CACHE_SCHEMA",
           "LintCache"]

#: Bump when the entry layout changes.
LINT_CACHE_SCHEMA = 1

#: Environment override for the cache location.
CACHE_DIR_ENV = "REPRO_LINT_CACHE_DIR"

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_lint_cache"


class LintCache:
    """Content-addressed store of per-file lint results."""

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None):
        if cache_dir is None:
            cache_dir = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.cache_dir = Path(cache_dir)

    @staticmethod
    def key(
        path: str,
        source: str,
        rule_ids: Sequence[str],
        pack_version: int,
    ) -> str:
        """The content hash addressing one file's entry."""
        hasher = hashlib.sha256()
        preamble = json.dumps(
            [LINT_CACHE_SCHEMA, pack_version, path, sorted(rule_ids)],
            sort_keys=True,
        )
        hasher.update(preamble.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(source.encode("utf-8"))
        return hasher.hexdigest()

    def _entry_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored result for ``key``, or ``None`` on any miss
        (absent, unreadable, corrupt, or schema-mismatched)."""
        try:
            raw = self._entry_path(key).read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            doc = json.loads(raw)
        except ValueError:
            return None
        if not isinstance(doc, dict):
            return None
        if doc.get("schema") != LINT_CACHE_SCHEMA:
            return None
        result = doc.get("result")
        if not isinstance(result, dict):
            return None
        return result

    def store(self, key: str, result: Dict[str, Any]) -> None:
        """Persist one file's result atomically; IO errors are swallowed
        (a cache that cannot write is merely cold, not broken)."""
        doc = {"schema": LINT_CACHE_SCHEMA, "result": result}
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.cache_dir), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(doc, handle, sort_keys=True)
                os.replace(tmp_name, self._entry_path(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            pass
