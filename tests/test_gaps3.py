"""Third gap batch: adversarial serving, directory idempotence, erasure
store edges."""

import pytest

from repro.errors import StorageError, WebAppError
from repro.net import ConstantLatency, Network
from repro.sim import RngStreams, Simulator


class TestMaliciousSeeder:
    def test_visitor_rejects_tampered_bundle_and_finds_honest_peer(self):
        from repro.webapps import HostlessSite, SiteBundle, SiteSwarm, Tracker

        sim = Simulator()
        streams = RngStreams(61)
        network = Network(sim, streams, latency=ConstantLatency(0.01))
        tracker = Tracker(network)
        swarm = SiteSwarm(network, tracker)
        site = HostlessSite("attacked-site")
        site.write_file("index.html", b"<h1>real</h1>")
        bundle = site.publish()
        address = bundle.manifest.site_address
        forged = SiteBundle(
            manifest=bundle.manifest,
            files={"index.html": b"<h1>malware</h1>"},
        )

        def scenario():
            # The honest author seeds normally.
            yield from swarm.seed("author", bundle)
            # A malicious peer bypasses seed() verification and announces.
            swarm.register_peer("mallory")
            swarm._seeding["mallory"][address] = forged
            yield from tracker.announce("mallory", address)
            fetched = yield from swarm.visit("visitor", address)
            return fetched

        fetched = sim.run_process(scenario())
        # The signed manifest defeats the tampered copy: the visitor ends
        # up with the authentic files, whichever peer order was tried.
        assert fetched.files["index.html"] == b"<h1>real</h1>"
        assert fetched.verify()

    def test_all_seeders_malicious_means_unavailable(self):
        from repro.webapps import HostlessSite, SiteBundle, SiteSwarm, Tracker

        sim = Simulator()
        streams = RngStreams(62)
        network = Network(sim, streams, latency=ConstantLatency(0.01))
        tracker = Tracker(network)
        swarm = SiteSwarm(network, tracker)
        site = HostlessSite("attacked-site-2")
        site.write_file("index.html", b"<h1>real</h1>")
        bundle = site.publish()
        address = bundle.manifest.site_address
        forged = SiteBundle(
            manifest=bundle.manifest, files={"index.html": b"<h1>bad</h1>"}
        )

        def scenario():
            swarm.register_peer("mallory")
            swarm._seeding["mallory"][address] = forged
            yield from tracker.announce("mallory", address)
            try:
                yield from swarm.visit("visitor", address)
            except WebAppError:
                return "unavailable-but-never-fooled"

        assert sim.run_process(scenario()) == "unavailable-but-never-fooled"
        assert swarm.monitor.counters.get("bad_bundles_rejected") >= 1


class TestDirectoryIdempotence:
    def test_dht_double_announce_is_idempotent(self):
        from repro.dht import DhtConfig, build_overlay
        from repro.webapps import DhtPeerDirectory

        sim = Simulator()
        streams = RngStreams(63)
        network = Network(sim, streams, latency=ConstantLatency(0.01))
        overlay = build_overlay(
            network, [f"n{i}" for i in range(10)], DhtConfig(k=4, alpha=2)
        )
        directory = DhtPeerDirectory(overlay["n0"])

        def scenario():
            yield from directory.announce("n0", "site")
            yield from directory.announce("n0", "site")
            return (yield from directory.get_peers("site"))

        assert sim.run_process(scenario()) == ["n0"]

    def test_dht_multiple_seeders_accumulate(self):
        from repro.dht import DhtConfig, build_overlay
        from repro.webapps import DhtPeerDirectory

        sim = Simulator()
        streams = RngStreams(64)
        network = Network(sim, streams, latency=ConstantLatency(0.01))
        overlay = build_overlay(
            network, [f"n{i}" for i in range(10)], DhtConfig(k=4, alpha=2)
        )

        def scenario():
            yield from DhtPeerDirectory(overlay["n1"]).announce("n1", "site")
            yield from DhtPeerDirectory(overlay["n2"]).announce("n2", "site")
            return (yield from DhtPeerDirectory(overlay["n5"]).get_peers("site"))

        assert sim.run_process(scenario()) == ["n1", "n2"]


class TestErasureStoreEdges:
    def test_unknown_content_rejected(self):
        from repro.storage import ErasureBlobStore, StorageProvider

        sim = Simulator()
        streams = RngStreams(65)
        network = Network(sim, streams)
        providers = [StorageProvider(network, f"p{i}") for i in range(6)]
        store = ErasureBlobStore(network, providers, streams, k=4, m=2)
        with pytest.raises(StorageError):
            store.live_shards("ghost")

        def scenario():
            try:
                yield from store.retrieve("ghost")
            except StorageError:
                return "unknown"

        assert sim.run_process(scenario()) == "unknown"

    def test_store_requires_enough_online(self):
        from repro.storage import ErasureBlobStore, StorageProvider, make_random_blob

        sim = Simulator()
        streams = RngStreams(66)
        network = Network(sim, streams, latency=ConstantLatency(0.01))
        providers = [StorageProvider(network, f"p{i}") for i in range(6)]
        store = ErasureBlobStore(network, providers, streams, k=4, m=2)
        network.node("p0").set_online(False, 0.0)
        data = make_random_blob(streams, 1024).to_bytes()

        def scenario():
            try:
                yield from store.store(data, "doc")
            except StorageError:
                return "short"

        assert sim.run_process(scenario()) == "short"
