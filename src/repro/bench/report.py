"""Versioned benchmark report: build, render, validate.

The JSON form is a stable machine interface (CI consumes it and the
committed ``BENCH_<n>.json`` baselines use it), mirroring
:mod:`repro.lint.reporters` and :mod:`repro.faults.cli`::

    {
      "schema": 1,
      "suite": "micro",
      "repetitions": 3,
      "benchmarks": [
        {
          "name": "micro.engine.schedule_fire_cancel",
          "suite": "micro",
          "repetitions": 3,
          "best_s": 0.0123,
          "mean_s": 0.0131,
          "work": {"sim.events_fired": 5334, ...},
          "deterministic": true
        },
        ...
      ]
    }

``work`` values are exact integers; serialization sorts keys, so two
runs of the same code produce byte-identical ``work`` sections (the
property the CI double-run smoke checks).  Wall-clock fields are the
only machine-dependent part of a report.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.bench.harness import BenchResult

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "build_report",
    "render_bench_human",
    "render_bench_json",
    "validate_bench_report",
]

BENCH_SCHEMA_VERSION = 1

#: Top-level keys every bench report must carry.
_REQUIRED_KEYS = ("schema", "suite", "repetitions", "benchmarks")

#: Keys every per-benchmark record must carry.
_REQUIRED_BENCH_KEYS = (
    "name", "suite", "repetitions", "best_s", "mean_s", "work",
    "deterministic",
)


def build_report(
    results: Sequence[BenchResult], suite: str, repetitions: int
) -> Dict[str, Any]:
    """Assemble the versioned report dict from harness results."""
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "suite": suite,
        "repetitions": repetitions,
        "benchmarks": [result.as_dict() for result in results],
    }


def render_bench_json(report: Dict[str, Any]) -> str:
    return json.dumps(report, indent=1, sort_keys=True)


def render_bench_human(report: Dict[str, Any]) -> str:
    """Aligned ``name  best  mean  work-items`` lines."""
    lines = [
        f"bench suite={report['suite']}"
        f"  repetitions={report['repetitions']}"
        f"  benchmarks={len(report['benchmarks'])}",
    ]
    for bench in report["benchmarks"]:
        flag = "" if bench.get("deterministic", True) else "  NONDETERMINISTIC"
        lines.append(
            f"  {bench['name']:<40} best={bench['best_s']:.6f}s"
            f" mean={bench['mean_s']:.6f}s"
            f" work_counters={len(bench['work'])}{flag}"
        )
    return "\n".join(lines)


def validate_bench_report(doc: Any) -> List[str]:
    """Schema-check a parsed bench JSON report; returns error strings."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"report must be an object, got {type(doc).__name__}"]
    for key in _REQUIRED_KEYS:
        if key not in doc:
            errors.append(f"missing key {key!r}")
    if doc.get("schema") != BENCH_SCHEMA_VERSION:
        errors.append(
            f"schema is {doc.get('schema')!r},"
            f" expected {BENCH_SCHEMA_VERSION}"
        )
    benchmarks = doc.get("benchmarks")
    if benchmarks is not None and not isinstance(benchmarks, list):
        errors.append("benchmarks must be a list")
        benchmarks = None
    seen: set = set()
    for index, bench in enumerate(benchmarks or []):
        label = f"benchmarks[{index}]"
        if not isinstance(bench, dict):
            errors.append(f"{label} must be an object")
            continue
        for key in _REQUIRED_BENCH_KEYS:
            if key not in bench:
                errors.append(f"{label} missing key {key!r}")
        name = bench.get("name")
        if isinstance(name, str):
            if name in seen:
                errors.append(f"{label} duplicate benchmark name {name!r}")
            seen.add(name)
        work = bench.get("work")
        if work is not None:
            if not isinstance(work, dict):
                errors.append(f"{label} work must be an object")
            elif not all(
                isinstance(k, str) and isinstance(v, int) and not
                isinstance(v, bool)
                for k, v in work.items()
            ):
                errors.append(
                    f"{label} work must map str names to int counts"
                )
        for key in ("best_s", "mean_s"):
            value = bench.get(key)
            if value is not None and (
                not isinstance(value, (int, float))
                or isinstance(value, bool) or value < 0
            ):
                errors.append(f"{label} {key} must be a non-negative number")
    return errors
