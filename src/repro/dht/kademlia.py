"""The Kademlia protocol over the simulated network.

Implements the four RPCs (PING, FIND_NODE, FIND_VALUE, STORE) and the
iterative lookup with ``alpha``-way parallelism.  This is the routing
substrate the paper's surveyed systems lean on: IPFS-style content lookup,
ZeroNet/Freedom.js peer discovery (§3.4), and the storage systems' provider
discovery (§3.3).

Liveness maintenance is lookup-driven: peers that time out during lookups
are evicted from the routing table, which is what gives Kademlia its churn
resilience (measured in the E9-adjacent DHT tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.dht.nodeid import key_for, node_id_for, xor_distance
from repro.dht.routing import Contact, RoutingTable
from repro.errors import (
    DHTError,
    LookupFailedError,
    NetworkError,
    RemoteError,
    RpcTimeoutError,
)
from repro.net.node import Node
from repro.net.transport import Network
from repro.sim.engine import AllOf

__all__ = ["DhtConfig", "KademliaNode", "build_overlay"]


@dataclass(frozen=True)
class DhtConfig:
    """Protocol constants (Kademlia paper defaults, scaled for simulation)."""

    k: int = 20
    alpha: int = 3
    rpc_timeout: float = 2.0
    value_ttl: float = 3600.0
    republish_interval: float = 1800.0
    message_bytes: int = 256


@dataclass
class _StoredValue:
    value: Any
    expires_at: float


class KademliaNode:
    """One DHT participant bound to a network :class:`Node`."""

    def __init__(self, network: Network, node: Node, config: Optional[DhtConfig] = None):
        self.network = network
        self.node = node
        self.config = config or DhtConfig()
        self.dht_id = node_id_for(node.node_id)
        self.table = RoutingTable(self.dht_id, k=self.config.k)
        self._store: Dict[int, _StoredValue] = {}
        self._own_published: Dict[str, Any] = {}
        self._republishing = False
        node.register_handler("dht.ping", self._on_ping)
        node.register_handler("dht.find_node", self._on_find_node)
        node.register_handler("dht.find_value", self._on_find_value)
        node.register_handler("dht.store", self._on_store)

    # -- server side -------------------------------------------------------

    def _observe_sender(self, sender: str) -> None:
        if sender != self.node.node_id:
            self.table.observe(Contact(sender, node_id_for(sender)))

    def _on_ping(self, node: Node, payload: Any, sender: str) -> Dict[str, Any]:
        self._observe_sender(sender)
        return {"dht_id": self.dht_id}

    def _on_find_node(self, node: Node, payload: Any, sender: str) -> List[Tuple[str, int]]:
        self._observe_sender(sender)
        target = payload["target"]
        return [(c.name, c.dht_id) for c in self.table.closest(target, self.config.k)]

    def _on_find_value(self, node: Node, payload: Any, sender: str) -> Dict[str, Any]:
        self._observe_sender(sender)
        key_id = payload["key"]
        entry = self._store.get(key_id)
        if entry is not None and entry.expires_at > self.network.sim.now:
            return {"found": True, "value": entry.value}
        contacts = self._on_find_node(node, {"target": key_id}, sender)
        return {"found": False, "contacts": contacts}

    def _on_store(self, node: Node, payload: Any, sender: str) -> bool:
        self._observe_sender(sender)
        key_id = payload["key"]
        ttl = payload.get("ttl", self.config.value_ttl)
        if ttl <= 0:
            raise DHTError(f"store ttl must be positive: {ttl}")
        self._store[key_id] = _StoredValue(
            value=payload["value"],
            expires_at=self.network.sim.now + ttl,
        )
        return True

    def stored_keys(self) -> List[int]:
        """Unexpired keys currently held by this node."""
        now = self.network.sim.now
        return [k for k, v in self._store.items() if v.expires_at > now]

    # -- client side --------------------------------------------------------

    def bootstrap(self, seed_name: str) -> Generator:
        """Join the overlay via a known seed node (yieldable process)."""
        if seed_name == self.node.node_id:
            raise DHTError("cannot bootstrap from self")
        self.table.observe(Contact(seed_name, node_id_for(seed_name)))
        closest = yield from self.lookup(self.dht_id)
        return closest

    def _query_one(self, contact: Contact, target_id: int, find_value: bool):
        """Query one peer; evict it from the table on failure."""
        method = "dht.find_value" if find_value else "dht.find_node"
        payload = {"key": target_id} if find_value else {"target": target_id}
        try:
            result = yield from self.network.rpc(
                self.node.node_id,
                contact.name,
                method,
                payload,
                size_bytes=self.config.message_bytes,
                response_bytes=self.config.message_bytes,
                timeout=self.config.rpc_timeout,
            )
        except (RpcTimeoutError, RemoteError, NetworkError):
            self.table.evict(contact.name)
            return None
        return result

    def lookup(self, target_id: int) -> Generator:
        """Iterative FIND_NODE: returns the k closest live contacts found."""
        result = yield from self._iterative(target_id, find_value=False)
        return result[0]

    def get(self, key: str) -> Generator:
        """Iterative FIND_VALUE for an application key string.

        Checks local storage first (the querier may be a replica holder),
        then walks the overlay.  Raises :class:`LookupFailedError` if no
        replica is reachable.
        """
        key_id = key_for(key)
        local = self._store.get(key_id)
        if local is not None and local.expires_at > self.network.sim.now:
            return local.value
        _, value, found = yield from self._iterative(key_id, find_value=True)
        if not found:
            raise LookupFailedError(f"no live replica of key {key!r} found")
        return value

    def put(self, key: str, value: Any, ttl: Optional[float] = None) -> Generator:
        """Store ``value`` on the k closest nodes to ``key``.

        Returns the number of replicas acknowledged.  The publisher
        republishes periodically if :meth:`start_republishing` was called.
        """
        key_id = key_for(key)
        closest = yield from self.lookup(key_id)
        if not closest:
            # Lone node: store locally so a later joiner can fetch it.
            closest = [Contact(self.node.node_id, self.dht_id)]
        acked = 0
        payload = {
            "key": key_id,
            "value": value,
            "ttl": ttl if ttl is not None else self.config.value_ttl,
        }
        for contact in closest:
            if contact.name == self.node.node_id:
                self._on_store(self.node, payload, self.node.node_id)
                acked += 1
                continue
            try:
                ok = yield from self.network.rpc(
                    self.node.node_id,
                    contact.name,
                    "dht.store",
                    payload,
                    size_bytes=self.config.message_bytes,
                    timeout=self.config.rpc_timeout,
                )
                if ok:
                    acked += 1
            except (RpcTimeoutError, RemoteError, NetworkError):
                self.table.evict(contact.name)
        self._own_published[key] = value
        return acked

    def _iterative(self, target_id: int, find_value: bool) -> Generator:
        """The shared iterative-lookup core.

        Returns ``(closest_contacts, value, found)``.
        """
        shortlist: Dict[str, Contact] = {
            c.name: c for c in self.table.closest(target_id, self.config.k)
        }
        queried: set = set()
        failed: set = set()

        while True:
            candidates = sorted(
                (
                    c for c in shortlist.values()
                    if c.name not in queried and c.name not in failed
                ),
                key=lambda c: xor_distance(c.dht_id, target_id),
            )[: self.config.alpha]
            if not candidates:
                break
            processes = [
                self.network.sim.spawn(
                    self._query_one(c, target_id, find_value),
                    name=f"dht-query:{c.name}",
                )
                for c in candidates
            ]
            results = yield AllOf(processes)
            for contact, result in zip(candidates, results):
                if result is None:
                    failed.add(contact.name)
                    shortlist.pop(contact.name, None)
                    continue
                queried.add(contact.name)
                if find_value and isinstance(result, dict):
                    if result.get("found"):
                        return ([], result["value"], True)
                    raw = result.get("contacts", [])
                else:
                    raw = result
                for name, dht_id in raw:
                    if name == self.node.node_id or name in failed:
                        continue
                    if name not in shortlist:
                        shortlist[name] = Contact(name, dht_id)
                        self.table.observe(Contact(name, dht_id))
            # Termination: the k closest in the shortlist have all been
            # queried (no unqueried candidate remains among them).
            best = sorted(
                shortlist.values(),
                key=lambda c: xor_distance(c.dht_id, target_id),
            )[: self.config.k]
            if all(c.name in queried for c in best):
                break

        closest = sorted(
            (shortlist[name] for name in queried if name in shortlist),
            key=lambda c: xor_distance(c.dht_id, target_id),
        )[: self.config.k]
        return (closest, None, False)

    # -- maintenance ------------------------------------------------------------

    def refresh_buckets(self, rng) -> Generator:
        """One refresh pass: look up a random id in each occupied bucket
        range (the Kademlia anti-staleness rule), evicting dead contacts
        as a side effect of the lookups."""
        from repro.dht.nodeid import ID_BITS

        occupied = [
            i for i, size in enumerate(self.table.bucket_sizes()) if size > 0
        ]
        for index in occupied:
            # A random id whose distance's top bit is `index`.
            low = 1 << index
            span = low  # ids in [low, 2*low)
            distance = low + rng.randrange(span)
            target = self.dht_id ^ distance
            if target >= (1 << ID_BITS):
                continue
            yield from self.lookup(target)
        return len(occupied)

    def start_refreshing(self, rng, interval: float = 600.0) -> None:
        """Run periodic bucket refreshes until :meth:`stop_refreshing`."""
        if getattr(self, "_refreshing", False):
            return
        self._refreshing = True

        def loop():
            while self._refreshing:
                yield interval
                if not self._refreshing:
                    return
                if not self.node.online:
                    continue
                yield from self.refresh_buckets(rng)

        self.network.sim.spawn(loop(), name=f"dht-refresh:{self.node.node_id}")

    def stop_refreshing(self) -> None:
        self._refreshing = False

    def start_republishing(self) -> None:
        """Begin periodic republication of this node's own keys."""
        if self._republishing:
            return
        self._republishing = True
        self.network.sim.spawn(
            self._republish_loop(), name=f"dht-republish:{self.node.node_id}"
        )

    def stop_republishing(self) -> None:
        self._republishing = False

    def _republish_loop(self) -> Generator:
        while self._republishing:
            yield self.config.republish_interval
            if not self._republishing:
                return
            if not self.node.online:
                continue
            for key, value in list(self._own_published.items()):
                try:
                    yield from self.put(key, value)
                except DHTError:
                    continue

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"KademliaNode({self.node.node_id!r},"
            f" contacts={len(self.table)}, keys={len(self._store)})"
        )


def build_overlay(
    network: Network,
    names: List[str],
    config: Optional[DhtConfig] = None,
    node_class: str = "datacenter",
) -> Dict[str, KademliaNode]:
    """Create nodes for ``names``, join them all via the first as seed, and
    run the simulator until the joins complete.  Convenience for tests and
    experiments; returns the overlay keyed by node name."""
    if not names:
        raise DHTError("need at least one node name")
    overlay: Dict[str, KademliaNode] = {}
    for name in names:
        node = (
            network.node(name) if network.has_node(name)
            else network.create_node(name, node_class=node_class)
        )
        overlay[name] = KademliaNode(network, node, config)
    seed = names[0]

    def join_all():
        for name in names[1:]:
            yield from overlay[name].bootstrap(seed)
        return True

    network.sim.run_process(join_all(), name="dht-join")
    return overlay
