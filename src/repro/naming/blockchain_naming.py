"""Blockchain-based name registration (Namecoin / Blockstack style, §3.1).

Registration is a transaction; durability is confirmation depth; resolution
is a local read of the replicated ledger (every full node has the whole
name map — the availability upside the paper credits blockchains with).

The costs the paper describes are all measurable here: registration
latency is O(block interval x confirmations), throughput is bounded by
block size / interval, and a majority miner can rewrite ownership
(:mod:`repro.chain.attacks`).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.chain.network import BlockchainNetwork, Participant
from repro.chain.transaction import TxKind, make_transaction
from repro.crypto.keys import KeyPair
from repro.errors import NameNotFoundError, NameTakenError, NamingError
from repro.naming.registry import NameRegistry, RegistrationReceipt, Resolution

__all__ = ["BlockchainNameRegistry"]


class BlockchainNameRegistry(NameRegistry):
    """A registry backed by a :class:`BlockchainNetwork`.

    ``reference`` is the full node whose ledger view this registry reads
    (any honest participant; resolution is local because the ledger is
    fully replicated).
    """

    kind = "blockchain"

    def __init__(
        self,
        chain_network: BlockchainNetwork,
        reference: Participant,
        confirmations: int = 6,
        fee: float = 0.1,
        poll_interval: Optional[float] = None,
        max_wait_blocks: int = 200,
    ):
        if confirmations < 1:
            raise NamingError(f"confirmations must be >= 1: {confirmations}")
        self.network = chain_network
        self.reference = reference
        self.confirmations = confirmations
        self.fee = fee
        self.poll_interval = (
            poll_interval
            if poll_interval is not None
            else chain_network.params.target_block_interval / 4
        )
        self.max_wait_blocks = max_wait_blocks

    # -- operations -----------------------------------------------------------

    def register(self, keypair: KeyPair, name: str, value: Any) -> Generator:
        name = self._require_name(name)
        receipt = yield from self._submit_and_confirm(
            keypair, TxKind.NAME_REGISTER, name, {"name": name, "value": value}
        )
        return receipt

    def update(self, keypair: KeyPair, name: str, value: Any) -> Generator:
        name = self._require_name(name)
        receipt = yield from self._submit_and_confirm(
            keypair, TxKind.NAME_UPDATE, name, {"name": name, "value": value}
        )
        return receipt

    def transfer(self, keypair: KeyPair, name: str, to_public_key: str) -> Generator:
        name = self._require_name(name)
        receipt = yield from self._submit_and_confirm(
            keypair, TxKind.NAME_TRANSFER, name, {"name": name, "to": to_public_key}
        )
        return receipt

    def resolve(self, name: str, client: str = "") -> Generator:
        """Resolution reads the local replica: zero network hops.

        Still a generator for interface uniformity; completes immediately.
        """
        name = self._require_name(name)
        chain = self.reference.chain
        entry = chain.state_at().live_name(name, chain.height)
        if entry is None:
            raise NameNotFoundError(f"name {name!r} not on the consensus chain")
        if False:  # pragma: no cover - keeps this a generator function
            yield
        return Resolution(
            name=name,
            value=entry.value,
            owner_public_key=entry.owner,
            latency=0.0,
            authoritative=True,
        )

    # -- internals --------------------------------------------------------------

    def _submit_and_confirm(
        self, keypair: KeyPair, kind: str, name: str, payload: dict
    ) -> Generator:
        sim = self.network.sim
        start = sim.now
        state = self.reference.chain.state_at()
        nonce = state.next_nonce(keypair.public_key)
        tx = make_transaction(keypair, kind, payload, nonce, fee=self.fee)
        self.network.submit_transaction(tx, origin=self.reference.name)

        deadline_height = (
            self.reference.chain.height + self.max_wait_blocks
        )
        while True:
            yield self.poll_interval
            chain = self.reference.chain
            mined_height = chain.find_transaction(tx.txid)
            if mined_height is not None:
                depth = chain.height - mined_height + 1
                if depth >= self.confirmations:
                    return RegistrationReceipt(
                        name=name,
                        owner_public_key=keypair.public_key,
                        latency=sim.now - start,
                        finalized_at=sim.now,
                        detail=f"height={mined_height} depth={depth}",
                    )
                continue
            if kind == TxKind.NAME_REGISTER:
                entry = chain.state_at().live_name(name, chain.height)
                if entry is not None and entry.owner != keypair.public_key:
                    raise NameTakenError(
                        f"name {name!r} was registered by a competitor first"
                    )
            if chain.height >= deadline_height:
                raise NamingError(
                    f"{kind} of {name!r} not mined within"
                    f" {self.max_wait_blocks} blocks"
                )
