"""Tests for axes, taxonomy, properties, agenda, and unit formatting."""

import pytest

from repro.core import (
    AGENDA,
    Control,
    Distribution,
    ERA_PROFILES,
    NetworkModel,
    PAPER_SCORECARDS,
    PROJECTS,
    Problem,
    Scorecard,
    SystemProfile,
    classify,
    items_by_difficulty,
    projects_for,
    table1_rows,
    trajectory,
)
from repro.core.agenda import Difficulty, experiments_informing
from repro.core.units import (
    format_bandwidth,
    format_cores,
    format_storage,
)
from repro.errors import FeasibilityError, ReproError


class TestUnits:
    def test_bandwidth_formats(self):
        assert format_bandwidth(200e12) == "200 Tbps"
        assert format_bandwidth(5e15) == "5000 Tbps"
        assert format_bandwidth(1e6) == "1 Mbps"
        assert format_bandwidth(500.0) == "500 bps"

    def test_storage_formats(self):
        assert format_storage(80e18) == "80 EB"
        assert format_storage(210e18) == "210 EB"
        assert format_storage(100e9) == "100 GB"

    def test_cores_formats(self):
        assert format_cores(400e6) == "400 M"
        assert format_cores(4e9) == "4 B"
        assert format_cores(500) == "500"

    def test_fractional_rendering(self):
        assert format_storage(1.5e18) == "1.5 EB"

    def test_negative_rejected(self):
        with pytest.raises(FeasibilityError):
            format_bandwidth(-1)


class TestAxes:
    def test_paper_trajectory(self):
        rows = trajectory()
        assert rows[0]["distribution"] == Distribution.PARTIALLY_CENTRALIZED
        assert rows[0]["control"] == Control.SEMI_DEMOCRATIC
        assert rows[1]["distribution"] == Distribution.DISTRIBUTED
        assert rows[1]["control"] == Control.FEUDAL
        assert rows[2]["distribution"] == Distribution.DISTRIBUTED
        assert rows[2]["control"] == Control.DEMOCRATIC

    def test_classify_quadrant_label(self):
        assert classify(ERA_PROFILES["internet_today"]) == "distributed/feudal"

    def test_axes_are_orthogonal(self):
        # Many operators with one site, and one operator with many sites.
        coop = SystemProfile("coop_mainframe", operators=100_000, resource_sites=1)
        cdn = SystemProfile("mono_cdn", operators=1, resource_sites=100_000)
        assert coop.control == Control.DEMOCRATIC
        assert coop.distribution == Distribution.CENTRALIZED
        assert cdn.control == Control.FEUDAL
        assert cdn.distribution == Distribution.DISTRIBUTED

    def test_invalid_profile_rejected(self):
        with pytest.raises(ReproError):
            SystemProfile("broken", operators=0, resource_sites=1)


class TestTaxonomy:
    def test_every_table1_category_nonempty(self):
        for row in table1_rows():
            assert row["projects"]

    def test_table1_matches_paper_rows(self):
        rows = {r["problem"]: r["projects"] for r in table1_rows()}
        assert rows["Naming"] == "Namecoin, Emercoin, Blockstack"
        for expected in ("Matrix", "Riot", "Mastodon", "GNU social"):
            assert expected in rows["Group Communication"]
        for expected in ("IPFS", "Filecoin", "Sia", "Storj", "Swarm"):
            assert expected in rows["Data storage"]
        assert rows["Web applications"] == "Beaker, ZeroNet, Freedom.js"

    def test_blockstack_spans_two_problems(self):
        blockstack = next(p for p in PROJECTS if p.name == "Blockstack")
        assert set(blockstack.problems) == {Problem.NAMING, Problem.DATA_STORAGE}

    def test_every_project_maps_to_simulated_family(self):
        for project in PROJECTS:
            assert project.simulated_by.startswith("repro.")

    def test_unknown_problem_rejected(self):
        with pytest.raises(ReproError):
            projects_for("Quantum teleportation")

    def test_network_models_all_known(self):
        assert all(p.network_model in NetworkModel.ALL for p in PROJECTS)


class TestScorecards:
    def test_paper_scorecards_cover_all_families(self):
        assert set(PAPER_SCORECARDS) == {
            "centralized",
            "federated_single_home",
            "federated_replicated",
            "socially_aware_p2p",
            "blockchain",
        }

    def test_centralized_wins_convenience_loses_privacy(self):
        central = PAPER_SCORECARDS["centralized"]
        p2p = PAPER_SCORECARDS["socially_aware_p2p"]
        assert central.score("convenience") > p2p.score("convenience")
        assert central.score("privacy") < p2p.score("privacy")

    def test_set_score_validates(self):
        card = Scorecard("x")
        with pytest.raises(ReproError):
            card.set_score("nonsense", 0.5)
        with pytest.raises(ReproError):
            card.set_score("privacy", 1.5)

    def test_attach_measurement_clamps_and_tags(self):
        card = Scorecard("x")
        card.attach_measurement("connectedness", 1.7, "E4")
        assert card.score("connectedness") == 1.0
        assert card.evidence["connectedness"] == "measured:E4"

    def test_dominates(self):
        a, b = Scorecard("a"), Scorecard("b")
        for prop in ("privacy", "connectedness"):
            a.set_score(prop, 0.8)
            b.set_score(prop, 0.5)
        assert a.dominates(b, ["privacy", "connectedness"])
        assert not b.dominates(a, ["privacy"])

    def test_dominates_requires_scores(self):
        a, b = Scorecard("a"), Scorecard("b")
        a.set_score("privacy", 0.5)
        with pytest.raises(ReproError):
            a.dominates(b, ["privacy"])


class TestAgenda:
    def test_three_tiers_populated(self):
        assert len(items_by_difficulty(Difficulty.EASY)) == 3
        assert len(items_by_difficulty(Difficulty.MODERATE)) == 3
        assert len(items_by_difficulty(Difficulty.HARD)) == 3

    def test_nine_items_total(self):
        assert len(AGENDA) == 9

    def test_nontechnical_items_flagged(self):
        hard = items_by_difficulty(Difficulty.HARD)
        assert any(not item.technical for item in hard)

    def test_experiment_crossrefs_point_at_design_doc_ids(self):
        mapping = experiments_informing()
        assert set(mapping) <= {f"E{i}" for i in range(1, 10)}
        assert "E3" in mapping  # Table 3 informs quality-vs-quantity

    def test_unknown_difficulty_rejected(self):
        with pytest.raises(ReproError):
            items_by_difficulty("impossible")
