"""BEN001: benchmark bodies must not read the host clock.

The benchmark contract (see ``docs/BENCHMARKS.md``) splits timing from
work: bodies in :mod:`repro.bench` do a fixed, seed-derived amount of
work and record counters; only the harness
(``repro/bench/harness.py``) wraps them in ``time.perf_counter``.  A
body that times itself double-counts clock noise into its own work,
drifts when the host is loaded, and — worse — invites "fast paths"
conditioned on elapsed time, which would make the work counters
machine-dependent and break the exact-match comparison ``repro bench
--compare`` relies on.

Scope: every module under ``repro/bench/`` except ``harness.py`` (the
one sanctioned timer).  Flagged: importing any wall-clock reader from
``time`` (``perf_counter``, ``monotonic``, ``time``, ...), calling one
through an attribute chain (``time.perf_counter()``), and
``datetime.now``-family constructors.  ``import time`` alone is not
flagged — only using it to read the clock is.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import LintContext, Rule, register
from repro.lint.findings import Finding
from repro.lint.rules_determinism import (
    DATETIME_NOW_ATTRS,
    WALL_CLOCK_ATTRS,
    _attr_chain,
)

__all__ = ["ClockInBenchmarkBody"]

#: The one bench module allowed to time things.
HARNESS_MODULE = ("bench", "harness.py")


def _in_scope(ctx: LintContext) -> bool:
    return ctx.in_package("bench") and not ctx.is_module(*HARNESS_MODULE)


@register
class ClockInBenchmarkBody(Rule):
    rule_id = "BEN001"
    title = "host-clock read inside a benchmark body"
    rationale = (
        "Benchmark bodies do deterministic work; only the harness"
        " (repro/bench/harness.py) times them with perf_counter."
        " A self-timing body folds host-clock noise into its behaviour"
        " and can make work counters machine-dependent, defeating the"
        " exact-match comparison of 'repro bench --compare'."
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not _in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in WALL_CLOCK_ATTRS:
                            yield ctx.finding(
                                self.rule_id, node,
                                f"import of 'time.{alias.name}' in a"
                                " benchmark body; only"
                                " repro/bench/harness.py may time",
                            )
            elif isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if len(chain) >= 2 and chain[-2] == "time" and (
                    chain[-1] in WALL_CLOCK_ATTRS
                ):
                    yield ctx.finding(
                        self.rule_id, node,
                        f"host-clock call '{'.'.join(chain)}' in a"
                        " benchmark body; only repro/bench/harness.py"
                        " may time",
                    )
                elif len(chain) >= 2 and chain[-1] in DATETIME_NOW_ATTRS and (
                    chain[-2] in ("datetime", "date")
                ):
                    yield ctx.finding(
                        self.rule_id, node,
                        f"host-clock call '{'.'.join(chain)}' in a"
                        " benchmark body; only repro/bench/harness.py"
                        " may time",
                    )
