"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Interrupt, Signal, Simulator, Timeout


class TestScheduling:
    def test_callbacks_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_fifo(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(1.0, order.append, label)
        sim.run()
        assert order == list("abcde")

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 10)
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_run_until_then_resume(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, 10)
        sim.run(until=5.0)
        sim.run()
        assert fired == [10]
        assert sim.now == 10.0

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, 1)
        handle.cancel()
        sim.run()
        assert fired == []

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, lambda: sim.schedule_at(7.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [7.0]

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_max_events_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(1.0, rearm)

        sim.schedule(1.0, rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)


class TestProcesses:
    def test_process_sleeps_with_numeric_yield(self):
        sim = Simulator()
        wakes = []

        def proc():
            yield 5.0
            wakes.append(sim.now)
            yield 2
            wakes.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert wakes == [5.0, 7.0]

    def test_process_return_value(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return 42

        assert sim.run_process(proc()) == 42

    def test_spawn_requires_generator(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.spawn(lambda: None)  # type: ignore[arg-type]

    def test_join_another_process(self):
        sim = Simulator()

        def child():
            yield 3.0
            return "child-result"

        def parent():
            child_proc = sim.spawn(child())
            result = yield child_proc
            return (sim.now, result)

        assert sim.run_process(parent()) == (3.0, "child-result")

    def test_signal_wakes_waiter_with_value(self):
        sim = Simulator()
        sig = sim.signal("test")

        def waiter():
            value = yield sig
            return (sim.now, value)

        proc = sim.spawn(waiter())
        sim.schedule(4.0, sig.fire, "hello")
        sim.run()
        assert proc.result == (4.0, "hello")

    def test_wait_on_already_fired_signal(self):
        sim = Simulator()
        sig = sim.signal()
        sig.fire("early")

        def waiter():
            value = yield sig
            return value

        assert sim.run_process(waiter()) == "early"

    def test_signal_cannot_fire_twice(self):
        sig = Signal("x")
        sig.fire(1)
        with pytest.raises(SimulationError):
            sig.fire(2)

    def test_allof_collects_results_in_order(self):
        sim = Simulator()
        s1, s2 = sim.signal("s1"), sim.signal("s2")

        def waiter():
            results = yield AllOf([s1, s2])
            return (sim.now, results)

        proc = sim.spawn(waiter())
        sim.schedule(2.0, s2.fire, "second")
        sim.schedule(5.0, s1.fire, "first")
        sim.run()
        assert proc.result == (5.0, ["first", "second"])

    def test_anyof_returns_first_completion(self):
        sim = Simulator()
        s1, s2 = sim.signal("s1"), sim.signal("s2")

        def waiter():
            index, value = yield AnyOf([s1, s2])
            return (sim.now, index, value)

        proc = sim.spawn(waiter())
        sim.schedule(2.0, s2.fire, "fast")
        sim.schedule(5.0, s1.fire, "slow")
        sim.run()
        assert proc.result == (2.0, 1, "fast")

    def test_anyof_with_timeout_child(self):
        sim = Simulator()
        never = sim.signal("never")

        def waiter():
            index, value = yield AnyOf([never, Timeout(3.0)])
            return (sim.now, index)

        proc = sim.spawn(waiter())
        sim.run()
        assert proc.result == (3.0, 1)

    def test_interrupt_raises_inside_process(self):
        sim = Simulator()
        caught = []

        def sleeper():
            try:
                yield 100.0
            except Interrupt as exc:
                caught.append((sim.now, exc.cause))

        proc = sim.spawn(sleeper())
        sim.schedule(5.0, proc.interrupt, "wake-up")
        sim.run()
        assert caught == [(5.0, "wake-up")]

    def test_interrupt_dead_process_is_noop(self):
        sim = Simulator()

        def quick():
            yield 1.0

        proc = sim.spawn(quick())
        sim.run()
        proc.interrupt("too late")
        sim.run()
        assert not proc.alive

    def test_unhandled_interrupt_kills_process(self):
        sim = Simulator()

        def sleeper():
            yield 100.0

        proc = sim.spawn(sleeper())
        sim.schedule(5.0, proc.interrupt)
        sim.run()
        assert not proc.alive
        assert proc.result is None

    def test_yielding_garbage_raises(self):
        sim = Simulator()

        def bad():
            yield "not-waitable"

        sim.spawn(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_run_process_detects_deadlock(self):
        sim = Simulator()

        def stuck():
            yield sim.signal("never-fires")

        with pytest.raises(SimulationError):
            sim.run_process(stuck())

    def test_many_processes_complete(self):
        sim = Simulator()
        results = []

        def worker(i):
            yield float(i)
            results.append(i)

        for i in range(100):
            sim.spawn(worker(i))
        sim.run()
        assert results == sorted(results)
        assert len(results) == 100

    def test_nested_spawn_inside_process(self):
        sim = Simulator()
        log = []

        def inner():
            yield 1.0
            log.append(("inner", sim.now))

        def outer():
            yield 2.0
            sim.spawn(inner())
            yield 5.0
            log.append(("outer", sim.now))

        sim.spawn(outer())
        sim.run()
        assert log == [("inner", 3.0), ("outer", 7.0)]
