"""Consensus parameters and the difficulty-retarget rule.

Difficulty is a pure function of the chain (as in Bitcoin), so every
participant computes the same required difficulty for the next block and
can reject blocks that claim the wrong one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.block import Block
from repro.chain.chainstate import ChainState
from repro.errors import InvalidBlockError

__all__ = ["ConsensusParams", "required_difficulty"]


@dataclass(frozen=True)
class ConsensusParams:
    """Proof-of-work consensus constants.

    ``target_block_interval`` — desired seconds between blocks (Bitcoin:
    600; Namecoin inherits it; naming experiments sweep this).
    ``retarget_interval`` — blocks between difficulty adjustments.
    ``initial_difficulty`` — expected hash attempts for the first blocks.
    ``max_retarget_factor`` — clamp on a single adjustment (Bitcoin: 4).
    """

    target_block_interval: float = 600.0
    retarget_interval: int = 144
    initial_difficulty: float = 1e6
    max_retarget_factor: float = 4.0
    confirmations_required: int = 6

    def __post_init__(self) -> None:
        if self.target_block_interval <= 0:
            raise InvalidBlockError("target_block_interval must be positive")
        if self.retarget_interval < 1:
            raise InvalidBlockError("retarget_interval must be >= 1")
        if self.max_retarget_factor < 1:
            raise InvalidBlockError("max_retarget_factor must be >= 1")


def required_difficulty(
    chain: ChainState, parent: Block, params: ConsensusParams
) -> float:
    """Difficulty required of the block that extends ``parent``.

    Adjusts every ``retarget_interval`` blocks by the ratio of intended to
    actual elapsed time over the previous window, clamped to
    ``max_retarget_factor`` in either direction.
    """
    next_height = parent.height + 1
    if next_height <= 1:
        return params.initial_difficulty
    if next_height % params.retarget_interval != 0:
        return parent.difficulty

    # Walk back along *parent's branch* to the window start.
    window_start = parent
    steps = params.retarget_interval - 1
    for _ in range(steps):
        if window_start.is_genesis:
            break
        window_start = chain.block(window_start.parent_id)
    actual_span = parent.timestamp - window_start.timestamp
    intended_span = params.target_block_interval * steps
    if steps == 0 or actual_span <= 0:
        return parent.difficulty
    ratio = intended_span / actual_span
    ratio = max(1.0 / params.max_retarget_factor,
                min(params.max_retarget_factor, ratio))
    return parent.difficulty * ratio
