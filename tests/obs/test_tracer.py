"""Unit tests for the deterministic trace buffer and its JSONL form."""

import json

import pytest

from repro.obs import TRACE_SCHEMA_VERSION, Tracer, validate_trace_file


class TestEmit:
    def test_records_carry_schema_seq_kind(self):
        tracer = Tracer()
        tracer.emit("a", t=1.0)
        tracer.emit("b", name="x")
        first, second = tracer.events
        assert first == {"schema": TRACE_SCHEMA_VERSION, "seq": 0,
                         "kind": "a", "t": 1.0}
        assert second["seq"] == 1
        assert second["kind"] == "b"

    def test_reserved_fields_rejected(self):
        tracer = Tracer()
        for field in ("schema", "seq", "kind"):
            with pytest.raises(ValueError, match="reserved"):
                tracer.emit("x", **{field: 99})
        # A failed emit burns a seq but must not corrupt the buffer.
        tracer.emit("ok")
        assert all("kind" in e for e in tracer.events)

    def test_capacity_counts_dropped(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.emit("e", i=i)
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert [e["i"] for e in tracer.events] == [0, 1]

    def test_capacity_zero_drops_everything(self):
        tracer = Tracer(capacity=0)
        tracer.emit("e")
        assert len(tracer) == 0
        assert tracer.dropped == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=-1)


class TestReading:
    def _sample(self):
        tracer = Tracer()
        tracer.emit("send", t=0.0)
        tracer.emit("recv", t=1.0)
        tracer.emit("send", t=2.0)
        return tracer

    def test_count_and_iter_kind(self):
        tracer = self._sample()
        assert tracer.count() == 3
        assert tracer.count("send") == 2
        assert [e["t"] for e in tracer.iter_kind("send")] == [0.0, 2.0]
        assert tracer.count("missing") == 0

    def test_by_kind_sorted(self):
        assert self._sample().by_kind() == {"recv": 1, "send": 2}

    def test_events_returns_copy(self):
        tracer = self._sample()
        tracer.events.clear()
        assert len(tracer) == 3


class TestJsonl:
    def test_empty_trace_is_empty_string(self):
        assert Tracer().to_jsonl() == ""

    def test_one_compact_object_per_line(self):
        tracer = Tracer()
        tracer.emit("a", t=0.5)
        tracer.emit("b")
        text = tracer.to_jsonl()
        assert text.endswith("\n")
        lines = text.strip().split("\n")
        assert len(lines) == 2
        assert " " not in lines[0]  # compact separators
        assert json.loads(lines[0])["kind"] == "a"

    def test_write_and_validate_roundtrip(self, tmp_path):
        tracer = Tracer()
        for i in range(10):
            tracer.emit("tick", t=float(i))
        path = tmp_path / "trace.jsonl"
        assert tracer.write_jsonl(str(path)) == 10
        assert validate_trace_file(str(path)) == []
        reloaded = [json.loads(line) for line in path.read_text().splitlines()]
        assert reloaded == tracer.events
