"""Decentralized storage (§3.3, Table 2): blobs, Reed-Solomon erasure
coding, sealed replicas, storage providers with attacker modes, the four
proof games, deals/payment rails, the marketplace audit loop, and
replica maintenance under churn."""

from repro.storage.bitswap import BitswapLedger, BitswapPeer
from repro.storage.blob import DataBlob, make_random_blob
from repro.storage.contracts import ChainRail, DealState, DirectLedger, StorageDeal
from repro.storage.erasure import ErasureCode, Shard
from repro.storage.erasure_store import ErasureBlobStore, ShardHealth
from repro.storage.guerrilla import CloudProvider, EncryptedCloudClient
from repro.storage.marketplace import ProofKind, StorageMarketplace
from repro.storage.proofs import (
    ChallengeOutcome,
    Commitment,
    ProofRoundReport,
    SpacetimeRecord,
    StorageVerifier,
)
from repro.storage.provider import StorageProvider, StoredCommitment
from repro.storage.replication import BlobHealth, ReplicatedBlobStore
from repro.storage.sealing import seal_blob, seal_chunk, unseal_chunk
from repro.storage.systems import (
    BlockchainUsage,
    StorageSystemProfile,
    TABLE2_SYSTEMS,
    profile_for,
    table2_rows,
)

__all__ = [
    "BitswapLedger",
    "BitswapPeer",
    "CloudProvider",
    "EncryptedCloudClient",
    "DataBlob",
    "make_random_blob",
    "ErasureCode",
    "ErasureBlobStore",
    "ShardHealth",
    "Shard",
    "seal_blob",
    "seal_chunk",
    "unseal_chunk",
    "StorageProvider",
    "StoredCommitment",
    "Commitment",
    "ChallengeOutcome",
    "ProofRoundReport",
    "SpacetimeRecord",
    "StorageVerifier",
    "StorageDeal",
    "DealState",
    "DirectLedger",
    "ChainRail",
    "ProofKind",
    "StorageMarketplace",
    "ReplicatedBlobStore",
    "BlobHealth",
    "StorageSystemProfile",
    "BlockchainUsage",
    "TABLE2_SYSTEMS",
    "table2_rows",
    "profile_for",
]
