"""DET004 positive fixture: numpy Generator built outside sim/rng.py
(never imported by tests; numpy need not resolve)."""

import numpy as np


def fresh(seed: int):
    return np.random.default_rng(seed)
