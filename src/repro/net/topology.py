"""Topology and social-graph builders.

Graphs are :mod:`networkx` graphs over node-id strings.  Protocol layers
use them two ways:

* as *connectivity* (who may talk to whom directly — e.g. socially-aware
  P2P only serves trusted neighbours);
* as *structure* for placement (which server a user homes to in a
  federation).

Every builder takes an explicit ``seed`` so topologies are reproducible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import networkx as nx

from repro.errors import NetworkError
from repro.sim.rng import seeded_rng

__all__ = [
    "star",
    "isp_tree",
    "nodes_in_region",
    "random_graph",
    "small_world",
    "scale_free",
    "federation_homes",
    "ring_lattice",
]


def _ids(prefix: str, count: int) -> List[str]:
    if count <= 0:
        raise NetworkError(f"need a positive node count, got {count}")
    return [f"{prefix}{i}" for i in range(count)]


def star(center: str, leaves: Sequence[str]) -> nx.Graph:
    """A hub-and-spoke graph: the centralized-provider shape."""
    graph = nx.Graph()
    graph.add_node(center)
    for leaf in leaves:
        if leaf == center:
            raise NetworkError("center cannot also be a leaf")
        graph.add_edge(center, leaf)
    return graph


def isp_tree(
    n_isps: int,
    users_per_isp: int,
    isp_prefix: str = "isp",
    user_prefix: str = "user",
    regions: Optional[Sequence[str]] = None,
) -> nx.Graph:
    """The 1990s-Internet shape the paper calls semi-democratized (§2):
    hundreds of ISPs, each serving its own users, ISPs fully meshed.

    Every node carries an ``asn`` attribute (its ISP's index — users
    inherit their access ISP's AS) and, when ``regions`` is given, a
    ``region`` attribute: ISPs are assigned to regions round-robin and
    users sit in their ISP's region.  Censorship campaigns
    (:class:`repro.faults.Censor`) draw their border from these labels
    via :func:`nodes_in_region`.
    """
    graph = nx.Graph()
    isps = _ids(isp_prefix, n_isps)
    for i, isp_a in enumerate(isps):
        for isp_b in isps[i + 1:]:
            graph.add_edge(isp_a, isp_b)
    if n_isps == 1:
        graph.add_node(isps[0])
    for i, isp in enumerate(isps):
        graph.nodes[isp]["asn"] = i
        if regions:
            graph.nodes[isp]["region"] = regions[i % len(regions)]
        for j in range(users_per_isp):
            user = f"{user_prefix}{i}_{j}"
            graph.add_edge(isp, user)
            graph.nodes[user]["asn"] = i
            if regions:
                graph.nodes[user]["region"] = graph.nodes[isp]["region"]
    return graph


def nodes_in_region(graph: nx.Graph, region: str) -> List[str]:
    """All node ids labelled with ``region``, sorted (a censor border).

    Raises if the graph carries no region labels at all — asking for a
    border on an unlabelled topology is a setup bug, not an empty set.
    """
    if not any("region" in data for _, data in graph.nodes(data=True)):
        raise NetworkError("graph has no region labels (see isp_tree)")
    return sorted(
        node for node, data in graph.nodes(data=True)
        if data.get("region") == region
    )


def random_graph(count: int, edge_prob: float, seed: int, prefix: str = "n") -> nx.Graph:
    """Erdős–Rényi over generated node ids."""
    if not 0 <= edge_prob <= 1:
        raise NetworkError(f"edge_prob must be in [0,1]: {edge_prob}")
    ids = _ids(prefix, count)
    base = nx.gnp_random_graph(count, edge_prob, seed=seed)
    return nx.relabel_nodes(base, {i: ids[i] for i in range(count)})


def small_world(
    count: int, k: int = 6, rewire_prob: float = 0.1, seed: int = 0, prefix: str = "n"
) -> nx.Graph:
    """Watts–Strogatz small world — the standard social-graph stand-in
    used for the socially-aware P2P experiments (E5)."""
    if k >= count:
        raise NetworkError(f"k={k} must be < count={count}")
    ids = _ids(prefix, count)
    base = nx.watts_strogatz_graph(count, k, rewire_prob, seed=seed)
    return nx.relabel_nodes(base, {i: ids[i] for i in range(count)})


def scale_free(count: int, m: int = 2, seed: int = 0, prefix: str = "n") -> nx.Graph:
    """Barabási–Albert preferential attachment — hub-heavy graphs that
    model follower-style social networks."""
    if m >= count:
        raise NetworkError(f"m={m} must be < count={count}")
    ids = _ids(prefix, count)
    base = nx.barabasi_albert_graph(count, m, seed=seed)
    return nx.relabel_nodes(base, {i: ids[i] for i in range(count)})


def ring_lattice(count: int, k: int = 2, prefix: str = "n") -> nx.Graph:
    """Ring lattice (Watts–Strogatz with rewire probability 0)."""
    ids = _ids(prefix, count)
    base = nx.watts_strogatz_graph(count, k, 0.0, seed=0)
    return nx.relabel_nodes(base, {i: ids[i] for i in range(count)})


def federation_homes(
    user_ids: Sequence[str], server_ids: Sequence[str], seed: int = 0
) -> Dict[str, str]:
    """Assign each user a home server, round-robin after a seeded shuffle.

    Round-robin keeps instances balanced; the shuffle decorrelates user
    index from server index so failure experiments aren't accidentally
    structured.  The shuffle draws from the named stream
    ``"topology.federation_homes"`` (see :func:`repro.sim.rng.seeded_rng`)
    so it is independent of every other consumer of the same root seed.
    """
    if not server_ids:
        raise NetworkError("need at least one server")
    shuffled = list(user_ids)
    seeded_rng(seed, "topology.federation_homes").shuffle(shuffled)
    return {
        user_id: server_ids[i % len(server_ids)]
        for i, user_id in enumerate(shuffled)
    }
