"""Edge-case tests for the simulation engine combinators."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Interrupt, Signal, Simulator, Timeout


class TestCombinatorEdges:
    def test_allof_with_timeout_children(self):
        sim = Simulator()

        def waiter():
            results = yield AllOf([Timeout(3.0), Timeout(1.0)])
            return (sim.now, results)

        when, results = sim.run_process(waiter())
        assert when == 3.0
        assert results == [None, None]

    def test_allof_with_process_children(self):
        sim = Simulator()

        def child(duration, value):
            yield duration
            return value

        def parent():
            a = sim.spawn(child(2.0, "a"))
            b = sim.spawn(child(5.0, "b"))
            results = yield AllOf([a, b])
            return (sim.now, results)

        when, results = sim.run_process(parent())
        assert when == 5.0
        assert results == ["a", "b"]

    def test_anyof_with_process_children(self):
        sim = Simulator()

        def child(duration, value):
            yield duration
            return value

        def parent():
            slow = sim.spawn(child(9.0, "slow"))
            fast = sim.spawn(child(1.0, "fast"))
            index, value = yield AnyOf([slow, fast])
            return (index, value)

        assert sim.run_process(parent()) == (1, "fast")

    def test_anyof_later_completion_ignored(self):
        sim = Simulator()
        s1, s2 = Signal("1"), Signal("2")
        results = []

        def waiter():
            results.append((yield AnyOf([s1, s2])))

        sim.spawn(waiter())
        sim.schedule(1.0, s1.fire, "first")
        sim.schedule(2.0, s2.fire, "second")
        sim.run()
        assert results == [(0, "first")]

    def test_empty_combinators_rejected(self):
        with pytest.raises(SimulationError):
            AllOf([])
        with pytest.raises(SimulationError):
            AnyOf([])

    def test_combining_garbage_rejected(self):
        sim = Simulator()

        def waiter():
            yield AllOf(["not-a-waitable"])

        sim.spawn(waiter())
        with pytest.raises(SimulationError):
            sim.run()

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_interrupt_cause_accessible(self):
        sim = Simulator()
        seen = []

        def sleeper():
            try:
                yield 100.0
            except Interrupt as exc:
                seen.append(exc.cause)

        process = sim.spawn(sleeper())
        sim.schedule(1.0, process.interrupt, {"reason": "shutdown"})
        sim.run()
        assert seen == [{"reason": "shutdown"}]

    def test_process_result_before_completion_raises(self):
        sim = Simulator()

        def sleeper():
            yield 10.0

        process = sim.spawn(sleeper())
        sim.run(until=1.0)
        with pytest.raises(SimulationError):
            _ = process.result

    def test_run_process_with_horizon_returns_early_finish(self):
        sim = Simulator()
        # A perpetual background process that would block a plain run().
        def forever():
            while True:
                yield 10.0

        sim.spawn(forever())

        def quick():
            yield 5.0
            return "done"

        assert sim.run_process(quick(), until=100.0) == "done"
        assert sim.now <= 100.0

    def test_run_process_horizon_exceeded_raises(self):
        sim = Simulator()

        def slow():
            yield 1000.0
            return "never"

        with pytest.raises(SimulationError):
            sim.run_process(slow(), until=10.0)

    def test_signal_value_before_fire_raises(self):
        signal = Signal("pending")
        with pytest.raises(SimulationError):
            _ = signal.value

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_timeout_zero_fires_same_instant(self):
        sim = Simulator()
        order = []

        def a():
            yield 0.0
            order.append("a")

        def b():
            yield 0.0
            order.append("b")

        sim.spawn(a())
        sim.spawn(b())
        sim.run()
        assert order == ["a", "b"]  # FIFO at the same instant
