"""EC — censorship-resistance sweep across border campaigns.

The paper's §4 control barrier asks what a decentralized service loses
when a national censor closes the border.  The chaos layer answers for
one (scenario, plan) pair at a time; this driver sweeps the full matrix
— each censor scenario (E4C group feeds, E5C liveness pings, E9C blob
retrieval) under each border campaign preset — and condenses every run
into one comparable row: reachability, how fast the censor's DPI put
relays back on the blocklist, and what the campaign cost in collateral
damage.

The grid points go through :class:`~repro.analysis.runner.SweepRunner`,
so the matrix caches, parallelizes, and stays byte-deterministic like
every other sweepable experiment.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.runner import SweepRunner

__all__ = ["CENSOR_EXPERIMENTS", "CENSOR_PRESETS", "run_censorship_sweep"]

#: The chaos scenarios built on the labelled-border topology.
CENSOR_EXPERIMENTS = ("E4C", "E5C", "E9C")

#: The fault-plan presets that target that border.
CENSOR_PRESETS = ("border-block", "border-block-probing", "border-flap")


def _censor_point(experiment: str, preset: str, seed: int) -> Dict[str, Any]:
    """One grid point: a full chaos run condensed to a summary row.

    Imports stay inside the function so the runner's worker pool can
    pickle the callable without dragging the fault subsystem into every
    analysis import.
    """
    from repro.faults import preset_plan, run_chaos

    report = run_chaos(experiment, preset_plan(preset), seed)
    result = report["result"]
    cost = result["censor_cost"]
    detected_at = result["first_detection_at"]
    reblocked_at = result["first_reblock_at"]
    time_to_reblock = (
        round(reblocked_at - detected_at, 6)
        if detected_at is not None and reblocked_at is not None
        else None
    )
    return {
        "experiment": experiment,
        "preset": preset,
        "reachability": round(result["reachability"], 4),
        "attempts": result["attempts"],
        "ok": result["ok"],
        "relays_reblocked": result["relays_reblocked"],
        "time_to_reblock": time_to_reblock,
        "blocked_flows": cost["blocked_flows"],
        "collateral_flows": cost["collateral_flows"],
        "degraded_drops": cost["degraded_drops"],
        "violations": len(report["violations"]),
    }


def run_censorship_sweep(
    seed: int = 1,
    experiments: Sequence[str] = CENSOR_EXPERIMENTS,
    presets: Sequence[str] = CENSOR_PRESETS,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, Any]]:
    """EC: the censorship matrix, one row per (scenario, campaign).

    The rows read as the §4 argument in numbers: a static blocklist
    costs the censor pure collateral damage while relays keep
    reachability high, and adding DPI probing collapses reachability at
    the price of time-to-reblock lag plus every flow it kills.
    """
    runner = runner or SweepRunner()
    configs = [
        {"experiment": experiment, "preset": preset, "seed": seed}
        for experiment in experiments
        for preset in presets
    ]
    return runner.run("EC_censorship", _censor_point, configs)
