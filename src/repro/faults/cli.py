"""``python -m repro chaos``: run an experiment scenario under a fault plan.

Usage::

    python -m repro chaos E4 --plan server-kill --seed 7
    python -m repro chaos E6 --plan registration-partition --format json
    python -m repro chaos E9 --plan plans/flap.json --out chaos.jsonl
    python -m repro chaos --list                   # presets and scenarios

Exit codes mirror ``repro lint``: 0 all invariants held, 1 at least one
invariant violated, 2 usage error.  The run executes under full
observation, so ``--out`` writes the same JSONL trace schema ``repro
trace`` produces (including the ``fault_injected`` / ``fault_healed`` /
``invariant_checked`` / ``invariant_violated`` kinds), and identical
(experiment, plan, seed) invocations write byte-identical traces.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Optional

from repro.errors import FaultError
from repro.faults.presets import PRESETS, load_plan
from repro.faults.scenarios import SCENARIOS, run_chaos
from repro.obs.metrics import Metrics
from repro.obs.runtime import observe
from repro.obs.tracer import Tracer

__all__ = [
    "CHAOS_SCHEMA_VERSION",
    "add_chaos_arguments",
    "render_chaos_human",
    "render_chaos_json",
    "run_chaos_command",
    "validate_chaos_report",
]

CHAOS_SCHEMA_VERSION = 1

#: Keys every chaos JSON report must carry (the machine interface CI
#: consumes; ``validate_chaos_report`` checks them).
_REQUIRED_KEYS = (
    "schema", "experiment", "plan", "seed", "result", "flow", "faults",
    "invariants", "violations", "trace", "metrics",
)


def add_chaos_arguments(parser) -> None:
    """Attach the chaos options to an ``argparse`` (sub)parser."""
    parser.add_argument(
        "name", nargs="?", default=None,
        help="experiment id with a chaos scenario, e.g. E4",
    )
    parser.add_argument(
        "--plan", default="quiet", metavar="PRESET|FILE",
        help="fault plan: a preset name or a .json plan file"
             " (default: quiet)",
    )
    parser.add_argument(
        "--seed", type=int, default=1,
        help="root seed for all RNG streams (default: 1)",
    )
    parser.add_argument(
        "--interval", type=float, default=5.0, metavar="S",
        help="invariant sweep interval in simulated seconds (default: 5)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSONL trace here (default: no trace file)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_presets",
        help="print scenarios and presets, then exit",
    )


def _listing() -> str:
    lines = [f"scenarios: {' '.join(sorted(SCENARIOS))}", "presets:"]
    for name in sorted(PRESETS):
        plan = PRESETS[name]()
        kinds = ", ".join(e.kind for e in plan) or "no events"
        lines.append(f"  {name:<32} {kinds}")
    return "\n".join(lines)


def render_chaos_json(report: Dict[str, Any]) -> str:
    return json.dumps(report, indent=1, sort_keys=True)


def render_chaos_human(report: Dict[str, Any]) -> str:
    lines = [
        f"chaos {report['experiment']}  plan={report['plan']}"
        f"  seed={report['seed']}  horizon={report['horizon']:g}s",
    ]
    for key, value in sorted(report["result"].items()):
        lines.append(f"  {key:<24} {value}")
    flow = report["flow"]
    lines.append(
        f"  flow: sent={flow['sent']} delivered={flow['delivered']}"
        f" dropped={flow['dropped']} in_flight={flow['in_flight']}"
    )
    faults = report["faults"]
    lines.append(
        f"  faults: injected={faults['injected']} healed={faults['healed']}"
    )
    inv = report["invariants"]
    lines.append(
        f"  invariants: {inv['registered']} registered,"
        f" {inv['checks_run']} checks, {inv['violated']} violated"
    )
    for violation in report["violations"]:
        lines.append(
            f"  VIOLATED {violation['name']} at t={violation['at']:g}:"
            f" {violation['message']}"
        )
    return "\n".join(lines)


def validate_chaos_report(doc: Any) -> List[str]:
    """Schema-check a parsed chaos JSON report; returns error strings."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"report must be an object, got {type(doc).__name__}"]
    for key in _REQUIRED_KEYS:
        if key not in doc:
            errors.append(f"missing key {key!r}")
    if doc.get("schema") != CHAOS_SCHEMA_VERSION:
        errors.append(
            f"schema is {doc.get('schema')!r},"
            f" expected {CHAOS_SCHEMA_VERSION}"
        )
    if "violations" in doc and not isinstance(doc["violations"], list):
        errors.append("violations must be a list")
    return errors


def run_chaos_command(args) -> int:
    """Execute the chaos command from parsed arguments."""
    if args.list_presets:
        print(_listing())
        return 0
    if args.name is None:
        print("chaos: an experiment id (or --list) is required",
              file=sys.stderr)
        return 2
    name = args.name.upper()
    if name not in SCENARIOS:
        print(f"chaos: no scenario for {args.name!r}; available:"
              f" {', '.join(sorted(SCENARIOS))}", file=sys.stderr)
        return 2
    if args.interval <= 0:
        print(f"chaos: --interval must be positive, got {args.interval}",
              file=sys.stderr)
        return 2
    try:
        plan = load_plan(args.plan)
    except FaultError as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 2

    tracer = Tracer()
    metrics = Metrics()
    try:
        with observe(tracer=tracer, metrics=metrics):
            outcome = run_chaos(name, plan, args.seed,
                                interval=args.interval)
    except FaultError as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 2

    written: Optional[int] = None
    if args.out is not None:
        written = tracer.write_jsonl(args.out)

    report: Dict[str, Any] = {"schema": CHAOS_SCHEMA_VERSION}
    report.update(outcome)
    report["trace"] = {"events": len(tracer), "by_kind": tracer.by_kind()}
    report["metrics"] = {"counters": metrics.snapshot()["counters"]}

    if args.format == "json":
        print(render_chaos_json(report))
    else:
        print(render_chaos_human(report))
        if written is not None:
            print(f"trace written: {args.out} ({written} record(s))")
    return 1 if report["violations"] else 0
