"""Shape tests for every experiment driver (small parameters)."""

import pytest

from repro.analysis import (
    cross_product,
    naming_attack_curve,
    render_kv,
    render_table,
    run_federation_availability,
    run_partial_federation_sweep,
    run_feasibility,
    run_proof_economics,
    run_quality_vs_quantity,
    run_social_tradeoff,
    run_swarm_availability,
    sweep,
)
from repro.analysis.experiments import run_moderation_comparison
from repro.analysis.scorecards import measured_scorecards


class TestTableRendering:
    def test_render_table_alignment(self):
        out = render_table([{"a": 1, "bb": "xy"}, {"a": 100, "bb": "z"}])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "100" in lines[3]
        assert len(lines) == 4

    def test_render_table_empty(self):
        assert render_table([]) == "(empty table)"

    def test_render_table_explicit_columns(self):
        out = render_table([{"a": 1, "b": 2}], columns=["b", "a"])
        assert out.splitlines()[0].startswith("b")

    def test_render_kv(self):
        out = render_kv({"x": 1, "long_key": 2}, title="T")
        assert out.splitlines()[0] == "T"
        assert "long_key : 2" in out


class TestSweepHelpers:
    def test_sweep_runs_each_value(self):
        rows = sweep(lambda base, k: base + k, "k", [1, 2, 3], base=10)
        assert [row["result"] for row in rows] == [11, 12, 13]

    def test_cross_product(self):
        combos = cross_product(a=[1, 2], b=["x"])
        assert combos == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]

    def test_cross_product_preserves_caller_axis_order(self):
        # Axes expand in the order the caller named them (the last axis
        # varies fastest) — NOT alphabetically.
        combos = cross_product(beta=["x", "y"], alpha=[1, 2])
        assert combos == [
            {"beta": "x", "alpha": 1},
            {"beta": "x", "alpha": 2},
            {"beta": "y", "alpha": 1},
            {"beta": "y", "alpha": 2},
        ]
        assert [list(combo) for combo in combos] == [["beta", "alpha"]] * 4

    def test_cross_product_axis_order_never_changes_cache_identity(self):
        # Config hashing canonicalizes with sorted keys, so reordering
        # axes reorders rows without invalidating any cached result.
        from repro.analysis import canonical_config_hash

        forward = cross_product(a=[1], b=[2])[0]
        backward = cross_product(b=[2], a=[1])[0]
        assert list(forward) != list(backward)  # different row key order
        assert canonical_config_hash(forward) == canonical_config_hash(
            backward
        )


class TestDriverShapes:
    def test_feasibility_shape(self):
        result = run_feasibility()
        assert {r["resource"] for r in result["table3"]} == {
            "Bandwidth", "Cores", "Storage"
        }
        assert set(result["sufficient"]) == {"bandwidth", "cores", "storage"}

    def test_federation_driver_rows(self):
        rows = run_federation_availability(
            seed=2, n_servers=3, n_users=6, n_messages=3
        )
        assert [row["model"] for row in rows] == [
            "single_home", "replicated", "replicated_failover"
        ]
        for row in rows:
            assert 0.0 <= row["read_availability"] <= 1.0

    def test_social_tradeoff_rows(self):
        rows = run_social_tradeoff(seed=2, n_users=10, n_posts=4, n_probes=10,
                                   horizon=1500.0)
        systems = [row["system"] for row in rows]
        assert "centralized" in systems and "socially_aware_p2p" in systems
        for row in rows:
            assert 0.0 <= row["availability"] <= 1.0
            assert 0.0 <= row["operator_exposure"] <= 1.0

    def test_attack_curve_monotone(self):
        rows = naming_attack_curve(shares=(0.1, 0.3, 0.5))
        probs = [row["rewrite_probability"] for row in rows]
        assert probs == sorted(probs)
        assert probs[-1] == 1.0

    def test_proof_economics_rows(self):
        rows = run_proof_economics(seed=2, epochs=4, blob_chunks=8)
        assert {row["behaviour"] for row in rows} >= {
            "honest", "drop_half", "dedup_sybil"
        }
        honest = next(r for r in rows if r["behaviour"] == "honest")
        assert honest["epochs_paid"] == 4

    def test_swarm_rows(self):
        rows = run_swarm_availability(
            seed=2, offered_loads=(0.2, 16.0), horizon=1000.0
        )
        assert rows[0]["availability"] <= rows[1]["availability"]

    def test_quality_rows(self):
        rows = run_quality_vs_quantity(
            seed=2, replication_factors=(1, 3), n_providers=8,
            horizon=1500.0, n_probes=8, blob_kib=2,
        )
        assert len(rows) == 4  # 2 grades x 2 factors
        grades = {row["infrastructure"] for row in rows}
        assert grades == {"datacenter", "device"}

    def test_moderation_rows(self):
        rows = run_moderation_comparison(seed=2)
        assert len(rows) == 4
        for row in rows:
            assert 0.0 <= row["spam_pass_rate"] <= 1.0
            assert 0.0 <= row["collateral_block_rate"] <= 1.0


class TestMeasuredScorecards:
    def test_measured_scores_tagged_with_experiments(self):
        cards = measured_scorecards(seed=2)
        for name in ("centralized", "federated_replicated", "socially_aware_p2p"):
            card = cards[name]
            assert card.evidence["connectedness"].startswith("measured:")
            assert card.evidence["privacy"].startswith("measured:")

    def test_measured_ordering_matches_paper_claims(self):
        cards = measured_scorecards(seed=2)
        # Privacy: P2P > federated (E2E) > centralized.
        assert (
            cards["socially_aware_p2p"].score("privacy")
            >= cards["federated_replicated"].score("privacy")
            >= cards["centralized"].score("privacy")
        )
        # Connectedness: centralized >= socially-aware P2P.
        assert (
            cards["centralized"].score("connectedness")
            >= cards["socially_aware_p2p"].score("connectedness")
        )
        # Replicated federation beats single-home on connectedness (E4).
        assert (
            cards["federated_replicated"].score("connectedness")
            > cards["federated_single_home"].score("connectedness")
        )

    def test_paper_priors_untouched_for_unmeasured_properties(self):
        cards = measured_scorecards(seed=2)
        assert cards["centralized"].evidence["convenience"] == "paper:qualitative"

class TestPartialFederationSweep:
    """E4P: availability/exposure across the trust spectrum, seed-pinned.

    The acceptance curve: read availability after one hub failure is
    monotone none -> filtered -> full at every trust level, and the
    metadata-exposure cost rises with it (the paper's walled-garden
    tension restated as a federation-policy dial).
    """

    @pytest.fixture(scope="class")
    def rows(self):
        return run_partial_federation_sweep(seed=1)

    def test_grid_shape(self, rows):
        assert [(r["policy"], r["trust"]) for r in rows] == [
            (policy, trust)
            for policy in ("none", "filtered", "full")
            for trust in (0.2, 0.5, 0.9)
        ]
        assert all(r["strategy"] == "lww" for r in rows)

    def test_availability_monotone_in_policy(self, rows):
        by_policy = {}
        for row in rows:
            by_policy.setdefault(row["trust"], {})[row["policy"]] = (
                row["read_availability"]
            )
        for trust, curve in by_policy.items():
            assert curve["none"] <= curve["filtered"] <= curve["full"]
            # The spectrum's endpoints genuinely differ: isolation loses
            # data to the failure, full federation rides it out.
            assert curve["none"] < curve["full"]

    def test_exposure_tracks_availability(self, rows):
        for row in rows:
            if row["policy"] == "none":
                assert row["metadata_exposure"] < 0.5
            if row["policy"] == "full":
                assert row["metadata_exposure"] == 1.0

    def test_filtered_trust_dial_pinned(self, rows):
        filtered = {
            row["trust"]: row for row in rows if row["policy"] == "filtered"
        }
        assert filtered[0.2]["read_availability"] == pytest.approx(2 / 3)
        assert filtered[0.5]["read_availability"] == pytest.approx(2 / 3)
        assert filtered[0.9]["read_availability"] == 1.0
        assert filtered[0.2]["metadata_exposure"] == 0.625
        assert filtered[0.9]["metadata_exposure"] == 1.0

    def test_golden_none_and_full_rows(self, rows):
        for row in rows:
            assert row["divergent_keys"] == 0
            assert row["conflicts_pending"] == 0
            assert row["failed"] == 1
            if row["policy"] == "none":
                assert row["read_availability"] == 0.0
                assert row["metadata_exposure"] == 0.25
            if row["policy"] == "full":
                assert row["read_availability"] == 1.0
