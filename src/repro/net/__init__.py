"""Simulated network substrate: nodes, latency, transport, churn, topology."""

from repro.net.churn import (
    DATACENTER_PROFILE,
    HOME_SERVER_PROFILE,
    PERSONAL_COMPUTER_PROFILE,
    SMARTPHONE_PROFILE,
    TABLET_PROFILE,
    ChurnProcess,
    ChurnProfile,
    attach_churn,
    cohort_from_profile,
    profile_for_class,
)
from repro.net.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    PlanetLatency,
    UniformLatency,
)
from repro.net.node import Node, NodeClass
from repro.net.topology import isp_tree, nodes_in_region
from repro.net.transport import (
    DEFAULT_MESSAGE_BYTES,
    CensorSurface,
    FaultSurface,
    Network,
)

__all__ = [
    "Node",
    "NodeClass",
    "Network",
    "CensorSurface",
    "FaultSurface",
    "isp_tree",
    "nodes_in_region",
    "DEFAULT_MESSAGE_BYTES",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "PlanetLatency",
    "ChurnProfile",
    "ChurnProcess",
    "attach_churn",
    "cohort_from_profile",
    "profile_for_class",
    "DATACENTER_PROFILE",
    "HOME_SERVER_PROFILE",
    "PERSONAL_COMPUTER_PROFILE",
    "SMARTPHONE_PROFILE",
    "TABLET_PROFILE",
]
