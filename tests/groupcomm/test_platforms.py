"""Tests for the centralized, federated, and social-P2P platforms."""

import pytest

from repro.errors import (
    AccessDeniedError,
    GroupCommError,
    RpcTimeoutError,
)
from repro.groupcomm import (
    CentralizedPlatform,
    ReplicatedFederation,
    Room,
    SingleHomeFederation,
    SocialP2PNetwork,
    audit_centralized,
    audit_replicated_federation,
    audit_social_p2p,
    exposure_score,
)
from repro.net import ConstantLatency, Network
from repro.net.topology import small_world
from repro.sim import RngStreams, Simulator


def make_network(seed=1):
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams, latency=ConstantLatency(0.02))
    return sim, streams, network


class TestCentralized:
    def setup_platform(self, seed=1):
        sim, streams, network = make_network(seed)
        platform = CentralizedPlatform(network)
        for user in ("alice", "bob", "eve"):
            network.create_node(user)
        platform.create_room("general", ["alice", "bob"])
        return sim, network, platform

    def test_post_and_fetch(self):
        sim, network, platform = self.setup_platform()

        def scenario():
            yield from platform.post("alice", "general", "hi bob")
            messages = yield from platform.fetch("bob", "general")
            return messages

        messages = sim.run_process(scenario())
        assert [m.body for m in messages] == ["hi bob"]

    def test_non_member_rejected(self):
        sim, network, platform = self.setup_platform()

        def scenario():
            try:
                yield from platform.post("eve", "general", "spam")
            except GroupCommError:
                return "denied"

        assert sim.run_process(scenario()) == "denied"

    def test_ban_revokes_access_and_data(self):
        sim, network, platform = self.setup_platform()

        def scenario():
            yield from platform.post("alice", "general", "my data")
            platform.ban("alice")
            try:
                yield from platform.fetch("alice", "general")
            except AccessDeniedError:
                return "locked-out"

        # The feudal failure: her own data is now inaccessible to her.
        assert sim.run_process(scenario()) == "locked-out"

    def test_operator_deletion_is_global(self):
        sim, network, platform = self.setup_platform()

        def scenario():
            msg_id = yield from platform.post("alice", "general", "controversial")
            platform.delete_message(msg_id)
            return (yield from platform.fetch("bob", "general"))

        assert sim.run_process(scenario()) == []

    def test_operator_sees_everything(self):
        sim, network, platform = self.setup_platform()

        def scenario():
            yield from platform.post("alice", "general", "private thought")

        sim.run_process(scenario())
        report = audit_centralized(platform, "general")
        assert report.content_exposure == 1.0
        assert report.metadata_exposure == 1.0
        assert exposure_score(report) == 1.0

    def test_server_down_means_total_outage(self):
        sim, network, platform = self.setup_platform()
        network.node(platform.server_id).set_online(False, 0.0)

        def scenario():
            try:
                yield from platform.post("alice", "general", "hello?")
            except RpcTimeoutError:
                return "outage"

        assert sim.run_process(scenario()) == "outage"


class TestSingleHomeFederation:
    def setup_federation(self, seed=2, n_servers=3, n_users=6):
        sim, streams, network = make_network(seed)
        servers = [f"srv{i}" for i in range(n_servers)]
        fed = SingleHomeFederation(network, servers)
        users = [f"u{i}" for i in range(n_users)]
        for i, user in enumerate(users):
            fed.add_user(user, home=servers[i % n_servers])
        fed.create_room("room", users)
        return sim, network, fed, users, servers

    def test_cross_server_delivery(self):
        sim, network, fed, users, servers = self.setup_federation()

        def scenario():
            yield from fed.post("u0", "room", "hello federation")
            yield 5.0  # let pushes land
            return (yield from fed.fetch("u1", "room"))  # u1 on srv1

        messages = sim.run_process(scenario())
        assert [m.body for m in messages] == ["hello federation"]

    def test_home_server_failure_cuts_off_its_users(self):
        sim, network, fed, users, servers = self.setup_federation()

        def scenario():
            yield from fed.post("u0", "room", "before failure")
            yield 5.0
            network.node("srv1").set_online(False, sim.now)
            try:
                yield from fed.fetch("u1", "room")  # homed on srv1
            except RpcTimeoutError:
                return "instance-down"

        assert sim.run_process(scenario()) == "instance-down"

    def test_other_instances_unaffected_by_one_failure(self):
        sim, network, fed, users, servers = self.setup_federation()

        def scenario():
            yield from fed.post("u0", "room", "m1")
            yield 5.0
            network.node("srv1").set_online(False, sim.now)
            return (yield from fed.fetch("u2", "room"))  # homed on srv2

        messages = sim.run_process(scenario())
        assert [m.body for m in messages] == ["m1"]

    def test_push_lost_if_destination_down_no_repair(self):
        sim, network, fed, users, servers = self.setup_federation()

        def scenario():
            network.node("srv1").set_online(False, sim.now)
            yield from fed.post("u0", "room", "missed")
            yield 5.0
            network.node("srv1").set_online(True, sim.now)
            yield 60.0  # plenty of time: still no repair mechanism
            return (yield from fed.fetch("u1", "room"))

        # The defining OStatus weakness: the message never arrives.
        assert sim.run_process(scenario()) == []

    def test_user_must_use_home(self):
        sim, network, fed, users, servers = self.setup_federation()
        assert fed.home_of("u0") == "srv0"
        with pytest.raises(GroupCommError):
            fed.add_user("u0")  # duplicate registration


class TestReplicatedFederation:
    def setup_federation(self, seed=3, allow_failover=False):
        sim, streams, network = make_network(seed)
        servers = [f"srv{i}" for i in range(3)]
        fed = ReplicatedFederation(
            network, servers, streams, gossip_interval=2.0,
            allow_failover=allow_failover,
        )
        users = [f"u{i}" for i in range(6)]
        for i, user in enumerate(users):
            fed.add_user(user, home=servers[i % 3])
        fed.create_room("room", users)
        fed.start_replication()
        return sim, network, fed, users, servers

    def test_replication_spreads_to_all_servers(self):
        sim, network, fed, users, servers = self.setup_federation()

        def scenario():
            yield from fed.post("u0", "room", "replicate me")
            yield 60.0  # several gossip rounds
            fed.stop_replication()

        sim.run_process(scenario(), until=200.0)
        for server in servers:
            assert len(fed._room_messages(server, "room")) == 1

    def test_origin_server_death_does_not_lose_history(self):
        sim, network, fed, users, servers = self.setup_federation(seed=4)

        def scenario():
            yield from fed.post("u0", "room", "survives")
            yield 60.0
            network.node("srv0").set_online(False, sim.now)  # origin dies
            messages = yield from fed.fetch("u1", "room")  # u1 on srv1
            fed.stop_replication()
            return messages

        messages = sim.run_process(scenario(), until=300.0)
        assert [m.body for m in messages] == ["survives"]

    def test_late_server_catches_up(self):
        sim, network, fed, users, servers = self.setup_federation(seed=5)

        def scenario():
            network.node("srv2").set_online(False, sim.now)
            yield from fed.post("u0", "room", "missed then repaired")
            yield 30.0
            network.node("srv2").set_online(True, sim.now)
            yield 120.0  # anti-entropy repairs
            fed.stop_replication()

        sim.run_process(scenario(), until=400.0)
        assert len(fed._room_messages("srv2", "room")) == 1

    def test_failover_fetch_when_home_down(self):
        sim, network, fed, users, servers = self.setup_federation(
            seed=6, allow_failover=True
        )

        def scenario():
            yield from fed.post("u0", "room", "m")
            yield 60.0
            network.node("srv0").set_online(False, sim.now)  # u0's home
            messages = yield from fed.fetch("u0", "room")
            fed.stop_replication()
            return messages

        messages = sim.run_process(scenario(), until=300.0)
        assert [m.body for m in messages] == ["m"]

    def test_no_failover_means_home_down_is_outage(self):
        sim, network, fed, users, servers = self.setup_federation(seed=7)

        def scenario():
            yield from fed.post("u0", "room", "m")
            yield 30.0
            network.node("srv0").set_online(False, sim.now)
            try:
                yield from fed.fetch("u0", "room")
            except RpcTimeoutError:
                fed.stop_replication()
                return "outage"

        assert sim.run_process(scenario(), until=300.0) == "outage"

    def test_e2e_encryption_hides_content_from_servers(self):
        sim, network, fed, users, servers = self.setup_federation(seed=8)

        def scenario():
            yield from fed.post("u0", "room", "ciphertext-blob", encrypted=True)
            yield from fed.post("u1", "room", "plaintext", encrypted=False)
            yield 60.0
            fed.stop_replication()

        sim.run_process(scenario(), until=300.0)
        report = audit_replicated_federation(fed, "room")
        assert report.total_messages == 2
        assert report.content_visible_to_operators == 1  # only the plaintext
        assert report.metadata_visible_to_operators == 2  # both leak metadata
        assert 0 < exposure_score(report) < 1


class TestSocialP2P:
    def setup_p2p(self, seed=9, size=12):
        sim, streams, network = make_network(seed)
        graph = small_world(size, k=4, rewire_prob=0.2, seed=seed, prefix="u")
        p2p = SocialP2PNetwork(network, graph, replicate_to_friends=2)
        return sim, network, p2p, graph

    def test_friend_can_fetch(self):
        sim, network, p2p, graph = self.setup_p2p()
        author = "u0"
        friend = p2p.friends_of(author)[0]

        def scenario():
            yield from p2p.post(author, "my post")
            return (yield from p2p.fetch(friend, author))

        messages = sim.run_process(scenario())
        assert [m.body for m in messages] == ["my post"]

    def test_stranger_denied(self):
        sim, network, p2p, graph = self.setup_p2p()
        author = "u0"
        stranger = next(
            u for u in graph.nodes
            if u != author and not p2p.are_friends(author, u)
        )

        def scenario():
            yield from p2p.post(author, "private")
            try:
                yield from p2p.fetch(stranger, author)
            except AccessDeniedError:
                return "denied"

        assert sim.run_process(scenario()) == "denied"

    def test_replicas_serve_when_author_offline(self):
        sim, network, p2p, graph = self.setup_p2p()
        author = "u0"
        friend = p2p.friends_of(author)[0]

        def scenario():
            msg_id = yield from p2p.post(author, "resilient post")
            assert p2p.replica_count(author, msg_id) >= 2
            network.node(author).set_online(False, sim.now)
            return (yield from p2p.fetch(friend, author))

        messages = sim.run_process(scenario())
        assert [m.body for m in messages] == ["resilient post"]

    def test_unavailable_when_author_and_replicas_offline(self):
        sim, network, p2p, graph = self.setup_p2p()
        author = "u0"
        friends = p2p.friends_of(author)
        reader = friends[-1]

        def scenario():
            yield from p2p.post(author, "gone post")
            network.node(author).set_online(False, sim.now)
            for holder in friends:
                if holder != reader:
                    network.node(holder).set_online(False, sim.now)
            # Reader holds no replica in the worst case; expect failure
            # unless the post replicated to the reader itself.
            try:
                messages = yield from p2p.fetch(reader, author)
                return "available" if messages else "empty"
            except GroupCommError:
                return "unavailable"

        result = sim.run_process(scenario())
        assert result in ("unavailable", "available")

    def test_offline_author_cannot_post(self):
        sim, network, p2p, graph = self.setup_p2p()
        network.node("u0").set_online(False, 0.0)

        def scenario():
            try:
                yield from p2p.post("u0", "x")
            except GroupCommError:
                return "offline"
            yield 0  # pragma: no cover

        assert sim.run_process(scenario()) == "offline"

    def test_privacy_audit_zero_operator_exposure(self):
        sim, network, p2p, graph = self.setup_p2p()

        def scenario():
            yield from p2p.post("u0", "a")
            yield from p2p.post("u1", "b")

        sim.run_process(scenario())
        report = audit_social_p2p(p2p, ["u0", "u1"])
        assert report.total_messages == 2
        assert report.content_exposure == 0.0
        assert exposure_score(report) == 0.0


class TestAccessLevels:
    """Persona/Lockr-style audience policies on the social P2P layer."""

    def setup_p2p(self, seed=20):
        sim = Simulator()
        streams = RngStreams(seed)
        network = Network(sim, streams, latency=ConstantLatency(0.02))
        graph = small_world(10, k=4, rewire_prob=0.2, seed=seed, prefix="u")
        from repro.groupcomm import SocialP2PNetwork as Net

        p2p = Net(network, graph, replicate_to_friends=2)
        return sim, network, p2p, graph

    def test_public_post_readable_by_stranger(self):
        from repro.groupcomm import Audience

        sim, network, p2p, graph = self.setup_p2p()
        author = "u0"
        stranger = next(
            u for u in graph.nodes
            if u != author and not p2p.are_friends(author, u)
        )

        def scenario():
            yield from p2p.post(author, "open post", audience=Audience.PUBLIC)
            return (yield from p2p.fetch(stranger, author))

        messages = sim.run_process(scenario())
        assert [m.body for m in messages] == ["open post"]

    def test_friends_post_hidden_from_stranger(self):
        from repro.groupcomm import Audience

        sim, network, p2p, graph = self.setup_p2p(seed=21)
        author = "u0"
        stranger = next(
            u for u in graph.nodes
            if u != author and not p2p.are_friends(author, u)
        )

        def scenario():
            yield from p2p.post(author, "public", audience=Audience.PUBLIC)
            yield from p2p.post(author, "for friends", audience=Audience.FRIENDS)
            return (yield from p2p.fetch(stranger, author))

        messages = sim.run_process(scenario())
        # The stranger sees only the public post.
        assert [m.body for m in messages] == ["public"]

    def test_close_friends_post_excludes_ordinary_friends(self):
        from repro.groupcomm import Audience

        sim, network, p2p, graph = self.setup_p2p(seed=22)
        author = "u0"
        friends = p2p.friends_of(author)
        confidant, acquaintance = friends[0], friends[1]
        p2p.designate_close_friends(author, [confidant])

        def scenario():
            yield from p2p.post(
                author, "inner circle", audience=Audience.CLOSE_FRIENDS
            )
            inner = yield from p2p.fetch(confidant, author)
            outer = yield from p2p.fetch(acquaintance, author)
            return inner, outer

        inner, outer = sim.run_process(scenario())
        assert [m.body for m in inner] == ["inner circle"]
        assert outer == []

    def test_close_friend_must_be_friend(self):
        sim, network, p2p, graph = self.setup_p2p(seed=23)
        author = "u0"
        stranger = next(
            u for u in graph.nodes
            if u != author and not p2p.are_friends(author, u)
        )
        with pytest.raises(GroupCommError):
            p2p.designate_close_friends(author, [stranger])

    def test_author_reads_everything(self):
        from repro.groupcomm import Audience

        sim, network, p2p, graph = self.setup_p2p(seed=24)
        author = "u0"
        p2p.designate_close_friends(author, [p2p.friends_of(author)[0]])

        def scenario():
            for audience in Audience.ALL:
                yield from p2p.post(author, f"post-{audience}", audience=audience)
            return (yield from p2p.fetch(author, author))

        messages = sim.run_process(scenario())
        assert len(messages) == 3

    def test_unknown_audience_rejected(self):
        sim, network, p2p, graph = self.setup_p2p(seed=25)

        def scenario():
            yield from p2p.post("u0", "x", audience="enemies")

        with pytest.raises(GroupCommError):
            sim.run_process(scenario())

    def test_replicas_enforce_policy_too(self):
        # "Relationships are not exploited": a friend's replica won't leak
        # a close-friends post to an ordinary friend.
        from repro.groupcomm import Audience

        sim, network, p2p, graph = self.setup_p2p(seed=26)
        author = "u0"
        friends = p2p.friends_of(author)
        confidant = friends[0]
        p2p.designate_close_friends(author, [confidant])

        def scenario():
            yield from p2p.post(
                author, "secret", audience=Audience.CLOSE_FRIENDS
            )
            network.node(author).set_online(False, sim.now)  # replicas only
            try:
                leaked = yield from p2p.fetch(friends[1], author)
            except GroupCommError:
                return []
            return leaked

        assert sim.run_process(scenario()) == []


class TestInstanceModeration:
    """Mastodon-style per-instance rules wired into the federation."""

    def setup_fed(self, seed=30):
        sim, streams, network = make_network(seed)
        fed = SingleHomeFederation(network, ["strict.social", "lax.social"])
        fed.add_user("poster", home="lax.social")
        fed.add_user("strict-user", home="strict.social")
        fed.add_user("lax-user", home="lax.social")
        fed.create_room("town", ["poster", "strict-user", "lax-user"])
        from repro.groupcomm import KeywordPolicy

        fed.set_instance_policy("strict.social", KeywordPolicy(["politics"]))
        return sim, network, fed

    def test_strict_instance_filters_incoming(self):
        sim, network, fed = self.setup_fed()

        def scenario():
            yield from fed.post("poster", "town", "hot politics take")
            yield from fed.post("poster", "town", "nice weather today")
            yield 5.0
            strict_view = yield from fed.fetch("strict-user", "town")
            lax_view = yield from fed.fetch("lax-user", "town")
            return strict_view, lax_view

        strict_view, lax_view = sim.run_process(scenario())
        assert [m.body for m in strict_view] == ["nice weather today"]
        assert len(lax_view) == 2  # no global censorship

    def test_policy_applies_to_local_posts_at_fetch(self):
        sim, network, fed = self.setup_fed(seed=31)

        def scenario():
            # strict-user posts content their own instance bans.
            yield from fed.post("strict-user", "town", "my politics essay")
            yield 5.0
            own_view = yield from fed.fetch("strict-user", "town")
            lax_view = yield from fed.fetch("lax-user", "town")
            return own_view, lax_view

        own_view, lax_view = sim.run_process(scenario())
        assert own_view == []  # hidden at home...
        assert [m.body for m in lax_view] == ["my politics essay"]  # ...not abroad

    def test_unknown_instance_rejected(self):
        sim, network, fed = self.setup_fed(seed=32)
        from repro.groupcomm import NoModeration

        with pytest.raises(GroupCommError):
            fed.set_instance_policy("ghost.social", NoModeration())


class TestFederationHelpers:
    def test_add_users_bulk_assignment(self):
        from collections import Counter

        sim, streams, network = make_network(55)
        fed = SingleHomeFederation(network, ["s0", "s1"])
        users = [f"u{i}" for i in range(10)]
        fed.add_users(users, seed=3)
        homes = {fed.home_of(u) for u in users}
        assert homes == {"s0", "s1"}
        # Balanced: 5 per server.
        counts = Counter(fed.home_of(u) for u in users)
        assert set(counts.values()) == {5}

    def test_unknown_server_rejected(self):
        sim, streams, network = make_network(56)
        fed = SingleHomeFederation(network, ["s0"])
        with pytest.raises(GroupCommError):
            fed.add_user("u", home="mystery")

    def test_room_membership_check_before_creation(self):
        sim, streams, network = make_network(57)
        fed = SingleHomeFederation(network, ["s0"])
        with pytest.raises(GroupCommError):
            fed.create_room("r", ["homeless-user"])

    def test_servers_for_room(self):
        sim, streams, network = make_network(58)
        fed = SingleHomeFederation(network, ["s0", "s1", "s2"])
        fed.add_user("a", home="s0")
        fed.add_user("b", home="s1")
        fed.create_room("r", ["a", "b"])
        assert fed.servers_for_room("r") == {"s0", "s1"}


class TestRoomSemantics:
    def test_public_room_admits_anyone(self):
        room = Room("plaza", set(), public=True)
        room.require_member("stranger")  # no exception

    def test_private_room_rejects_non_member(self):
        room = Room("private", {"alice"})
        with pytest.raises(GroupCommError):
            room.require_member("stranger")

    def test_membership_management(self):
        room = Room("r", set())
        room.add_member("alice")
        room.require_member("alice")
        room.remove_member("alice")
        with pytest.raises(GroupCommError):
            room.require_member("alice")


class TestFederationBugRegressions:
    """Pin the fan-out-order, tie-break, and re-homing fixes."""

    def test_push_fanout_order_is_sorted_not_hash_order(self):
        # servers_for_room returns a set; fan-out must iterate it in
        # sorted order or delivery order depends on PYTHONHASHSEED.
        sim, streams, network = make_network(70)
        servers = [f"srv{i}" for i in range(7)]
        fed = SingleHomeFederation(network, servers)
        users = [f"u{i}" for i in range(7)]
        for user, server in zip(users, servers):
            fed.add_user(user, home=server)
        fed.create_room("room", users)

        sent_to = []
        original_send = network.send

        def spying_send(src, dst, method, payload):
            if method == "fed.push":
                sent_to.append(dst)
            return original_send(src, dst, method, payload)

        network.send = spying_send
        try:
            sim.run_process(fed.post("u3", "room", "hi"), until=50.0)
        finally:
            network.send = original_send
        expected = sorted(s for s in servers if s != "srv3")
        assert sent_to == expected

    def test_fetch_breaks_same_timestamp_ties_by_msg_id(self):
        # Two messages can share sent_at (e.g. replayed from a trace);
        # both federation flavours must then order by msg_id, so a
        # SingleHome and a Replicated deployment show the same timeline.
        from repro.groupcomm.messages import Message

        sim, streams, network = make_network(71)
        fed = SingleHomeFederation(network, ["s0"])
        fed.add_user("u0", home="s0")
        fed.create_room("r", ["u0"])
        batch = [
            Message(author="u0", room="r", body=f"m{i}", sent_at=5.0, seq=i)
            for i in range(6)
        ]
        # Guard: the injected order must differ from msg_id order, or
        # this test cannot catch an insertion-ordered regression.
        worst_case = sorted(batch, key=lambda m: m.msg_id, reverse=True)
        assert [m.msg_id for m in worst_case] != sorted(m.msg_id for m in batch)
        fed._timelines["s0"]["r"].extend(worst_case)

        messages = sim.run_process(fed.fetch("u0", "r"), until=50.0)
        assert [m.msg_id for m in messages] == sorted(m.msg_id for m in batch)
        assert all(m.sent_at == 5.0 for m in messages)

    def test_add_user_rejects_rehoming(self):
        sim, streams, network = make_network(72)
        fed = SingleHomeFederation(network, ["s0", "s1"])
        fed.add_user("alice", home="s0")
        with pytest.raises(GroupCommError, match="already registered"):
            fed.add_user("alice", home="s1")
        assert fed.home_of("alice") == "s0"

    def test_add_users_rejects_rehoming_atomically(self):
        # Same contract as add_user, and no partial assignment: a
        # duplicate anywhere in the batch leaves the table untouched.
        sim, streams, network = make_network(73)
        fed = SingleHomeFederation(network, ["s0", "s1"])
        fed.add_user("dup", home="s0")
        with pytest.raises(GroupCommError, match="already registered"):
            fed.add_users(["fresh1", "fresh2", "dup", "fresh3"])
        assert fed.home_of("dup") == "s0"
        for user in ("fresh1", "fresh2", "fresh3"):
            with pytest.raises(GroupCommError):
                fed.home_of(user)

    def test_replicated_fetch_all_servers_down_reraises_timeout(self):
        sim, streams, network = make_network(74)
        servers = ["srv0", "srv1", "srv2"]
        fed = ReplicatedFederation(
            network, servers, streams, gossip_interval=2.0,
            allow_failover=True,
        )
        fed.add_user("u0", home="srv0")
        fed.create_room("room", ["u0"])
        for server in servers:
            network.node(server).set_online(False, sim.now)

        def scenario():
            try:
                yield from fed.fetch("u0", "room")
            except RpcTimeoutError as exc:
                return exc
            return None

        # Every target times out; the last timeout must surface rather
        # than a swallowed error or an empty result.
        error = sim.run_process(scenario(), until=1000.0)
        assert isinstance(error, RpcTimeoutError)

    def test_replicated_fetch_recovers_mid_failover_list(self):
        sim, streams, network = make_network(75)
        servers = ["srv0", "srv1", "srv2"]
        fed = ReplicatedFederation(
            network, servers, streams, gossip_interval=2.0,
            allow_failover=True,
        )
        users = [f"u{i}" for i in range(3)]
        for user, server in zip(users, servers):
            fed.add_user(user, home=server)
        fed.create_room("room", users)
        fed.start_replication()

        def scenario():
            yield from fed.post("u0", "room", "survives failover")
            yield 60.0  # replicate everywhere
            # Home and first fallback both dead; srv2 must answer.
            network.node("srv0").set_online(False, sim.now)
            network.node("srv1").set_online(False, sim.now)
            messages = yield from fed.fetch("u0", "room")
            fed.stop_replication()
            return messages

        messages = sim.run_process(scenario(), until=500.0)
        assert [m.body for m in messages] == ["survives failover"]
