"""Reporter output: the JSON schema contract and the human format."""

import json

from repro.lint import lint_source, render_human, render_json
from repro.lint.findings import Finding
from repro.lint.reporters import JSON_SCHEMA_VERSION


def sample_findings():
    return lint_source("import random\n__all__ = ['phantom']\n",
                       path="pkg/mod.py")


class TestJsonReporter:
    def test_schema_shape(self):
        payload = json.loads(render_json(sample_findings()))
        assert payload["schema"] == JSON_SCHEMA_VERSION
        assert payload["count"] == len(payload["findings"]) == 2
        for entry in payload["findings"]:
            assert set(entry) == {"rule", "path", "line", "col", "message"}
            assert isinstance(entry["rule"], str)
            assert isinstance(entry["path"], str)
            assert isinstance(entry["line"], int)
            assert isinstance(entry["col"], int)
            assert isinstance(entry["message"], str)

    def test_empty_findings_still_valid_json(self):
        payload = json.loads(render_json([]))
        assert payload == {
            "schema": JSON_SCHEMA_VERSION, "count": 0, "findings": [],
        }

    def test_round_trips_finding_fields(self):
        finding = Finding("DET001", "a.py", 3, 7, "msg")
        entry = json.loads(render_json([finding]))["findings"][0]
        assert entry == {"rule": "DET001", "path": "a.py", "line": 3,
                         "col": 7, "message": "msg"}


class TestHumanReporter:
    def test_one_line_per_finding_plus_summary(self):
        findings = sample_findings()
        text = render_human(findings)
        lines = text.splitlines()
        assert lines[0].startswith("pkg/mod.py:1:0: DET001 ")
        assert lines[1].startswith("pkg/mod.py:2:0: API001 ")
        assert "2 finding(s)" in lines[-1]
        assert "API001: 1" in lines[-1] and "DET001: 1" in lines[-1]

    def test_clean_renders_empty(self):
        assert render_human([]) == ""
