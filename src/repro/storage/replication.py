"""Replica maintenance under churn: durability, availability, repair.

The §3.3 (and §5.2 "quality vs quantity") machinery: a
:class:`ReplicatedBlobStore` keeps ``replication_factor`` copies of each
blob across a provider pool whose nodes churn.  A periodic repair loop
re-replicates from surviving copies; the experiment measures durability
(was the blob ever unrecoverable?), time-averaged availability, and repair
traffic — the classic trade studied by TotalRecall/Glacier/Carbonite,
which the paper cites as the P2P-era literature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set

from repro.errors import NetworkError, StorageError
from repro.net.transport import Network
from repro.sim.monitor import Monitor
from repro.sim.rng import RngStreams
from repro.storage.blob import DataBlob
from repro.storage.proofs import Commitment
from repro.storage.provider import StorageProvider

__all__ = ["ReplicatedBlobStore", "BlobHealth"]


@dataclass
class BlobHealth:
    """Tracked state for one replicated blob."""

    commitment: Commitment
    holders: Set[str] = field(default_factory=set)
    lost: bool = False
    lost_at: Optional[float] = None
    repairs: int = 0


class ReplicatedBlobStore:
    """Maintains N-way replication across a churning provider pool."""

    def __init__(
        self,
        network: Network,
        providers: List[StorageProvider],
        streams: RngStreams,
        replication_factor: int = 3,
        check_interval: float = 60.0,
        client_id: str = "replication-manager",
    ):
        if replication_factor < 1:
            raise StorageError(
                f"replication factor must be >= 1: {replication_factor}"
            )
        if len(providers) < replication_factor:
            raise StorageError(
                f"pool of {len(providers)} cannot hold {replication_factor} replicas"
            )
        self.network = network
        self.providers = {p.node_id: p for p in providers}
        self.replication_factor = replication_factor
        self.check_interval = check_interval
        self.client_id = client_id
        if not network.has_node(client_id):
            network.create_node(client_id)
        self.monitor = Monitor()
        self._blobs: Dict[str, DataBlob] = {}  # only for initial upload
        self._health: Dict[str, BlobHealth] = {}
        self._running = False
        self._rng = streams.stream("storage.replication")

    # -- placement ------------------------------------------------------------

    def _online_pool(self) -> List[StorageProvider]:
        return [p for p in self.providers.values() if p.node.online]

    def store(self, blob: DataBlob) -> Generator:
        """Place the blob on ``replication_factor`` online providers."""
        online = self._online_pool()
        if len(online) < self.replication_factor:
            raise StorageError(
                f"only {len(online)} providers online, need"
                f" {self.replication_factor}"
            )
        chosen = self._rng.sample(
            sorted(online, key=lambda p: p.node_id), self.replication_factor
        )
        health = BlobHealth(
            commitment=Commitment(blob.merkle_root, len(blob.chunks))
        )
        for provider in chosen:
            yield from self._upload(self.client_id, provider.node_id, blob)
            health.holders.add(provider.node_id)
        self._health[blob.merkle_root] = health
        self._blobs[blob.merkle_root] = blob
        return health

    def _upload(self, src: str, provider_id: str, blob: DataBlob) -> Generator:
        entries = [
            (index, chunk, blob.proof_for(index))
            for index, chunk in enumerate(blob.chunks)
        ]
        yield from self.network.rpc(
            src,
            provider_id,
            "store.put",
            {
                "commitment_id": blob.merkle_root,
                "chunk_count": len(blob.chunks),
                "entries": entries,
            },
            size_bytes=blob.size_bytes,
            timeout=600.0,
        )
        self.monitor.counters.increment("bytes_uploaded", blob.size_bytes)

    # -- repair loop --------------------------------------------------------------

    def start_repair(self) -> None:
        if self._running:
            return
        self._running = True
        self.network.sim.spawn(self._repair_loop(), name="blob-repair")

    def stop_repair(self) -> None:
        self._running = False

    def _repair_loop(self) -> Generator:
        while self._running:
            yield self.check_interval
            if not self._running:
                return
            for root, health in self._health.items():
                if health.lost:
                    continue
                yield from self._repair_one(root, health)

    def _repair_one(self, root: str, health: BlobHealth) -> Generator:
        online_holders = [
            h for h in health.holders if self.providers[h].node.online
        ]
        self.monitor.gauge(f"online_replicas.{root[:8]}").set(
            self.network.sim.now, len(online_holders)
        )
        # Permanent-loss check: a holder whose churn process departed for
        # good no longer counts at all.
        if not online_holders:
            # Can any offline holder come back?  We can't know here; loss
            # is declared only when data is needed and nobody ever returns.
            return
        deficit = self.replication_factor - len(online_holders)
        if deficit <= 0:
            return
        source_id = online_holders[0]
        blob = self._blobs[root]
        candidates = [
            p for p in self._online_pool() if p.node_id not in health.holders
        ]
        for provider in self._rng.sample(
            sorted(candidates, key=lambda p: p.node_id),
            min(deficit, len(candidates)),
        ):
            try:
                yield from self._upload(source_id, provider.node_id, blob)
            except (NetworkError, StorageError):
                continue  # source or target churned mid-transfer
            health.holders.add(provider.node_id)
            health.repairs += 1
            self.monitor.counters.increment("repairs")
            self.monitor.counters.increment("repair_bytes", blob.size_bytes)

    # -- access -------------------------------------------------------------------

    def retrieve(self, root: str, reader: Optional[str] = None) -> Generator:
        """Fetch the blob from any online holder; marks loss if none can
        serve and no holder remains online."""
        health = self._health.get(root)
        if health is None:
            raise StorageError(f"unknown blob {root[:12]}")
        reader_id = reader or self.client_id
        online_holders = [
            h for h in health.holders if self.providers[h].node.online
        ]
        for holder in online_holders:
            try:
                chunks = []
                provider = self.providers[holder]
                stored = provider.commitments.get(root)
                if stored is None or len(stored.payloads) < health.commitment.chunk_count:
                    continue
                for index in range(health.commitment.chunk_count):
                    chunk, proof = yield from self.network.rpc(
                        reader_id, holder, "store.get",
                        {"commitment_id": root, "index": index},
                        timeout=60.0,
                    )
                    if not health.commitment.verify_answer(index, chunk, proof):
                        raise StorageError("verification failed")
                    chunks.append(chunk)
                self.monitor.counters.increment("retrievals_ok")
                return b"".join(chunks)
            except (NetworkError, StorageError):
                continue  # holder churned or served a bad proof: try next
        self.monitor.counters.increment("retrievals_failed")
        raise StorageError(f"no online holder could serve blob {root[:12]}")

    # -- measurement ------------------------------------------------------------------

    def health(self, root: str) -> BlobHealth:
        health = self._health.get(root)
        if health is None:
            raise StorageError(f"unknown blob {root[:12]}")
        return health

    def online_replicas(self, root: str) -> int:
        health = self.health(root)
        return sum(
            1 for h in health.holders if self.providers[h].node.online
        )

    def repair_bytes(self) -> int:
        return self.monitor.counters.get("repair_bytes")
