"""The ledger state machine: balances, names, and contracts.

State is immutable-by-convention: :meth:`LedgerState.copy` makes a
shallow-copied snapshot whose entry objects are never mutated in place, so
chain reorganizations just re-apply blocks onto an older snapshot.

Name semantics follow Namecoin/Blockstack (§3.1 of the paper): first-come
first-served registration, owner-only updates/transfers, and expiry after
``name_lifetime_blocks`` so squatted names eventually return to the pool
(the "endless ledger" mitigation the paper mentions).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from repro.chain.transaction import COINBASE_SENDER, Transaction, TxKind
from repro.errors import InvalidTransactionError

__all__ = ["LedgerState", "LedgerRules", "NameEntry", "ContractEntry", "apply_transaction"]


@dataclass(frozen=True)
class NameEntry:
    """One registered name: who owns it, what it points to, when it dies."""

    name: str
    owner: str
    value: Any
    registered_height: int
    updated_height: int
    expires_height: int


@dataclass(frozen=True)
class ContractEntry:
    """An open storage contract with escrowed funds.

    ``terms`` is opaque to the chain (interpreted by the storage layer);
    the ledger only enforces escrow conservation.
    """

    contract_id: str
    consumer: str
    provider: str
    escrow: float
    terms: Dict[str, Any]
    opened_height: int
    closed: bool = False


@dataclass(frozen=True)
class LedgerRules:
    """Economic constants of the simulated chain."""

    block_reward: float = 50.0
    name_register_cost: float = 1.0
    name_lifetime_blocks: int = 10_000
    max_name_length: int = 64
    max_value_bytes: int = 512  # the paper: blockchains limit stored data


class LedgerState:
    """Account balances, the name map, contracts, and replay nonces."""

    def __init__(
        self,
        balances: Optional[Dict[str, float]] = None,
        names: Optional[Dict[str, NameEntry]] = None,
        contracts: Optional[Dict[str, ContractEntry]] = None,
        nonces: Optional[Dict[str, int]] = None,
        burned: float = 0.0,
    ):
        self.balances: Dict[str, float] = balances if balances is not None else {}
        self.names: Dict[str, NameEntry] = names if names is not None else {}
        self.contracts: Dict[str, ContractEntry] = (
            contracts if contracts is not None else {}
        )
        self.nonces: Dict[str, int] = nonces if nonces is not None else {}
        self.burned = burned  # name fees are burned, not paid to anyone

    def copy(self) -> "LedgerState":
        return LedgerState(
            balances=dict(self.balances),
            names=dict(self.names),
            contracts=dict(self.contracts),
            nonces=dict(self.nonces),
            burned=self.burned,
        )

    # -- queries -----------------------------------------------------------

    def balance(self, account: str) -> float:
        return self.balances.get(account, 0.0)

    def next_nonce(self, account: str) -> int:
        """The nonce the account's next transaction must carry."""
        return self.nonces.get(account, 0)

    def live_name(self, name: str, height: int) -> Optional[NameEntry]:
        """The entry for ``name`` if registered and unexpired at ``height``."""
        entry = self.names.get(name)
        if entry is None or entry.expires_height <= height:
            return None
        return entry

    def total_supply(self) -> float:
        """Sum of all balances plus open escrow (conservation check)."""
        escrow = sum(
            c.escrow for c in self.contracts.values() if not c.closed
        )
        return sum(self.balances.values()) + escrow

    # -- mutation helpers (used only by apply) -------------------------------

    def _credit(self, account: str, amount: float) -> None:
        self.balances[account] = self.balances.get(account, 0.0) + amount

    def _debit(self, account: str, amount: float) -> None:
        balance = self.balances.get(account, 0.0)
        if balance < amount - 1e-9:
            raise InvalidTransactionError(
                f"account {account[:12]} has {balance}, needs {amount}"
            )
        self.balances[account] = balance - amount


def apply_transaction(
    state: LedgerState,
    tx: Transaction,
    height: int,
    rules: LedgerRules,
    fees_to: Optional[str] = None,
) -> None:
    """Apply one validated transaction to ``state`` in place.

    Raises :class:`InvalidTransactionError` on any rule violation; callers
    apply to a scratch copy so failures leave no partial effects.
    ``fees_to`` is the miner account collecting the fee (None burns it).
    """
    tx.validate_shape()

    if tx.is_coinbase:
        _apply_coinbase(state, tx, rules)
        return

    expected = state.next_nonce(tx.sender)
    if tx.nonce != expected:
        raise InvalidTransactionError(
            f"tx nonce {tx.nonce} != expected {expected} for {tx.sender[:12]}"
        )

    state._debit(tx.sender, tx.fee)
    if fees_to is not None:
        state._credit(fees_to, tx.fee)
    else:
        state.burned += tx.fee

    handler = _HANDLERS.get(tx.kind)
    if handler is None:
        raise InvalidTransactionError(f"no handler for kind {tx.kind!r}")
    handler(state, tx, height, rules)
    state.nonces[tx.sender] = expected + 1


def _apply_coinbase(state: LedgerState, tx: Transaction, rules: LedgerRules) -> None:
    reward = tx.payload.get("reward")
    recipient = tx.payload.get("to")
    if not isinstance(reward, (int, float)) or reward < 0:
        raise InvalidTransactionError(f"bad coinbase reward {reward!r}")
    if reward > rules.block_reward + 1e-9:
        raise InvalidTransactionError(
            f"coinbase reward {reward} exceeds subsidy {rules.block_reward}"
        )
    if not recipient:
        raise InvalidTransactionError("coinbase missing recipient")
    state._credit(recipient, float(reward))


def _apply_pay(state, tx, height, rules) -> None:
    to = tx.payload.get("to")
    amount = tx.payload.get("amount")
    if not to or not isinstance(amount, (int, float)) or amount <= 0:
        raise InvalidTransactionError(f"bad pay payload {tx.payload!r}")
    state._debit(tx.sender, float(amount))
    state._credit(to, float(amount))


def _name_from_payload(tx: Transaction, rules: LedgerRules) -> str:
    name = tx.payload.get("name")
    if not name or not isinstance(name, str):
        raise InvalidTransactionError(f"bad name in payload {tx.payload!r}")
    if len(name) > rules.max_name_length:
        raise InvalidTransactionError(
            f"name too long ({len(name)} > {rules.max_name_length})"
        )
    return name


def _check_value_size(value: Any, rules: LedgerRules) -> None:
    from repro.crypto.hashing import _canonical  # canonical size, not repr size

    size = len(_canonical(value))
    if size > rules.max_value_bytes:
        raise InvalidTransactionError(
            f"name value too large ({size} > {rules.max_value_bytes} bytes);"
            " blockchains limit on-chain data (store a hash instead)"
        )


def _apply_name_register(state, tx, height, rules) -> None:
    name = _name_from_payload(tx, rules)
    if state.live_name(name, height) is not None:
        raise InvalidTransactionError(f"name {name!r} is already registered")
    value = tx.payload.get("value")
    _check_value_size(value, rules)
    state._debit(tx.sender, rules.name_register_cost)
    state.burned += rules.name_register_cost
    state.names[name] = NameEntry(
        name=name,
        owner=tx.sender,
        value=value,
        registered_height=height,
        updated_height=height,
        expires_height=height + rules.name_lifetime_blocks,
    )


def _require_owned(state, tx, height, rules) -> NameEntry:
    name = _name_from_payload(tx, rules)
    entry = state.live_name(name, height)
    if entry is None:
        raise InvalidTransactionError(f"name {name!r} not registered/expired")
    if entry.owner != tx.sender:
        raise InvalidTransactionError(
            f"{tx.sender[:12]} does not own name {name!r}"
        )
    return entry


def _apply_name_update(state, tx, height, rules) -> None:
    entry = _require_owned(state, tx, height, rules)
    value = tx.payload.get("value")
    _check_value_size(value, rules)
    state.names[entry.name] = replace(entry, value=value, updated_height=height)


def _apply_name_transfer(state, tx, height, rules) -> None:
    entry = _require_owned(state, tx, height, rules)
    to = tx.payload.get("to")
    if not to:
        raise InvalidTransactionError("name transfer missing recipient")
    state.names[entry.name] = replace(entry, owner=to, updated_height=height)


def _apply_name_renew(state, tx, height, rules) -> None:
    entry = _require_owned(state, tx, height, rules)
    state._debit(tx.sender, rules.name_register_cost)
    state.burned += rules.name_register_cost
    state.names[entry.name] = replace(
        entry,
        expires_height=height + rules.name_lifetime_blocks,
        updated_height=height,
    )


def _apply_contract_open(state, tx, height, rules) -> None:
    contract_id = tx.payload.get("contract_id")
    provider = tx.payload.get("provider")
    escrow = tx.payload.get("escrow")
    terms = tx.payload.get("terms", {})
    if not contract_id or not provider:
        raise InvalidTransactionError(f"bad contract payload {tx.payload!r}")
    if not isinstance(escrow, (int, float)) or escrow <= 0:
        raise InvalidTransactionError(f"contract escrow must be positive: {escrow!r}")
    existing = state.contracts.get(contract_id)
    if existing is not None and not existing.closed:
        raise InvalidTransactionError(f"contract {contract_id!r} already open")
    state._debit(tx.sender, float(escrow))
    state.contracts[contract_id] = ContractEntry(
        contract_id=contract_id,
        consumer=tx.sender,
        provider=provider,
        escrow=float(escrow),
        terms=dict(terms),
        opened_height=height,
    )


def _apply_contract_close(state, tx, height, rules) -> None:
    contract_id = tx.payload.get("contract_id")
    provider_share = tx.payload.get("provider_share")
    contract = state.contracts.get(contract_id or "")
    if contract is None or contract.closed:
        raise InvalidTransactionError(f"no open contract {contract_id!r}")
    if tx.sender not in (contract.consumer, contract.provider):
        raise InvalidTransactionError(
            "only a contract party may close the contract"
        )
    if (
        not isinstance(provider_share, (int, float))
        or not 0 <= provider_share <= 1
    ):
        raise InvalidTransactionError(
            f"provider_share must be in [0,1]: {provider_share!r}"
        )
    # The party closing unilaterally may only favour the *other* party with
    # the flexible share; favouring yourself needs the counterparty's signed
    # consent, which the storage layer arranges off-chain.  We enforce the
    # cheap on-chain half: the consumer may grant any share to the provider,
    # the provider may only refund (share 0 for itself means... ) —
    # simplification: the consumer sets the split; the provider may close
    # only with the full escrow refunded to the consumer (abandon).
    if tx.sender == contract.provider and provider_share > 0:
        raise InvalidTransactionError(
            "provider may only close a contract by refunding the consumer"
        )
    payout = contract.escrow * float(provider_share)
    state._credit(contract.provider, payout)
    state._credit(contract.consumer, contract.escrow - payout)
    state.contracts[contract_id] = replace(contract, closed=True, escrow=0.0)


def _apply_data_anchor(state, tx, height, rules) -> None:
    digest = tx.payload.get("digest")
    if not digest or not isinstance(digest, str):
        raise InvalidTransactionError("data anchor requires a digest string")
    # Anchors are pure commitments; nothing in state changes beyond the fee.


_HANDLERS = {
    TxKind.PAY: _apply_pay,
    TxKind.NAME_REGISTER: _apply_name_register,
    TxKind.NAME_UPDATE: _apply_name_update,
    TxKind.NAME_TRANSFER: _apply_name_transfer,
    TxKind.NAME_RENEW: _apply_name_renew,
    TxKind.CONTRACT_OPEN: _apply_contract_open,
    TxKind.CONTRACT_CLOSE: _apply_contract_close,
    TxKind.DATA_ANCHOR: _apply_data_anchor,
}
