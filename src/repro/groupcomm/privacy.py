"""Privacy accounting: who can see what, per communication model (§3.2).

The paper's privacy claims are comparative: centralized operators see
content and metadata; Matrix servers see metadata (and content unless E2E
encrypted); socially-aware P2P exposes nothing to any operator.  This
module turns those into an auditable :class:`ExposureReport` computed from
the *actual* state of a simulated system, not from assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import GroupCommError

__all__ = ["ExposureReport", "audit_centralized", "audit_replicated_federation",
           "audit_social_p2p", "exposure_score"]


@dataclass(frozen=True)
class ExposureReport:
    """Counts of messages whose content/metadata a non-participant
    (operator or foreign server) can observe."""

    system: str
    total_messages: int
    content_visible_to_operators: int
    metadata_visible_to_operators: int
    operator_count: int

    @property
    def content_exposure(self) -> float:
        if self.total_messages == 0:
            return 0.0
        return self.content_visible_to_operators / self.total_messages

    @property
    def metadata_exposure(self) -> float:
        if self.total_messages == 0:
            return 0.0
        return self.metadata_visible_to_operators / self.total_messages


def exposure_score(report: ExposureReport) -> float:
    """A single [0,1] privacy-loss score: content counts double metadata
    (reading what you said is worse than knowing that you spoke)."""
    return min(
        1.0, (2 * report.content_exposure + report.metadata_exposure) / 3
    )


def audit_centralized(platform, room_id: str) -> ExposureReport:
    """The operator of a centralized platform sees everything."""
    view = platform.surveil(room_id)
    return ExposureReport(
        system=platform.kind,
        total_messages=len(view),
        content_visible_to_operators=len(view),
        metadata_visible_to_operators=len(view),
        operator_count=1,
    )


def audit_replicated_federation(federation, room_id: str) -> ExposureReport:
    """Every federation server holding a replica is an observing operator:
    metadata always; content only for unencrypted messages."""
    content_seen = set()
    metadata_seen = set()
    operators = 0
    for server_id in federation.server_ids:
        view = federation.server_metadata_view(server_id)
        if view:
            operators += 1
        for entry in view:
            identity = (entry["author"], entry["room"], entry["sent_at"])
            metadata_seen.add(identity)
            if "body" in entry:
                content_seen.add(identity)
    return ExposureReport(
        system=federation.kind,
        total_messages=len(metadata_seen),
        content_visible_to_operators=len(content_seen),
        metadata_visible_to_operators=len(metadata_seen),
        operator_count=operators,
    )


def audit_social_p2p(p2p, authors: List[str]) -> ExposureReport:
    """No operator exists; holders are all social participants, so
    operator exposure is structurally zero."""
    total = 0
    for author in authors:
        held = p2p._held[author].get(author, [])
        total += len(held)
    return ExposureReport(
        system=p2p.kind,
        total_messages=total,
        content_visible_to_operators=0,
        metadata_visible_to_operators=0,
        operator_count=0,
    )
