"""A double-ratchet-style session model (§3.2: Matrix's E2E encryption).

This models the *property structure* of the Double Ratchet [37] — per-
message keys derived by hashing a chain key forward — rather than the
cipher math:

* every message uses a fresh key (``K_i``), derived
  ``K_i = H(chain_i); chain_{i+1} = H'(chain_i)``;
* **forward secrecy**: compromising the current chain key reveals nothing
  about *earlier* message keys (hashing is one-way);
* compromise does expose *later* messages until the session re-keys
  (:meth:`rekey` models the DH ratchet step).

Ciphertexts are structural: ``(key_id, sealed-body)`` where sealing binds
the body hash to the message key, so decryption genuinely fails without
the right key — experiments can't cheat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.crypto.hashing import hash_obj, sha256_hex
from repro.errors import CryptoError, GroupCommError

__all__ = ["Ciphertext", "RatchetSession", "SessionCompromise"]


@dataclass(frozen=True)
class Ciphertext:
    """An encrypted message body."""

    key_id: str
    sealed: str
    index: int
    epoch: int


def _derive_message_key(chain_key: str) -> str:
    return sha256_hex(f"msg-key:{chain_key}".encode("utf-8"))


def _advance_chain(chain_key: str) -> str:
    return sha256_hex(f"chain:{chain_key}".encode("utf-8"))


def _seal(message_key: str, body: Any) -> str:
    return sha256_hex(f"seal:{message_key}:{hash_obj(body)}".encode("utf-8"))


class RatchetSession:
    """One end of a pairwise/group session.

    Both ends construct the session from the same shared secret (the
    simulation stand-in for the X3DH handshake) and stay in sync by
    message index.  ``encrypt`` returns a :class:`Ciphertext`; ``decrypt``
    recomputes the key for the ciphertext's (epoch, index) and verifies
    the seal — a wrong or missing key raises.
    """

    def __init__(self, shared_secret: str):
        if not shared_secret:
            raise CryptoError("session requires a shared secret")
        self._epoch = 0
        self._root = sha256_hex(f"root:{shared_secret}".encode("utf-8"))
        self._send_index = 0
        # Plaintext cache keyed by seal — the simulation's stand-in for
        # actually inverting the cipher (only holders of the key can
        # recompute the seal and thus look the body up).
        self._bodies: Dict[str, Any] = {}

    # -- key schedule -------------------------------------------------------

    def _chain_key_at(self, epoch: int, index: int) -> str:
        chain = sha256_hex(f"epoch:{self._root}:{epoch}".encode("utf-8"))
        for _ in range(index):
            chain = _advance_chain(chain)
        return chain

    def rekey(self) -> int:
        """The DH-ratchet step: start a new epoch with fresh chain keys.

        Returns the new epoch number.  After a compromise, messages sent
        in later epochs are safe again (post-compromise security).
        """
        self._epoch += 1
        self._send_index = 0
        return self._epoch

    # -- encrypt / decrypt ------------------------------------------------------

    def encrypt(self, body: Any) -> Ciphertext:
        chain = self._chain_key_at(self._epoch, self._send_index)
        message_key = _derive_message_key(chain)
        sealed = _seal(message_key, body)
        self._bodies[sealed] = body
        ciphertext = Ciphertext(
            key_id=sha256_hex(message_key.encode("utf-8"))[:16],
            sealed=sealed,
            index=self._send_index,
            epoch=self._epoch,
        )
        self._send_index += 1
        return ciphertext

    def decrypt(self, ciphertext: Ciphertext, peer: "RatchetSession") -> Any:
        """Decrypt with this session's keys a ciphertext produced by
        ``peer`` (who holds the plaintext cache)."""
        chain = self._chain_key_at(ciphertext.epoch, ciphertext.index)
        message_key = _derive_message_key(chain)
        expected_id = sha256_hex(message_key.encode("utf-8"))[:16]
        if expected_id != ciphertext.key_id:
            raise CryptoError("wrong session keys for this ciphertext")
        body = peer._bodies.get(ciphertext.sealed)
        if body is None:
            raise CryptoError("ciphertext unknown to the sending session")
        if _seal(message_key, body) != ciphertext.sealed:
            raise CryptoError("seal mismatch: key does not open this message")
        return body

    def compromise(self) -> "SessionCompromise":
        """Leak the *current* state (root + epoch + next index) to an
        attacker — models device seizure at a point in time."""
        return SessionCompromise(
            root=self._root,
            epoch=self._epoch,
            from_index=self._send_index,
        )


@dataclass(frozen=True)
class SessionCompromise:
    """Attacker knowledge from a point-in-time state leak.

    Can derive keys for messages at (epoch, index >= from_index) in the
    leaked epoch — but not earlier ones (forward secrecy) and not later
    epochs after a rekey (post-compromise security)... unless the leak is
    of the root, in which case all epochs derive.  The Double Ratchet's
    root-key evolution is modeled by :meth:`RatchetSession.rekey`
    *re-deriving from the epoch counter*: we therefore mark later epochs
    recoverable only when no rekey happened after the leak.
    """

    root: str
    epoch: int
    from_index: int

    def can_read(self, ciphertext: Ciphertext, victim_rekeyed: bool = False) -> bool:
        if ciphertext.epoch < self.epoch:
            return False  # forward secrecy: past epochs are gone
        if ciphertext.epoch == self.epoch:
            return ciphertext.index >= self.from_index
        return not victim_rekeyed  # future epochs only if no fresh DH

    def read(self, ciphertext: Ciphertext, sender: "RatchetSession",
             victim_rekeyed: bool = False) -> Any:
        if not self.can_read(ciphertext, victim_rekeyed):
            raise CryptoError("compromised state cannot derive this key")
        chain = sha256_hex(f"epoch:{self.root}:{ciphertext.epoch}".encode("utf-8"))
        for _ in range(ciphertext.index):
            chain = _advance_chain(chain)
        message_key = _derive_message_key(chain)
        body = sender._bodies.get(ciphertext.sealed)
        if body is None or _seal(message_key, body) != ciphertext.sealed:
            raise CryptoError("derived key does not open the ciphertext")
        return body
