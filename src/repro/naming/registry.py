"""The common registry interface and result types.

Every naming backend (blockchain, centralized PKI, Web of Trust) exposes
the same three generator operations — register, resolve, update — so the
E6 experiments can swap backends and compare latency, throughput, and
failure behaviour on identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.crypto.keys import KeyPair
from repro.errors import NamingError

__all__ = ["RegistrationReceipt", "Resolution", "NameRegistry"]


@dataclass(frozen=True)
class RegistrationReceipt:
    """Proof-of-registration metadata, uniform across backends.

    ``latency`` is simulated seconds from request to durable registration
    (for blockchains: the confirmation depth requested; for servers: the
    RPC round trip).
    """

    name: str
    owner_public_key: str
    latency: float
    finalized_at: float
    detail: str = ""


@dataclass(frozen=True)
class Resolution:
    """A resolved name with provenance."""

    name: str
    value: Any
    owner_public_key: str
    latency: float
    authoritative: bool  # False for cached / gossip answers


class NameRegistry:
    """Abstract base: the three operations every backend implements.

    All operations are generators to be driven by the simulator
    (``yield from registry.register(...)`` inside a process).
    """

    kind: str = "abstract"

    def register(
        self, keypair: KeyPair, name: str, value: Any
    ) -> Generator:
        """Claim ``name`` for ``keypair``; returns a
        :class:`RegistrationReceipt` or raises
        :class:`~repro.errors.NameTakenError` /
        :class:`~repro.errors.NamingError`."""
        raise NotImplementedError

    def resolve(self, name: str, client: str = "") -> Generator:
        """Look up a name; returns a :class:`Resolution` or raises
        :class:`~repro.errors.NameNotFoundError`."""
        raise NotImplementedError

    def update(self, keypair: KeyPair, name: str, value: Any) -> Generator:
        """Change a name's value; owner-only."""
        raise NotImplementedError

    # Shared guard used by implementations.
    @staticmethod
    def _require_name(name: str) -> str:
        from repro.naming.records import validate_name

        return validate_name(name)
