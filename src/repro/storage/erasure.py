"""Systematic Reed-Solomon erasure coding over GF(256).

A real, decodable implementation (not availability bookkeeping): data is
split into ``k`` shards, ``m`` parity shards are computed from a
Vandermonde generator matrix, and *any* ``k`` of the ``n = k + m`` shards
reconstruct the original via Gaussian elimination in GF(256).

Used by the storage placement layer: replication stores ``r`` full copies
(storage factor r), erasure coding stores ``n/k`` x the data for the same
failure tolerance — the durability-vs-overhead trade the distributed
storage literature cited in §3.3 revolves around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import StorageError

__all__ = ["Shard", "ErasureCode", "gf_mul", "gf_inv"]

# -- GF(256) arithmetic --------------------------------------------------------
# Polynomial 0x11d (x^8+x^4+x^3+x^2+1), the standard Reed-Solomon choice:
# alpha = 2 is primitive there (it is NOT under AES's 0x11b, where 2 has
# multiplicative order 51 and Vandermonde rows degenerate).

_EXP = [0] * 512
_LOG = [0] * 256


def _init_tables() -> None:
    x = 1
    for i in range(255):
        _EXP[i] = x
        _LOG[x] = i
        x <<= 1
        if x & 0x100:
            x ^= 0x11D
    for i in range(255, 512):
        _EXP[i] = _EXP[i - 255]


_init_tables()


def gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_inv(a: int) -> int:
    if a == 0:
        raise StorageError("zero has no inverse in GF(256)")
    return _EXP[255 - _LOG[a]]


@dataclass(frozen=True)
class Shard:
    """One erasure-coded fragment: its index and payload bytes."""

    index: int
    payload: bytes


class ErasureCode:
    """A systematic (k, m) Reed-Solomon code.

    Shards 0..k-1 are the data shards (plain slices); shards k..k+m-1 are
    parity.  ``storage_overhead`` is (k+m)/k.
    """

    def __init__(self, k: int, m: int):
        if k < 1 or m < 0:
            raise StorageError(f"invalid code parameters k={k}, m={m}")
        if k + m > 255:
            raise StorageError(f"k+m must be <= 255 for GF(256): {k + m}")
        self.k = k
        self.m = m

    @property
    def n(self) -> int:
        return self.k + self.m

    @property
    def storage_overhead(self) -> float:
        return self.n / self.k

    # -- encoding ------------------------------------------------------------

    def _parity_row(self, parity_index: int) -> List[int]:
        """Row of the Vandermonde generator for one parity shard:
        coefficients alpha^(p*j) with alpha = generator 2."""
        p = parity_index + 1  # 1-based so row 0 isn't all-ones^0 degenerate
        return [_EXP[(p * j) % 255] for j in range(self.k)]

    def encode(self, data: bytes) -> List[Shard]:
        """Split ``data`` into k shards and add m parity shards.

        Data is padded to a multiple of k; the original length rides in a
        4-byte header so decode can strip the padding exactly.
        """
        if not data:
            raise StorageError("cannot encode empty data")
        framed = len(data).to_bytes(4, "big") + data
        shard_len = -(-len(framed) // self.k)
        padded = framed.ljust(shard_len * self.k, b"\x00")
        data_shards = [
            padded[i * shard_len:(i + 1) * shard_len] for i in range(self.k)
        ]
        shards = [Shard(i, data_shards[i]) for i in range(self.k)]
        for p in range(self.m):
            row = self._parity_row(p)
            payload = bytearray(shard_len)
            for j, shard in enumerate(data_shards):
                coefficient = row[j]
                if coefficient == 0:
                    continue
                log_c = _LOG[coefficient]
                for byte_index, byte in enumerate(shard):
                    if byte:
                        payload[byte_index] ^= _EXP[log_c + _LOG[byte]]
            shards.append(Shard(self.k + p, bytes(payload)))
        return shards

    # -- decoding --------------------------------------------------------------

    def decode(self, shards: Sequence[Shard]) -> bytes:
        """Reconstruct the original data from any k distinct shards."""
        unique: Dict[int, Shard] = {}
        for shard in shards:
            if not 0 <= shard.index < self.n:
                raise StorageError(f"shard index {shard.index} out of range")
            unique.setdefault(shard.index, shard)
        if len(unique) < self.k:
            raise StorageError(
                f"need {self.k} shards to decode, have {len(unique)}"
            )
        chosen = [unique[i] for i in sorted(unique)][: self.k]
        shard_len = len(chosen[0].payload)
        if any(len(s.payload) != shard_len for s in chosen):
            raise StorageError("inconsistent shard lengths")

        # Build the k x k system: row per chosen shard expressing it as a
        # combination of the k data shards.
        matrix: List[List[int]] = []
        values: List[bytes] = []
        for shard in chosen:
            if shard.index < self.k:
                row = [0] * self.k
                row[shard.index] = 1
            else:
                row = self._parity_row(shard.index - self.k)
            matrix.append(row)
            values.append(shard.payload)

        data_shards = self._solve(matrix, values, shard_len)
        framed = b"".join(data_shards)
        original_len = int.from_bytes(framed[:4], "big")
        if original_len > len(framed) - 4:
            raise StorageError("corrupt shards: bad length header")
        return framed[4:4 + original_len]

    def _solve(
        self, matrix: List[List[int]], values: List[bytes], shard_len: int
    ) -> List[bytes]:
        """Gaussian elimination in GF(256), vectorized over byte positions."""
        k = self.k
        m = [row[:] for row in matrix]
        v = [bytearray(value) for value in values]
        for col in range(k):
            pivot = next(
                (r for r in range(col, k) if m[r][col] != 0), None
            )
            if pivot is None:
                raise StorageError("singular shard combination (duplicate?)")
            m[col], m[pivot] = m[pivot], m[col]
            v[col], v[pivot] = v[pivot], v[col]
            inv = gf_inv(m[col][col])
            if inv != 1:
                log_inv = _LOG[inv]
                m[col] = [
                    _EXP[log_inv + _LOG[x]] if x else 0 for x in m[col]
                ]
                v[col] = bytearray(
                    _EXP[log_inv + _LOG[b]] if b else 0 for b in v[col]
                )
            for r in range(k):
                if r == col or m[r][col] == 0:
                    continue
                factor = m[r][col]
                log_f = _LOG[factor]
                m[r] = [
                    x ^ (_EXP[log_f + _LOG[y]] if y else 0)
                    for x, y in zip(m[r], m[col])
                ]
                pivot_row = v[col]
                row = v[r]
                for i in range(shard_len):
                    y = pivot_row[i]
                    if y:
                        row[i] ^= _EXP[log_f + _LOG[y]]
        return [bytes(v[i]) for i in range(k)]

    def min_shards_for_recovery(self) -> int:
        return self.k
