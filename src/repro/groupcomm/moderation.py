"""Abuse and moderation models (§3.2's 'Abuse Prevention' property).

The paper: centralized platforms moderate unilaterally (in tension with
expression); Matrix applications define their own policies; Mastodon-style
federations set per-instance rules; pure P2P leaves filtering to
recipients.  These are modeled as policy objects a delivery pipeline
consults, so the abuse experiments can measure spam-delivery fractions and
collateral censorship on identical traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.errors import GroupCommError
from repro.groupcomm.messages import Message

__all__ = [
    "ModerationPolicy",
    "NoModeration",
    "KeywordPolicy",
    "ReputationPolicy",
    "PerInstancePolicy",
    "ModerationOutcome",
    "evaluate_policies",
]


@dataclass(frozen=True)
class ModerationOutcome:
    """Result of running traffic through a policy."""

    policy: str
    total: int
    delivered: int
    spam_delivered: int
    legitimate_blocked: int

    @property
    def spam_pass_rate(self) -> float:
        spam_total = self.total - self.legitimate_total
        return self.spam_delivered / spam_total if spam_total else 0.0

    @property
    def legitimate_total(self) -> int:
        return self.delivered - self.spam_delivered + self.legitimate_blocked

    @property
    def collateral_rate(self) -> float:
        """Fraction of legitimate traffic wrongly blocked — the
        moderation-vs-expression tension, quantified."""
        return (
            self.legitimate_blocked / self.legitimate_total
            if self.legitimate_total
            else 0.0
        )


class ModerationPolicy:
    """Base: decides whether a message is delivered."""

    name = "abstract"

    def allows(self, message: Message) -> bool:
        raise NotImplementedError

    def observe_report(self, message: Message) -> None:
        """A user reported this message (reputation systems learn)."""


class NoModeration(ModerationPolicy):
    """Pure P2P default: everything is delivered."""

    name = "none"

    def allows(self, message: Message) -> bool:
        return True


class KeywordPolicy(ModerationPolicy):
    """Block messages containing any banned token (crude but common)."""

    name = "keyword"

    def __init__(self, banned: Iterable[str]):
        self.banned = {w.lower() for w in banned}
        if not self.banned:
            raise GroupCommError("keyword policy needs at least one keyword")

    def allows(self, message: Message) -> bool:
        body = str(message.body).lower()
        return not any(word in body for word in self.banned)


class ReputationPolicy(ModerationPolicy):
    """Ban authors after enough user reports (report-driven moderation).

    Spam already delivered before the threshold trips still counts against
    the platform — reactive moderation has a detection lag by construction.
    """

    name = "reputation"

    def __init__(self, report_threshold: int = 3):
        if report_threshold < 1:
            raise GroupCommError("report threshold must be >= 1")
        self.report_threshold = report_threshold
        self._reports: Dict[str, int] = {}
        self._banned: Set[str] = set()

    def allows(self, message: Message) -> bool:
        return message.author not in self._banned

    def observe_report(self, message: Message) -> None:
        count = self._reports.get(message.author, 0) + 1
        self._reports[message.author] = count
        if count >= self.report_threshold:
            self._banned.add(message.author)

    @property
    def banned_authors(self) -> Set[str]:
        return set(self._banned)


class PerInstancePolicy(ModerationPolicy):
    """Mastodon-style federation: each instance picks its own policy; a
    message is delivered on instances whose policy allows it.

    ``allows`` answers for a specific instance via :meth:`allows_at`;
    the plain ``allows`` is True if *any* instance would deliver (the
    federation-wide reachability of the content).
    """

    name = "per_instance"

    def __init__(self, instance_policies: Dict[str, ModerationPolicy]):
        if not instance_policies:
            raise GroupCommError("need at least one instance policy")
        self.instance_policies = dict(instance_policies)

    def allows_at(self, instance: str, message: Message) -> bool:
        policy = self.instance_policies.get(instance)
        if policy is None:
            raise GroupCommError(f"unknown instance {instance!r}")
        return policy.allows(message)

    def allows(self, message: Message) -> bool:
        return any(
            policy.allows(message) for policy in self.instance_policies.values()
        )

    def delivery_map(self, message: Message) -> Dict[str, bool]:
        return {
            instance: policy.allows(message)
            for instance, policy in self.instance_policies.items()
        }


def evaluate_policies(
    policy: ModerationPolicy,
    traffic: List[Message],
    spam_ids: Set[str],
    reporters_per_spam: int = 0,
) -> ModerationOutcome:
    """Run traffic through a policy in order, counting outcomes.

    ``reporters_per_spam`` simulated users report each delivered spam
    message, which lets reputation policies learn mid-stream.
    """
    delivered = 0
    spam_delivered = 0
    legitimate_blocked = 0
    for message in traffic:
        is_spam = message.msg_id in spam_ids
        if policy.allows(message):
            delivered += 1
            if is_spam:
                spam_delivered += 1
                for _ in range(reporters_per_spam):
                    policy.observe_report(message)
        elif not is_spam:
            legitimate_blocked += 1
    return ModerationOutcome(
        policy=policy.name,
        total=len(traffic),
        delivered=delivered,
        spam_delivered=spam_delivered,
        legitimate_blocked=legitimate_blocked,
    )
