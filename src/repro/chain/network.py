"""The simulated blockchain peer-to-peer network.

:class:`BlockchainNetwork` runs a population of participants (full nodes,
some of them miners) on the discrete-event simulator.  Each miner is an
independent Poisson process with rate ``hashrate / difficulty`` against its
*local* tip — the standard continuous-time model of Nakamoto mining.  Found
blocks propagate to every other participant after ``propagation_delay``
seconds, so natural forks occur exactly when two miners find blocks within
a propagation window, and the 51%-attack (withheld private chains) is a
first-class behaviour rather than a bolt-on.

The paper (§3.1) leans on three blockchain facts this module makes
measurable: global consensus emerges without an authority; throughput is
limited by the block interval; and a majority of hashrate can rewrite
history.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.chain.block import Block, make_block, make_genesis
from repro.chain.chainstate import ChainState
from repro.chain.consensus import ConsensusParams, required_difficulty
from repro.chain.ledger import LedgerRules
from repro.chain.mempool import Mempool
from repro.chain.transaction import Transaction, make_coinbase
from repro.crypto.keys import KeyPair, generate_keypair
from repro.errors import ChainError, InvalidBlockError, InvalidTransactionError
from repro.sim.engine import Simulator
from repro.sim.monitor import Monitor
from repro.sim.rng import RngStreams

__all__ = ["BlockchainNetwork", "Participant"]


class Participant:
    """One full node: a chain view, a mempool, and optionally a miner.

    ``withholding=True`` turns the participant into a selfish/majority
    attacker: blocks it mines stay private until :meth:`release_private_chain`.
    """

    def __init__(
        self,
        name: str,
        network: "BlockchainNetwork",
        hashrate: float = 0.0,
        withholding: bool = False,
    ):
        self.name = name
        self.network = network
        self.hashrate = float(hashrate)
        self.withholding = withholding
        self.keypair: KeyPair = generate_keypair(f"miner:{name}")
        self.chain = ChainState(
            genesis=network.genesis,
            rules=network.rules,
            premine=network.premine,
        )
        self.mempool = Mempool()
        self.blocks_mined = 0
        self.censor_txids: set = set()
        self._private_blocks: List[Block] = []
        self._private_tip_id: Optional[str] = (
            self.chain.genesis.block_id if withholding else None
        )
        self._orphan_buffer: Dict[str, List[Block]] = {}
        self._mine_event = None

    # -- mining -------------------------------------------------------------

    def start_mining(self) -> None:
        if self.hashrate > 0:
            self._arm()

    def stop_mining(self) -> None:
        self.hashrate = 0.0
        if self._mine_event is not None:
            self._mine_event.cancel()
            self._mine_event = None

    def set_hashrate(self, hashrate: float) -> None:
        self.hashrate = float(hashrate)
        if self.hashrate > 0:
            self._arm()
        else:
            self.stop_mining()

    def _mining_parent(self) -> Block:
        """The block this participant extends: the private fork tip while
        withholding, otherwise the consensus tip."""
        if self.withholding and self._private_tip_id is not None:
            return self.chain.block(self._private_tip_id)
        return self.chain.tip

    def _arm(self) -> None:
        """(Re)sample the next block-find time against the mining parent.

        Re-arming on every tip change is statistically exact because the
        exponential distribution is memoryless.
        """
        if self._mine_event is not None:
            self._mine_event.cancel()
            self._mine_event = None
        if self.hashrate <= 0:
            return
        parent = self._mining_parent()
        difficulty = required_difficulty(self.chain, parent, self.network.params)
        rate = self.hashrate / difficulty
        dt = self.network.mining_rng.expovariate(rate)
        self._mine_event = self.network.sim.schedule(dt, self._found_block)

    def _found_block(self) -> None:
        self._mine_event = None
        sim = self.network.sim
        parent = self._mining_parent()
        difficulty = required_difficulty(self.chain, parent, self.network.params)
        state = self.chain.state_at(parent.block_id)
        selected = self.mempool.select(
            state, parent.height + 1, self.network.rules,
            max_txs=self.network.max_txs_per_block,
        )
        if self.censor_txids:
            selected = [tx for tx in selected if tx.txid not in self.censor_txids]
        coinbase = make_coinbase(
            self.keypair.public_key, self.network.rules.block_reward,
            parent.height + 1,
        )
        block = make_block(
            parent=parent,
            timestamp=sim.now,
            miner=self.name,
            difficulty=difficulty,
            transactions=[coinbase] + selected,
        )
        self.blocks_mined += 1
        self.network.monitor.counters.increment("blocks_mined")
        self.network.monitor.counters.increment(f"blocks_mined.{self.name}")
        self.chain.add_block(block)
        self.mempool.remove_mined(block.transactions)
        if self.withholding:
            self._private_blocks.append(block)
            self._private_tip_id = block.block_id
            self.network.monitor.counters.increment("blocks_withheld")
        else:
            self.network.broadcast_block(self.name, block)
        self._arm()

    def begin_withholding(self, fork_point_id: Optional[str] = None) -> None:
        """Start mining a private fork from ``fork_point_id`` (default: the
        current tip).  Found blocks stay private until
        :meth:`release_private_chain` — the setup step of a majority
        attack."""
        self.withholding = True
        self._private_tip_id = fork_point_id or self.chain.tip.block_id
        self._private_blocks = []
        self._arm()

    def release_private_chain(self) -> List[Block]:
        """Broadcast the withheld private chain (the attack's reveal step)
        and return to honest mining on the consensus tip."""
        released, self._private_blocks = self._private_blocks, []
        for block in released:
            self.network.broadcast_block(self.name, block)
        self.network.monitor.counters.increment(
            "private_chain_releases", 1 if released else 0
        )
        self.withholding = False
        self._private_tip_id = None
        self._arm()
        return released

    @property
    def private_chain_length(self) -> int:
        return len(self._private_blocks)

    @property
    def private_tip_height(self) -> int:
        if self._private_tip_id is None:
            return self.chain.height
        return self.chain.block(self._private_tip_id).height

    @property
    def private_tip_work(self) -> float:
        """Cumulative work of the private fork tip (consensus tip when not
        withholding)."""
        tip_id = self._private_tip_id or self.chain.tip.block_id
        return self.chain.cumulative_work(tip_id)

    # -- receiving ----------------------------------------------------------

    def receive_block(self, block: Block) -> None:
        """Validate and adopt a block; buffers orphans until parents arrive.

        A withholding participant still tracks the public chain (so it can
        measure its lead) but keeps mining on its private fork.
        """
        if self.chain.has_block(block.block_id):
            return
        if not self.chain.has_block(block.parent_id):
            self._orphan_buffer.setdefault(block.parent_id, []).append(block)
            self.network.monitor.counters.increment("orphans_buffered")
            return
        old_tip = self.chain.tip.block_id
        try:
            self.chain.add_block(block)
        except InvalidBlockError:
            self.network.monitor.counters.increment("blocks_rejected")
            return
        self._drain_orphans(block.block_id)
        if self.chain.tip.block_id != old_tip:
            tip_state = self.chain.state_at()
            self.mempool.remove_mined(block.transactions)
            self.mempool.drop_invalid(
                tip_state, self.chain.height + 1, self.network.rules
            )
            self._arm()

    def _drain_orphans(self, parent_id: str) -> None:
        waiting = self._orphan_buffer.pop(parent_id, [])
        for orphan in waiting:
            self.receive_block(orphan)

    def receive_transaction(self, tx: Transaction) -> None:
        try:
            self.mempool.add(tx)
        except InvalidTransactionError:
            self.network.monitor.counters.increment("txs_rejected")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Participant({self.name!r}, h={self.chain.height},"
            f" hashrate={self.hashrate})"
        )


class BlockchainNetwork:
    """Coordinates participants, block gossip, and transaction gossip."""

    def __init__(
        self,
        sim: Simulator,
        streams: RngStreams,
        params: Optional[ConsensusParams] = None,
        rules: Optional[LedgerRules] = None,
        propagation_delay: float = 2.0,
        tx_propagation_delay: float = 1.0,
        premine: Optional[Dict[str, float]] = None,
        max_txs_per_block: int = 1000,
    ):
        if propagation_delay < 0 or tx_propagation_delay < 0:
            raise ChainError("propagation delays must be non-negative")
        self.sim = sim
        self.params = params or ConsensusParams()
        self.rules = rules or LedgerRules()
        self.genesis = make_genesis(difficulty=self.params.initial_difficulty)
        self.propagation_delay = propagation_delay
        self.tx_propagation_delay = tx_propagation_delay
        self.premine = dict(premine or {})
        self.max_txs_per_block = max_txs_per_block
        self.mining_rng = streams.stream("chain.mining")
        self.monitor = Monitor()
        self._participants: Dict[str, Participant] = {}

    # -- membership -----------------------------------------------------------

    def add_participant(
        self, name: str, hashrate: float = 0.0, withholding: bool = False
    ) -> Participant:
        if name in self._participants:
            raise ChainError(f"duplicate participant {name!r}")
        participant = Participant(name, self, hashrate, withholding)
        self._participants[name] = participant
        return participant

    def participant(self, name: str) -> Participant:
        p = self._participants.get(name)
        if p is None:
            raise ChainError(f"unknown participant {name!r}")
        return p

    def participants(self) -> List[Participant]:
        return list(self._participants.values())

    def total_hashrate(self) -> float:
        return sum(p.hashrate for p in self._participants.values())

    def start(self) -> None:
        """Arm every miner; call once after adding participants."""
        if self.total_hashrate() <= 0:
            raise ChainError("no participant has positive hashrate")
        for p in self._participants.values():
            p.start_mining()

    # -- gossip -----------------------------------------------------------------

    def broadcast_block(self, origin: str, block: Block) -> None:
        self.monitor.counters.increment("blocks_broadcast")
        for name, participant in self._participants.items():
            if name == origin:
                continue
            self.sim.schedule(
                self.propagation_delay, participant.receive_block, block
            )

    def submit_transaction(self, tx: Transaction, origin: Optional[str] = None) -> None:
        """Gossip a transaction to every mempool (including the origin's,
        immediately)."""
        self.monitor.counters.increment("txs_submitted")
        for name, participant in self._participants.items():
            if name == origin:
                participant.receive_transaction(tx)
            else:
                self.sim.schedule(
                    self.tx_propagation_delay,
                    participant.receive_transaction,
                    tx,
                )

    # -- whole-network queries -----------------------------------------------

    def consensus_tip_ids(self) -> Dict[str, str]:
        return {
            name: p.chain.tip.block_id for name, p in self._participants.items()
        }

    def in_consensus(self) -> bool:
        """True when every participant agrees on the tip."""
        tips = set(self.consensus_tip_ids().values())
        return len(tips) == 1

    def stale_block_count(self) -> int:
        """Blocks mined that did not end on the (first participant's) main
        chain — the natural-fork waste measure."""
        if not self._participants:
            return 0
        reference = next(iter(self._participants.values()))
        main_ids = {b.block_id for b in reference.chain.main_chain()}
        mined = self.monitor.counters.get("blocks_mined")
        return mined - (len(main_ids) - 1)  # genesis isn't mined
