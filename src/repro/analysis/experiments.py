"""Experiment drivers E3-E9 (see DESIGN.md's experiment index).

Each function builds a fresh simulated world from a seed, runs one
experiment, and returns plain dict/list results that benches print and
tests assert on.  E1/E2 (the taxonomy and storage-system tables) live in
:mod:`repro.core.taxonomy` and :mod:`repro.storage.systems`; everything
here exercises behaviour.

Grid-shaped drivers are split in two: a top-level ``_*_point`` function
computes ONE grid point from explicit JSON-safe kwargs (so it can ship
to a worker process and key an on-disk cache), and the public driver
fans the grid out through a :class:`repro.analysis.runner.SweepRunner`.
The default runner is serial and uncached, so calling a driver with no
``runner`` argument behaves exactly as the historical serial loop did;
pass ``runner=SweepRunner(workers=N, cache=SweepCache(...))`` (or use
``python -m repro sweep``) to parallelize and memoize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.runner import SweepRunner

from repro.chain import (
    BlockchainNetwork,
    ConsensusParams,
    MajorityAttack,
    TxKind,
    double_spend_success_probability,
    make_transaction,
)
from repro.core.feasibility import FeasibilityModel, paper_model
from repro.crypto import generate_keypair
from repro.errors import (
    AccessDeniedError,
    GroupCommError,
    NameTakenError,
    NamingError,
    ReproError,
    RpcTimeoutError,
    StorageError,
    WebAppError,
)
from repro.groupcomm import (
    CentralizedPlatform,
    PartialFederation,
    ReplicatedFederation,
    SingleHomeFederation,
    SocialP2PNetwork,
    audit_centralized,
    audit_replicated_federation,
    audit_social_p2p,
    exposure_score,
)
from repro.naming import BlockchainNameRegistry, CentralizedPKI
from repro.net import (
    ChurnProfile,
    ConstantLatency,
    Network,
    attach_churn,
)
from repro.net.topology import small_world
from repro.sim import RngStreams, Simulator
from repro.storage import (
    DealState,
    ProofKind,
    StorageDeal,
    StorageMarketplace,
    StorageProvider,
    Commitment,
    ReplicatedBlobStore,
    make_random_blob,
    seal_blob,
)
from repro.webapps import HostlessSite, SiteSwarm, Tracker, VisitorProcess

__all__ = [
    "run_feasibility",
    "run_moderation_comparison",
    "run_usenet_collapse",
    "run_endless_ledger",
    "chain_size_bytes",
    "run_federation_availability",
    "run_partial_federation_sweep",
    "run_social_tradeoff",
    "run_naming_comparison",
    "naming_attack_curve",
    "run_name_theft",
    "run_proof_economics",
    "run_swarm_availability",
    "run_quality_vs_quantity",
]


# ---------------------------------------------------------------------------
# E3 — Table 3 feasibility
# ---------------------------------------------------------------------------

def _feasibility_point(model: Optional[FeasibilityModel] = None) -> Dict[str, object]:
    """One E3 evaluation (the whole experiment is a single grid point)."""
    model = model or paper_model()
    return {
        "table3": model.table3(),
        "sufficient": model.sufficient(),
        "ratios": model.device_capacity().ratio_to(model.cloud_capacity()),
        "breakeven_core_discount": model.breakeven_core_discount(),
    }


def run_feasibility(
    model: Optional[FeasibilityModel] = None,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, object]:
    """E3: regenerate Table 3 plus the sufficiency verdict and breakeven."""
    if model is not None:
        # A custom model is not JSON-addressable; compute it directly.
        return _feasibility_point(model=model)
    runner = runner or SweepRunner()
    return runner.run("E3_feasibility", _feasibility_point, [{}])[0]


# ---------------------------------------------------------------------------
# E4 — federation availability under server failures
# ---------------------------------------------------------------------------

def _federation_point(
    model_name: str,
    seed: int,
    n_servers: int,
    n_users: int,
    n_messages: int,
    failed_servers: int,
    gossip_interval: float,
) -> Dict[str, object]:
    """One E4 grid point: one federation model, one failure count."""
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams, latency=ConstantLatency(0.02))
    servers = [f"srv{i}" for i in range(n_servers)]
    if model_name == "single_home":
        federation = SingleHomeFederation(network, servers)
    else:
        federation = ReplicatedFederation(
            network, servers, streams, gossip_interval=gossip_interval,
            allow_failover=(model_name == "replicated_failover"),
        )
    users = [f"u{i}" for i in range(n_users)]
    for i, user in enumerate(users):
        federation.add_user(user, home=servers[i % n_servers])
    federation.create_room("room", users)
    if isinstance(federation, ReplicatedFederation):
        federation.start_replication()

    authors = users[:n_messages]

    def post_phase():
        for i, author in enumerate(authors):
            yield from federation.post(author, "room", f"message-{i}")
        # Let pushes/gossip converge.
        yield 30 * gossip_interval
        return True

    sim.run_process(post_phase(), until=10_000.0)

    # Fail servers deterministically (the first k).
    for server in servers[:failed_servers]:
        network.node(server).set_online(False, sim.now)

    readable = {"count": 0}

    def read_phase():
        for user in users:
            try:
                messages = yield from federation.fetch(user, "room")
            except (RpcTimeoutError, GroupCommError):
                continue
            if len(messages) >= n_messages:
                readable["count"] += 1
        if isinstance(federation, ReplicatedFederation):
            federation.stop_replication()
        return True

    sim.run_process(read_phase(), until=sim.now + 10_000.0)
    return {
        "model": model_name,
        "servers": n_servers,
        "failed": failed_servers,
        "read_availability": readable["count"] / n_users,
    }


def run_federation_availability(
    seed: int = 1,
    n_servers: int = 5,
    n_users: int = 20,
    n_messages: int = 8,
    failed_servers: int = 1,
    gossip_interval: float = 2.0,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """E4: message-read availability after server failures, per model.

    Returns one row per federation model with the fraction of users able
    to read the full room history after ``failed_servers`` die.
    """
    runner = runner or SweepRunner()
    configs = [
        {
            "model_name": model_name,
            "seed": seed,
            "n_servers": n_servers,
            "n_users": n_users,
            "n_messages": n_messages,
            "failed_servers": failed_servers,
            "gossip_interval": gossip_interval,
        }
        for model_name in ("single_home", "replicated", "replicated_failover")
    ]
    return runner.run("E4_federation_availability", _federation_point, configs)


# ---------------------------------------------------------------------------
# E4P — partial federation across the trust/policy spectrum
# ---------------------------------------------------------------------------

def _partial_point(
    policy: str,
    trust: float,
    seed: int,
    n_servers: int,
    n_users: int,
    n_messages: int,
    failed_servers: int,
    gossip_interval: float,
    conflict_strategy: str,
) -> Dict[str, object]:
    """One E4P grid point: one (policy, trust) mix under one strategy.

    Two rooms stress both sides of the ``filtered`` gate: the public
    "town" (everyone; public entries federate regardless of trust) and
    the private "club" (first half of the users; private entries reach
    only peers at or above the trust threshold).  Concurrent topic
    writes from differently-homed users manufacture conflicts, so every
    point also reports residual divergence.
    """
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams, latency=ConstantLatency(0.02))
    servers = [f"srv{i}" for i in range(n_servers)]
    federation = PartialFederation(
        network, servers, streams, gossip_interval=gossip_interval,
        conflict_strategy=conflict_strategy, default_policy=policy,
        default_trust=trust,
    )
    users = [f"u{i}" for i in range(n_users)]
    for i, user in enumerate(users):
        federation.add_user(user, home=servers[i % n_servers])
    town = federation.create_room("town", users, public=True)
    club_members = users[: max(2, n_users // 2)]
    federation.create_room("club", club_members, public=False)
    federation.start_federation()

    n_town = (n_messages + 1) // 2
    n_club = n_messages - n_town
    expected = {"town": n_town, "club": n_club}

    def post_phase():
        for i in range(n_town):
            yield from federation.post(users[i % n_users], "town", f"t-{i}")
        for i in range(n_club):
            yield from federation.post(
                club_members[i % len(club_members)], "club", f"c-{i}"
            )
        # Concurrent topic writes from two differently-homed users,
        # faster than a gossip round: genuine conflicts.
        yield from federation.set_room_state(users[0], "town", "topic", "a")
        yield 0.2
        yield from federation.set_room_state(users[1], "town", "topic", "b")
        # Let pushes/gossip converge.
        yield 30 * gossip_interval
        return True

    sim.run_process(post_phase(), until=10_000.0)

    # Metadata leak before any failure: fraction of (message, server)
    # sightings realised — 1/n_servers means origin-only, 1.0 means
    # every hub sees every message (the §3.2 replication leak).
    sightings = sum(
        len(federation.server_metadata_view(server)) for server in servers
    )
    exposure = sightings / (n_messages * n_servers) if n_messages else 0.0

    # Fail servers deterministically (the first k).
    for server in servers[:failed_servers]:
        network.node(server).set_online(False, sim.now)

    readable = {"count": 0, "attempts": 0}

    def read_phase():
        for room_id, members in (("town", users), ("club", club_members)):
            for user in members:
                readable["attempts"] += 1
                try:
                    messages = yield from federation.fetch(user, room_id)
                except (RpcTimeoutError, GroupCommError):
                    continue
                if len(messages) >= expected[room_id]:
                    readable["count"] += 1
        federation.stop_federation()
        return True

    sim.run_process(read_phase(), until=sim.now + 100_000.0)
    divergent = federation.divergence(online_only=True)
    pending = sum(
        len(federation.pending_conflicts(server)) for server in servers
    )
    return {
        "policy": policy,
        "trust": trust,
        "strategy": conflict_strategy,
        "failed": failed_servers,
        "read_availability": readable["count"] / readable["attempts"],
        "metadata_exposure": round(exposure, 4),
        "divergent_keys": len(divergent),
        "conflicts_pending": pending,
    }


def run_partial_federation_sweep(
    seed: int = 1,
    n_servers: int = 4,
    n_users: int = 12,
    n_messages: int = 8,
    failed_servers: int = 1,
    gossip_interval: float = 2.0,
    conflict_strategy: str = "lww",
    trust_levels: Sequence[float] = (0.2, 0.5, 0.9),
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """E4P: availability/consistency/leak across the trust spectrum.

    One row per (policy, trust) pair.  At a fixed trust level,
    availability is monotone ``none`` -> ``filtered`` -> ``full`` (more
    federation, more survivable replicas) and so is metadata exposure —
    the §3.2 availability-vs-control trade as a measured curve rather
    than prose.
    """
    runner = runner or SweepRunner()
    configs = [
        {
            "policy": policy,
            "trust": trust,
            "seed": seed,
            "n_servers": n_servers,
            "n_users": n_users,
            "n_messages": n_messages,
            "failed_servers": failed_servers,
            "gossip_interval": gossip_interval,
            "conflict_strategy": conflict_strategy,
        }
        for policy in ("none", "filtered", "full")
        for trust in trust_levels
    ]
    return runner.run("E4P_partial_federation", _partial_point, configs)


# ---------------------------------------------------------------------------
# E5 — privacy vs availability across communication models
# ---------------------------------------------------------------------------

def _social_point(
    family: str,
    seed: int,
    n_users: int,
    n_posts: int,
    n_probes: int,
    mean_uptime: float,
    mean_downtime: float,
    attrition: float,
    horizon: float,
) -> Dict[str, object]:
    """One E5 grid point: one system family under device churn.

    The churn profile arrives as its scalar fields (not a
    ``ChurnProfile``) so the config is JSON-canonicalizable for the
    runner's cache and picklable for its worker pool.
    """
    profile = ChurnProfile(
        mean_uptime=mean_uptime, mean_downtime=mean_downtime,
        attrition=attrition,
    )
    encrypted = family.endswith("_e2e")
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams, latency=ConstantLatency(0.02))
    rng = streams.stream("analysis.probes")
    graph = small_world(n_users, k=4, rewire_prob=0.2, seed=seed, prefix="u")
    users = sorted(graph.nodes)

    platform = None
    federation = None
    p2p = None
    if family == "centralized":
        platform = CentralizedPlatform(network)
        for user in users:
            network.create_node(user)
        platform.create_room("room", users)
    elif family.startswith("federated"):
        servers = [f"srv{i}" for i in range(4)]
        if family == "federated_single_home":
            federation = SingleHomeFederation(network, servers)
        else:
            federation = ReplicatedFederation(
                network, servers, streams, gossip_interval=5.0,
                allow_failover=True,
            )
        for i, user in enumerate(users):
            federation.add_user(user, home=servers[i % len(servers)])
        federation.create_room("room", users)
        if isinstance(federation, ReplicatedFederation):
            federation.start_replication()
    else:
        p2p = SocialP2PNetwork(network, graph, replicate_to_friends=1)

    # Device churn on user nodes only (servers stay up).
    attach_churn(sim, streams, [network.node(u) for u in users], profile)

    posted = []

    def post_phase():
        for i in range(n_posts):
            author = users[i % len(users)]
            if not network.node(author).online:
                continue
            try:
                if platform is not None:
                    yield from platform.post(author, "room", f"post-{i}")
                elif isinstance(federation, ReplicatedFederation):
                    yield from federation.post(
                        author, "room", f"post-{i}", encrypted=encrypted
                    )
                elif federation is not None:
                    yield from federation.post(author, "room", f"post-{i}")
                else:
                    yield from p2p.post(author, f"post-{i}")
                posted.append(author)
            except ReproError:
                pass
            yield 20.0
        return True

    sim.run_process(post_phase(), until=horizon)

    successes = {"n": 0, "attempts": 0}

    def probe_phase():
        for _ in range(n_probes):
            yield rng.uniform(5.0, 50.0)
            online_users = [u for u in users if network.node(u).online]
            if not online_users or not posted:
                continue
            reader = rng.choice(online_users)
            successes["attempts"] += 1
            try:
                if platform is not None:
                    messages = yield from platform.fetch(reader, "room")
                    ok = len(messages) > 0
                elif federation is not None:
                    messages = yield from federation.fetch(reader, "room")
                    ok = len(messages) > 0
                else:
                    # Probe an authorized pair: a friend reading the
                    # author's feed (strangers are denied by design).
                    author = rng.choice(posted)
                    friend_readers = [
                        f for f in p2p.friends_of(author)
                        if network.node(f).online
                    ]
                    if not friend_readers:
                        successes["attempts"] -= 1
                        continue
                    reader = rng.choice(friend_readers)
                    messages = yield from p2p.fetch(reader, author)
                    ok = len(messages) > 0
            except ReproError:
                ok = False
            if ok:
                successes["n"] += 1
        if isinstance(federation, ReplicatedFederation):
            federation.stop_replication()
        return True

    sim.run_process(probe_phase(), until=sim.now + horizon)

    if platform is not None:
        exposure = exposure_score(audit_centralized(platform, "room"))
    elif isinstance(federation, ReplicatedFederation):
        exposure = exposure_score(
            audit_replicated_federation(federation, "room")
        )
    elif federation is not None:
        # Single-home: each home server sees its copy of content+metadata;
        # structurally the same full exposure as centralized, split
        # across a few operators.
        exposure = 1.0
    else:
        exposure = exposure_score(audit_social_p2p(p2p, users))

    availability = (
        successes["n"] / successes["attempts"] if successes["attempts"] else 0.0
    )
    return {
        "system": family,
        "availability": round(availability, 3),
        "operator_exposure": round(exposure, 3),
        "probes": successes["attempts"],
    }


def run_social_tradeoff(
    seed: int = 1,
    n_users: int = 16,
    n_posts: int = 10,
    n_probes: int = 40,
    device_profile: Optional[ChurnProfile] = None,
    horizon: float = 4000.0,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """E5: fetch availability vs operator exposure, per system family.

    User devices churn with ``device_profile`` (default: 2/3 availability).
    Servers/datacenters stay up.  Availability is the success fraction of
    read probes at random times; exposure is the audited operator-privacy
    score in [0, 1].
    """
    profile = device_profile or ChurnProfile(
        mean_uptime=400.0, mean_downtime=200.0
    )
    runner = runner or SweepRunner()
    configs = [
        {
            "family": family,
            "seed": seed,
            "n_users": n_users,
            "n_posts": n_posts,
            "n_probes": n_probes,
            "mean_uptime": profile.mean_uptime,
            "mean_downtime": profile.mean_downtime,
            "attrition": profile.attrition,
            "horizon": horizon,
        }
        for family in ("centralized", "federated_single_home",
                       "federated_replicated", "federated_replicated_e2e",
                       "socially_aware_p2p")
    ]
    return runner.run("E5_social_tradeoff", _social_point, configs)


# ---------------------------------------------------------------------------
# E6 — naming: latency comparison and the 51% attack
# ---------------------------------------------------------------------------

FAST_CHAIN = ConsensusParams(
    target_block_interval=10.0, retarget_interval=50, initial_difficulty=100.0
)


def _naming_point(
    backend: str, seed: int, confirmations: Optional[int] = None
) -> Dict[str, object]:
    """One E6a grid point: one naming backend (one depth, if blockchain)."""
    alice = generate_keypair(f"e6-alice-{seed}")
    if backend == "centralized_pki":
        sim = Simulator()
        streams = RngStreams(seed)
        network = Network(sim, streams, latency=ConstantLatency(0.05))
        network.create_node("client")
        pki = CentralizedPKI(network)

        def pki_scenario():
            receipt = yield from pki.register(
                alice, "alice.id", {"v": 1}, client="client"
            )
            return receipt.latency

        latency = sim.run_process(pki_scenario())
        return {"backend": "centralized_pki", "confirmations": "-",
                "registration_latency_s": round(latency, 3)}

    sim = Simulator()
    streams = RngStreams(seed + confirmations)
    chain_net = BlockchainNetwork(
        sim, streams, params=FAST_CHAIN, propagation_delay=0.5,
        premine={alice.public_key: 1000.0},
    )
    chain_net.add_participant("m1", hashrate=10.0)
    chain_net.add_participant("m2", hashrate=10.0)
    chain_net.start()
    registry = BlockchainNameRegistry(
        chain_net, chain_net.participant("m1"), confirmations=confirmations
    )

    def chain_scenario():
        receipt = yield from registry.register(alice, "alice.id", {"v": 1})
        return receipt.latency

    latency = sim.run_process(chain_scenario(), until=100_000.0)
    return {"backend": "blockchain", "confirmations": confirmations,
            "registration_latency_s": round(latency, 1)}


def run_naming_comparison(
    seed: int = 1,
    confirmation_levels: Sequence[int] = (1, 3, 6),
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """E6a: registration latency, centralized PKI vs blockchain registry.

    Blockchain latency scales with confirmations x block interval; the PKI
    answers in one round trip.  Rows report measured simulated seconds.
    """
    runner = runner or SweepRunner()
    configs: List[Dict[str, object]] = [
        {"backend": "centralized_pki", "seed": seed}
    ]
    configs.extend(
        {"backend": "blockchain", "seed": seed, "confirmations": confirmations}
        for confirmations in confirmation_levels
    )
    return runner.run("E6a_naming_comparison", _naming_point, configs)


def naming_attack_curve(
    shares: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.45, 0.5, 0.55, 0.6, 0.7),
    confirmations: int = 6,
) -> List[Dict[str, object]]:
    """E6b: analytic 51%-rewrite success probability vs hashrate share.

    The crossover at 0.5 is the paper's '51% attack' boundary.
    """
    return [
        {
            "attacker_share": share,
            "confirmations": confirmations,
            "rewrite_probability": round(
                double_spend_success_probability(share, confirmations), 6
            ),
        }
        for share in shares
    ]


def run_name_theft(
    seed: int = 1,
    attacker_share: float = 0.75,
    horizon: float = 4000.0,
) -> Dict[str, object]:
    """E6c: empirical name-theft attack at a given hashrate share."""
    alice = generate_keypair(f"e6c-alice-{seed}")
    sim = Simulator()
    streams = RngStreams(seed)
    total = 40.0
    chain_net = BlockchainNetwork(
        sim, streams, params=FAST_CHAIN, propagation_delay=0.5,
        premine={alice.public_key: 1000.0},
    )
    honest = chain_net.add_participant(
        "honest", hashrate=total * (1 - attacker_share)
    )
    attacker = chain_net.add_participant(
        "attacker", hashrate=total * attacker_share
    )
    chain_net.start()
    victim_tx = make_transaction(
        alice, TxKind.NAME_REGISTER, {"name": "victim.id", "value": "v"}, 0,
        fee=0.5,
    )
    chain_net.submit_transaction(victim_tx, origin="honest")
    sim.run(until=300.0)
    steal = make_transaction(
        attacker.keypair, TxKind.NAME_REGISTER,
        {"name": "victim.id", "value": "stolen"}, 0, fee=0.5,
    )
    outcome = MajorityAttack(chain_net, attacker).run(
        victim_tx.txid, reference=honest, horizon=horizon,
        release_lead=2, conflicting_tx=steal,
    )
    entry = honest.chain.state_at().live_name("victim.id", honest.chain.height)
    return {
        "attacker_share": attacker_share,
        "succeeded": outcome.succeeded,
        "victim_tx_erased": outcome.victim_tx_erased,
        "name_owner_is_attacker": (
            entry is not None and entry.owner == attacker.keypair.public_key
        ),
    }


# ---------------------------------------------------------------------------
# E7 — storage-proof economics: do attacks pay?
# ---------------------------------------------------------------------------

def _proof_economics_point(
    behaviour: str,
    proof_kind: str,
    seed: int,
    epochs: int,
    blob_chunks: int,
    chunk_size: int,
) -> Dict[str, object]:
    """One E7 grid point: one (provider behaviour, audit scheme) pair."""
    sim = Simulator()
    streams = RngStreams(seed)
    latency = 0.2 if behaviour == "outsourcing_far" else 0.01
    network = Network(sim, streams, latency=ConstantLatency(latency))
    market = StorageMarketplace(
        network, streams, response_deadline=0.3
    )
    provider = StorageProvider(network, "provider", seal_time=1.0)
    market.register_provider(provider)
    network.create_node("consumer")
    market.ledger.credit("consumer", 1000.0)
    blob = make_random_blob(streams, blob_chunks * chunk_size, chunk_size)

    def scenario():
        if behaviour == "dedup_sybil":
            sealed = seal_blob(blob, "replica-2")
            provider.claim_sealed_without_storing(sealed, blob, "replica-2")
            deal = StorageDeal(
                deal_id="dedup-deal",
                consumer="consumer",
                provider_id="provider",
                commitment=Commitment(sealed.merkle_root, len(sealed.chunks)),
                size_bytes=blob.size_bytes,
                price_per_epoch=1.0,
                epochs_total=epochs,
                proof_kind=proof_kind,
            )
            yield from market.register_external_deal(deal)
        elif behaviour == "outsourcing_far":
            backend = StorageProvider(network, "backend")
            backend.accept_blob(blob)
            provider.claim_outsourced(blob, "backend")
            deal = StorageDeal(
                deal_id="outsource-deal",
                consumer="consumer",
                provider_id="provider",
                commitment=Commitment(blob.merkle_root, len(blob.chunks)),
                size_bytes=blob.size_bytes,
                price_per_epoch=1.0,
                epochs_total=epochs,
                proof_kind=proof_kind,
            )
            yield from market.register_external_deal(deal)
        else:
            deal = yield from market.make_deal(
                "consumer", blob, epochs=epochs, proof_kind=proof_kind,
                price_per_epoch=1.0,
            )
            if behaviour.startswith("drop_half"):
                provider.drop_chunks(
                    blob.merkle_root, 0.5, streams.stream("analysis.drop")
                )
        for _ in range(epochs):
            yield from market.run_epoch()
        return deal

    deal = sim.run_process(scenario(), until=1_000_000.0)
    return {
        "behaviour": behaviour,
        "audit": proof_kind,
        "epochs_paid": deal.epochs_paid,
        "earnings": round(market.provider_earnings("provider"), 4),
        "slashed": deal.state == DealState.FAILED,
    }


def run_proof_economics(
    seed: int = 1,
    epochs: int = 10,
    blob_chunks: int = 32,
    chunk_size: int = 512,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """E7: provider earnings per (behaviour, audit scheme).

    Rows show that without audits cheating pays in full; with the matched
    proof system the cheat is detected and slashed.
    """
    runner = runner or SweepRunner()
    scenarios = [
        ("honest", ProofKind.STORAGE),
        ("drop_half_no_audits", ProofKind.NONE),
        ("drop_half", ProofKind.STORAGE),
        ("drop_half", ProofKind.RETRIEVABILITY),
        ("dedup_sybil", ProofKind.REPLICATION),
        ("outsourcing_far", ProofKind.RETRIEVABILITY),
    ]
    configs = [
        {
            "behaviour": behaviour,
            "proof_kind": proof_kind,
            "seed": seed,
            "epochs": epochs,
            "blob_chunks": blob_chunks,
            "chunk_size": chunk_size,
        }
        for behaviour, proof_kind in scenarios
    ]
    return runner.run("E7_proof_economics", _proof_economics_point, configs)


# ---------------------------------------------------------------------------
# E8 — webapp swarm availability vs popularity
# ---------------------------------------------------------------------------

def _swarm_point(
    offered_load: float,
    seed: int,
    mean_seed_time: float,
    horizon: float,
    author_leaves_at: float,
) -> Dict[str, object]:
    """One E8 grid point: one offered load on a fresh swarm."""
    arrival_rate = offered_load / mean_seed_time
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams, latency=ConstantLatency(0.01))
    tracker = Tracker(network)
    swarm = SiteSwarm(network, tracker)
    site = HostlessSite(f"e8-site-{seed}")
    site.write_file("index.html", b"<h1>swarm test</h1>")
    bundle = site.publish()
    address = bundle.manifest.site_address

    def bootstrap():
        yield from swarm.seed("author", bundle)
        yield author_leaves_at
        yield from swarm.stop_seeding("author", address)

    population = VisitorProcess(
        swarm, address, streams,
        arrival_rate=arrival_rate, mean_seed_time=mean_seed_time,
    )
    population.start()
    sim.spawn(bootstrap())
    sim.run(until=horizon)
    population.stop()
    return {
        "offered_load": offered_load,
        "arrivals": population.stats.arrivals,
        "availability": round(population.stats.availability, 3),
    }


def run_swarm_availability(
    seed: int = 1,
    offered_loads: Sequence[float] = (0.1, 0.5, 1.0, 2.0, 8.0, 32.0),
    mean_seed_time: float = 60.0,
    horizon: float = 3000.0,
    author_leaves_at: float = 300.0,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """E8: site availability vs offered load (arrival rate x seed time).

    Expected shape: availability ~0 well below load 1, crossing to ~1 as
    the swarm becomes self-sustaining above it.
    """
    runner = runner or SweepRunner()
    configs = [
        {
            "offered_load": load,
            "seed": seed,
            "mean_seed_time": mean_seed_time,
            "horizon": horizon,
            "author_leaves_at": author_leaves_at,
        }
        for load in offered_loads
    ]
    return runner.run("E8_swarm_availability", _swarm_point, configs)


# ---------------------------------------------------------------------------
# E9 — infrastructure quality vs quantity
# ---------------------------------------------------------------------------

#: E9 infrastructure grades; grid configs name a grade, the point
#: function rebuilds its ChurnProfile (JSON-safe configs).
QUALITY_PROFILES = {
    "datacenter": ChurnProfile(mean_uptime=100_000.0, mean_downtime=60.0),
    "device": ChurnProfile(mean_uptime=600.0, mean_downtime=300.0),
}


def _quality_point(
    infrastructure: str,
    replication_factor: int,
    seed: int,
    n_providers: int,
    horizon: float,
    n_probes: int,
    blob_kib: int,
) -> Dict[str, object]:
    """One E9 grid point: one (infrastructure grade, replication factor)."""
    profile = QUALITY_PROFILES[infrastructure]
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams, latency=ConstantLatency(0.01))
    providers = [
        StorageProvider(network, f"p{i}") for i in range(n_providers)
    ]
    store = ReplicatedBlobStore(
        network, providers, streams,
        replication_factor=replication_factor, check_interval=30.0,
    )
    attach_churn(sim, streams, [p.node for p in providers], profile)
    blob = make_random_blob(streams, blob_kib * 1024, chunk_size=1024)
    rng = streams.stream("analysis.probe_times")
    outcome = {"ok": 0, "attempts": 0}

    def scenario():
        yield from store.store(blob)
        store.start_repair()
        for _ in range(n_probes):
            yield rng.uniform(horizon / (2 * n_probes),
                              horizon / n_probes)
            outcome["attempts"] += 1
            try:
                yield from store.retrieve(blob.merkle_root)
                outcome["ok"] += 1
            except StorageError:
                pass
        store.stop_repair()
        return True

    sim.run_process(scenario(), until=10 * horizon)
    return {
        "infrastructure": infrastructure,
        "replication_factor": replication_factor,
        "retrieval_availability": round(
            outcome["ok"] / max(1, outcome["attempts"]), 3
        ),
        "repair_bytes": store.repair_bytes(),
    }


def run_quality_vs_quantity(
    seed: int = 1,
    replication_factors: Sequence[int] = (1, 2, 3, 4),
    n_providers: int = 16,
    horizon: float = 4000.0,
    n_probes: int = 20,
    blob_kib: int = 4,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """E9: same storage workload on datacenter-grade vs device-grade infra.

    For each (infrastructure grade, replication factor): retrieval success
    fraction over random probes plus repair traffic.  Expected shape:
    datacenter-grade is ~always available at R=1-2 with no repair; device-
    grade needs R>=3 and pays continuous repair bandwidth.
    """
    runner = runner or SweepRunner()
    configs = [
        {
            "infrastructure": grade,
            "replication_factor": factor,
            "seed": seed,
            "n_providers": n_providers,
            "horizon": horizon,
            "n_probes": n_probes,
            "blob_kib": blob_kib,
        }
        for grade in QUALITY_PROFILES
        for factor in replication_factors
    ]
    return runner.run("E9_quality_vs_quantity", _quality_point, configs)


# ---------------------------------------------------------------------------
# E10 (extension) — abuse prevention across moderation regimes (§3.2)
# ---------------------------------------------------------------------------

def run_moderation_comparison(
    seed: int = 1,
    n_legitimate: int = 60,
    n_spam: int = 40,
) -> List[Dict[str, object]]:
    """Extension experiment: spam pass rate vs collateral censorship.

    One traffic mix is pushed through four moderation regimes: none (pure
    P2P), central keyword filtering, report-driven reputation, and a
    Mastodon-style per-instance federation where one instance is strict
    and one is lax.  The paper's tension — moderation vs freedom of
    expression — appears as spam-pass-rate vs collateral-block-rate.
    """
    from repro.groupcomm import (
        KeywordPolicy,
        Message,
        NoModeration,
        PerInstancePolicy,
        ReputationPolicy,
        evaluate_policies,
    )
    from repro.sim.rng import RngStreams as _Streams

    rng = _Streams(seed).stream("analysis.moderation")
    legit_topics = [
        "lunch plans for the team",
        "the new compiler release notes",
        "cheap pills discussion in my pharmacology class",  # tricky ham
        "weekend hiking photos",
        "federated systems reading group",
    ]
    traffic: List[Message] = []
    spam_ids = set()
    for i in range(n_legitimate):
        traffic.append(Message(
            author=f"user{i % 10}", room="town", sent_at=float(i),
            body=rng.choice(legit_topics), seq=i,
        ))
    for i in range(n_spam):
        message = Message(
            author="spammer", room="town", sent_at=float(n_legitimate + i),
            body=f"BUY cheap pills NOW offer #{i}", seq=n_legitimate + i,
        )
        traffic.append(message)
        spam_ids.add(message.msg_id)
    rng.shuffle(traffic)

    regimes = [
        ("none (pure P2P)", NoModeration(), 0),
        ("central keyword filter", KeywordPolicy(["cheap pills"]), 0),
        ("report-driven reputation", ReputationPolicy(report_threshold=3), 1),
        (
            "per-instance federation",
            PerInstancePolicy({
                "strict.social": KeywordPolicy(["cheap pills"]),
                "lax.social": NoModeration(),
            }),
            0,
        ),
    ]
    rows = []
    for label, policy, reporters in regimes:
        outcome = evaluate_policies(
            policy, traffic, spam_ids, reporters_per_spam=reporters
        )
        rows.append({
            "regime": label,
            "spam_pass_rate": round(outcome.spam_pass_rate, 3),
            "collateral_block_rate": round(outcome.collateral_rate, 3),
        })
    return rows


# ---------------------------------------------------------------------------
# E11 (extension) — the Usenet collapse: full-feed federation cost (§3.2)
# ---------------------------------------------------------------------------

def _usenet_point(
    community_size: int,
    seed: int,
    message_bytes: int,
    interest_fraction: float,
) -> Dict[str, object]:
    """One E11 grid point: one community size, both cost models."""
    from repro.gossip import build_pubsub_overlay
    from repro.net.topology import small_world

    n_users = community_size
    # --- federated flooding: everyone subscribes to everything ------
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams, latency=ConstantLatency(0.005))
    graph = small_world(n_users, k=6, rewire_prob=0.2, seed=seed, prefix="n")
    overlay = build_pubsub_overlay(network, graph)
    for node in overlay.values():
        node.subscribe("news")
    for i, name in enumerate(sorted(overlay)):
        overlay[name].publish("news", f"post-{i}", size_bytes=message_bytes)
    sim.run()
    total_bytes = sum(
        count
        for key, count in network.monitor.counters.as_dict().items()
        if key.startswith("bytes_sent.")
    )
    per_node_flooding = total_bytes / n_users

    # --- centralized: users fetch only what interests them ------------
    interesting = max(1, int(interest_fraction * n_users))
    per_user_centralized = (
        message_bytes  # their own upload
        + interesting * message_bytes  # selective downloads
    )
    server_centralized = n_users * message_bytes * (1 + interest_fraction * n_users)

    return {
        "community_size": n_users,
        "per_node_bytes_federated": int(per_node_flooding),
        "per_user_bytes_centralized": per_user_centralized,
        "server_bytes_centralized": int(server_centralized),
    }


def run_usenet_collapse(
    seed: int = 1,
    community_sizes: Sequence[int] = (10, 20, 40, 80),
    message_bytes: int = 512,
    interest_fraction: float = 0.1,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """Extension experiment: why Usenet 'collapsed under its own traffic'.

    Every member posts one message.  In the federated full-feed model
    (Usenet / flooding pub-sub) every node carries every message, so
    per-node bandwidth grows linearly with community size.  In the
    centralized model users fetch only the fraction they care about —
    per-user cost stays flat while the provider absorbs the linear load
    (the §2.1 'performance' advantage of central administration).
    """
    runner = runner or SweepRunner()
    configs = [
        {
            "community_size": n_users,
            "seed": seed,
            "message_bytes": message_bytes,
            "interest_fraction": interest_fraction,
        }
        for n_users in community_sizes
    ]
    return runner.run("E11_usenet_collapse", _usenet_point, configs)


# ---------------------------------------------------------------------------
# E12 (extension) — the endless ledger problem (§3.1)
# ---------------------------------------------------------------------------

def _canonical_size(obj: object) -> int:
    from repro.crypto.hashing import _canonical

    return len(_canonical(obj))


def chain_size_bytes(chain) -> int:
    """Approximate serialized size of a chain's main branch."""
    total = 0
    for block in chain.main_chain():
        total += _canonical_size(block.header())
        for tx in block.transactions:
            total += _canonical_size(tx.body())
            if tx.signature is not None:
                total += _canonical_size(tx.signature.as_dict())
    return total


def run_endless_ledger(
    seed: int = 1,
    horizon: float = 3000.0,
    sample_every: float = 500.0,
    registration_interval: float = 30.0,
    name_lifetime_blocks: int = 20,
) -> List[Dict[str, object]]:
    """Extension experiment: the ledger grows forever; the name set doesn't.

    Names expire after ``name_lifetime_blocks`` (so live names plateau),
    but every registration lives in the chain's history forever — the
    'endless ledger problem' §3.1 lists among blockchain weaknesses.
    Rows sample (time, live_names, chain_bytes).
    """
    from repro.chain.ledger import LedgerRules

    sim = Simulator()
    streams = RngStreams(seed)
    users = [
        generate_keypair(f"el-user-{seed}-{i}")
        for i in range(int(horizon / registration_interval) + 2)
    ]
    chain_net = BlockchainNetwork(
        sim,
        streams,
        params=FAST_CHAIN,
        propagation_delay=0.2,
        rules=LedgerRules(name_lifetime_blocks=name_lifetime_blocks),
        premine={u.public_key: 10.0 for u in users},
    )
    chain_net.add_participant("m", hashrate=10.0)
    chain_net.start()

    def submitter():
        for i, user in enumerate(users):
            tx = make_transaction(
                user, TxKind.NAME_REGISTER,
                {"name": f"name-{i}", "value": i}, 0, fee=0.01,
            )
            chain_net.submit_transaction(tx)
            yield registration_interval

    sim.spawn(submitter())
    rows = []
    t = sample_every
    while t <= horizon:
        sim.run(until=t)
        chain = chain_net.participant("m").chain
        state = chain.state_at()
        live = sum(
            1 for name in state.names
            if state.live_name(name, chain.height) is not None
        )
        rows.append(
            {
                "time_s": t,
                "live_names": live,
                "total_registrations": len(state.names),
                "chain_bytes": chain_size_bytes(chain),
            }
        )
        t += sample_every
    return rows
