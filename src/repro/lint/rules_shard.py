"""SHD001: direct cross-shard state mutation outside ``repro.sim.shard``.

The sharded engine's equivalence guarantee (aggregates equal for every
shard count K, byte-identical double runs) rests on cross-shard traffic
flowing exclusively through the barrier protocol: sends freeze into
``Envelope`` objects in a shard-local outbox, the coordinator carries
them between shards, and injection happens in a deterministic sorted
order.  Code that reaches into that machinery directly — assigning the
outbox (``_shard_outbox``), the partition map (``_shard_assignment``),
or the router's carried set (``_envelopes_in_transit``), or calling the
injection internals (``_inject_envelope`` / ``_arrive_envelope`` /
``_take_outbox``) — moves a message across a shard boundary the
coordinator never sequenced, silently breaking K-invariance in ways no
single-K test can catch.

Exempt: ``repro/sim/shard.py`` itself, where the protocol lives.  The
public surface (``ShardedSimulator.run``, ``ShardNetwork.send``,
``ShardRouter.collect``/``drain``) remains fine everywhere — the rule
targets the internals, not supported API.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import LintContext, Rule, register
from repro.lint.findings import Finding

__all__ = ["CrossShardMutation"]

#: Shard-protocol state attributes nobody outside the exempt module may
#: assign to.
SHARD_STATE_ATTRS = frozenset({
    "_shard_outbox", "_shard_assignment", "_shard_seq",
    "_envelopes_in_transit",
})

#: Barrier-protocol internals only the coordinator may call.
SHARD_INTERNAL_CALLS = frozenset({
    "_inject_envelope", "_arrive_envelope", "_take_outbox",
})


def _is_exempt(ctx: LintContext) -> bool:
    return ctx.is_module("sim", "shard.py")


@register
class CrossShardMutation(Rule):
    rule_id = "SHD001"
    title = "direct cross-shard state mutation outside repro.sim.shard"
    rationale = (
        "Cross-shard messages must travel through the coordinator's"
        " barrier protocol (deterministic envelope ordering); assigning"
        " _shard_outbox / _shard_assignment / _envelopes_in_transit or"
        " calling _inject_envelope directly moves state between shards"
        " unsequenced, breaking the K-invariance the equivalence suite"
        " certifies."
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if _is_exempt(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in SHARD_STATE_ATTRS
                    ):
                        yield ctx.finding(
                            self.rule_id, node,
                            f"assignment to '{target.attr}' bypasses the"
                            " shard barrier protocol; route cross-shard"
                            " state through ShardNetwork.send and the"
                            " coordinator",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in SHARD_INTERNAL_CALLS
                ):
                    yield ctx.finding(
                        self.rule_id, node,
                        f"call to '{func.attr}' outside repro.sim.shard;"
                        " only the shard coordinator may move envelopes"
                        " across shard boundaries",
                    )
