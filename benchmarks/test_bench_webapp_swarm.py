"""E8 — visitor-seeded web application availability (§3.4).

ZeroNet-style sites are "seeded and served by visitors"; the bench sweeps
popularity (offered load = arrival rate x seed retention) and shows the
swarm self-sustains only above a popularity threshold — unpopular hostless
sites die when their author leaves.
"""

from benchmarks.conftest import emit
from repro.analysis import render_table, run_swarm_availability


def test_bench_swarm_availability(benchmark):
    rows = benchmark.pedantic(
        run_swarm_availability,
        kwargs={"seed": 6, "offered_loads": (0.1, 0.5, 1.0, 2.0, 8.0, 32.0)},
        rounds=1, iterations=1,
    )
    emit("E8 — site availability vs offered load (arrivals x seed time)",
         render_table(rows))
    by_load = {row["offered_load"]: row["availability"] for row in rows}
    # Dead zone below load ~1, saturation at high load.
    assert by_load[0.1] < 0.2
    assert by_load[32.0] > 0.95
    # Roughly monotone: higher popularity never hurts (small noise slack).
    loads = sorted(by_load)
    for a, b in zip(loads, loads[1:]):
        assert by_load[b] >= by_load[a] - 0.05


def test_bench_swarm_author_departure(benchmark):
    """Ablation: the author's presence is what keeps unpopular sites up."""

    def compare_author_tenure():
        rows = []
        for leaves_at, label in ((30.0, "early"), (2800.0, "stays")):
            result = run_swarm_availability(
                seed=8, offered_loads=(0.5,), author_leaves_at=leaves_at,
            )[0]
            rows.append(
                {"author": label, "offered_load": 0.5,
                 "availability": result["availability"]}
            )
        return rows

    rows = benchmark.pedantic(compare_author_tenure, rounds=1, iterations=1)
    emit("E8 ablation — unpopular site, author leaves early vs stays",
         render_table(rows))
    by_author = {row["author"]: row["availability"] for row in rows}
    # An always-on author is exactly the centralized crutch: availability
    # jumps from near-dead to near-perfect.
    assert by_author["stays"] > 0.9
    assert by_author["early"] < 0.3
