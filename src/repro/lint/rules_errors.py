"""ERR001: broad exception handlers that swallow programming errors.

The library's contract (:mod:`repro.errors`) is that every expected
failure derives from :class:`~repro.errors.ReproError`, so callers can
recover from simulated faults without masking real bugs.  A bare
``except Exception`` that neither re-raises nor converts to a
:mod:`repro.errors` type silently eats ``TypeError``/``KeyError``-class
programming errors — in a determinism-sensitive simulator, the worst
kind of failure is the one that turns into quietly wrong numbers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import LintContext, Rule, register
from repro.lint.findings import Finding

__all__ = ["BroadExceptSwallowed"]

_BROAD = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # bare except:
        return True
    if isinstance(handler.type, ast.Name) and handler.type.id in _BROAD:
        return True
    if isinstance(handler.type, ast.Tuple):
        return any(
            isinstance(el, ast.Name) and el.id in _BROAD
            for el in handler.type.elts
        )
    return False


def _raises(handler: ast.ExceptHandler) -> bool:
    """Whether any path through the handler body raises."""
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


@register
class BroadExceptSwallowed(Rule):
    rule_id = "ERR001"
    title = "broad 'except Exception' that neither re-raises nor converts"
    rationale = (
        "Catching Exception without re-raising swallows programming"
        " errors (TypeError, KeyError, ...) along with the simulated"
        " fault you meant to recover from. Catch the concrete"
        " repro.errors types the code actually recovers from, or raise a"
        " repro.errors type after catching."
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and _is_broad(node):
                if not _raises(node):
                    caught = (
                        "bare except" if node.type is None
                        else "except Exception"
                    )
                    yield ctx.finding(
                        self.rule_id, node,
                        f"{caught} neither re-raises nor raises a"
                        " repro.errors type; catch the concrete exceptions"
                        " this code recovers from",
                    )
