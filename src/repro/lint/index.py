"""Whole-program index for project-level lint rules.

Per-file rules (:class:`repro.lint.engine.Rule`) see one
:class:`~repro.lint.engine.LintContext` at a time, which makes an entire
class of cross-module determinism bugs invisible: two components drawing
from the *same* named RNG stream (correlated draws — the bug class
DET001 was born from), or a simulated-package function reaching a
wall-clock read through a helper module that DET002's per-file scope
never visits.

This module closes that gap.  :func:`build_fragment` distils one parsed
file into a :class:`ModuleFragment` — symbol table, resolved imports, a
conservative list of outgoing calls per function, direct
wall-clock/global-RNG hazards, and every RNG-stream construction site
with its string literal (or f-string prefix) constant-propagated — and
:class:`ProjectIndex` assembles the fragments of *all* linted files into
the whole-program structures the ``ProjectRule`` pack consumes:

* a module table with dotted-name import resolution,
* a conservative call graph (direct calls, ``self`` methods, imported
  symbols and modules, constructor calls, and bounded method-name
  matching against classes visible in the calling module),
* the runtime import graph (module-level, non-``TYPE_CHECKING``
  imports only — lazy and typing-only imports are the sanctioned
  cycle-breaking patterns and are excluded),
* the global stream-site table used by DET005.

Fragments are plain serializable data (``to_dict``/``from_dict``), which
is what lets the incremental cache (:mod:`repro.lint.cache`) reuse them
across runs without re-parsing unchanged files.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "DATETIME_NOW_ATTRS",
    "NUMPY_GENERATOR_CTORS",
    "NUMPY_SEEDED_OK",
    "SIMULATED_PACKAGES",
    "WALL_CLOCK_ATTRS",
    "CallSite",
    "FunctionInfo",
    "HazardCall",
    "ModuleFragment",
    "ProjectIndex",
    "StreamSite",
    "attr_chain",
    "build_fragment",
]

#: Packages whose code runs inside the simulated world (DET002/DET006
#: scope).
SIMULATED_PACKAGES = ("sim", "net", "chain", "storage", "groupcomm")

#: ``time`` module attributes that read the host clock.
WALL_CLOCK_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
})

#: ``datetime``/``date`` constructors that read the host clock.
DATETIME_NOW_ATTRS = frozenset({"now", "utcnow", "today"})

#: ``numpy.random`` members that are explicitly seeded (allowed).
NUMPY_SEEDED_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "PCG64", "Philox",
    "MT19937", "SFC64", "BitGenerator", "RandomState",
})

#: ``numpy.random`` generator constructors (DET004 scope): seeded, so
#: DET003 allows them — but construction belongs in repro/sim/rng.py.
NUMPY_GENERATOR_CTORS = frozenset({
    "default_rng", "Generator", "PCG64", "Philox", "MT19937", "SFC64",
    "RandomState",
})

#: stdlib ``random`` attributes that do *not* touch the hidden global
#: stream (explicitly seeded constructors).
_RANDOM_SEEDED_OK = frozenset({"Random", "SystemRandom"})

#: The four sanctioned stream-construction APIs DET005 watches.
_STREAM_FREE_FUNCTIONS = frozenset({"seeded_rng", "seeded_generator"})
_STREAM_METHODS = frozenset({"stream", "generator"})


def attr_chain(node: ast.AST) -> Tuple[str, ...]:
    """``a.b.c`` as ``("a", "b", "c")``; empty when not a pure name chain."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


@dataclass(frozen=True)
class StreamSite:
    """One RNG-stream construction site with its propagated name.

    ``prefix`` is the full name when ``exact`` is true, otherwise the
    literal f-string/concatenation prefix before the first dynamic part.
    ``root`` is the root seed when it constant-propagates to an integer
    literal (``seeded_rng(4001, ...)``, ``RngStreams(3001).stream(...)``)
    and ``None`` when it is only known at run time — an unknown root can
    share a seed root with any other site.
    """

    api: str
    prefix: str
    exact: bool
    root: Optional[int]
    line: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "api": self.api, "prefix": self.prefix, "exact": self.exact,
            "root": self.root, "line": self.line, "col": self.col,
        }

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "StreamSite":
        return StreamSite(
            api=doc["api"], prefix=doc["prefix"], exact=doc["exact"],
            root=doc["root"], line=doc["line"], col=doc["col"],
        )


@dataclass(frozen=True)
class HazardCall:
    """A direct nondeterminism source inside one function body."""

    kind: str  # "wall_clock" | "global_rng"
    detail: str  # e.g. "time.perf_counter", "random.shuffle"
    line: int

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "detail": self.detail, "line": self.line}

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "HazardCall":
        return HazardCall(kind=doc["kind"], detail=doc["detail"],
                          line=doc["line"])


@dataclass(frozen=True)
class CallSite:
    """One outgoing call recorded in a function body, pre-resolution.

    ``kind`` is ``"name"`` (bare ``f()``), ``"self"`` (``self.m()``),
    ``"attr"`` (``base.chain.m()``), or ``"ctor"`` (``Cls().m()`` — the
    constructor name rides in ``base``).
    """

    kind: str
    name: str
    base: Tuple[str, ...] = ()
    line: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "name": self.name,
                "base": list(self.base), "line": self.line}

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "CallSite":
        return CallSite(kind=doc["kind"], name=doc["name"],
                        base=tuple(doc["base"]), line=doc["line"])


@dataclass
class FunctionInfo:
    """Symbol-table entry for one function or method."""

    name: str
    qname: str  # module-relative: "f" or "Cls.m"
    cls: Optional[str]
    line: int
    col: int
    calls: List[CallSite] = field(default_factory=list)
    hazards: List[HazardCall] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "qname": self.qname, "cls": self.cls,
            "line": self.line, "col": self.col,
            "calls": [c.to_dict() for c in self.calls],
            "hazards": [h.to_dict() for h in self.hazards],
        }

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "FunctionInfo":
        return FunctionInfo(
            name=doc["name"], qname=doc["qname"], cls=doc["cls"],
            line=doc["line"], col=doc["col"],
            calls=[CallSite.from_dict(c) for c in doc["calls"]],
            hazards=[HazardCall.from_dict(h) for h in doc["hazards"]],
        )


@dataclass
class ModuleFragment:
    """Everything the project rules need to know about one file.

    Pure data: serializable, picklable, and rebuildable from cache
    without the source or the AST.
    """

    path: str
    module: str
    package: str
    is_package: bool
    module_parts: Tuple[str, ...]
    #: module-level, non-TYPE_CHECKING imports: (dotted target, line).
    runtime_imports: List[Tuple[str, int]] = field(default_factory=list)
    #: local binding -> dotted module (``import a.b as c``; plain
    #: ``import a.b`` binds the full dotted path for prefix matching).
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: local binding -> (module, symbol) for ``from module import symbol``.
    symbol_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    functions: List[FunctionInfo] = field(default_factory=list)
    #: top-level class -> its method names.
    classes: Dict[str, List[str]] = field(default_factory=dict)
    stream_sites: List[StreamSite] = field(default_factory=list)

    def in_package(self, *names: str) -> bool:
        """Whether any directory component of the module path is in
        ``names`` (mirrors :meth:`LintContext.in_package`)."""
        return any(part in names for part in self.module_parts[:-1])

    def is_module(self, *tail: str) -> bool:
        """Whether the module path ends with the given components."""
        n = len(tail)
        return n > 0 and self.module_parts[-n:] == tuple(tail)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "package": self.package,
            "is_package": self.is_package,
            "module_parts": list(self.module_parts),
            "runtime_imports": [[m, line] for m, line in self.runtime_imports],
            "module_aliases": dict(self.module_aliases),
            "symbol_imports": {
                k: [m, s] for k, (m, s) in self.symbol_imports.items()
            },
            "functions": [f.to_dict() for f in self.functions],
            "classes": {k: list(v) for k, v in self.classes.items()},
            "stream_sites": [s.to_dict() for s in self.stream_sites],
        }

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "ModuleFragment":
        return ModuleFragment(
            path=doc["path"],
            module=doc["module"],
            package=doc["package"],
            is_package=doc["is_package"],
            module_parts=tuple(doc["module_parts"]),
            runtime_imports=[(m, line) for m, line in doc["runtime_imports"]],
            module_aliases=dict(doc["module_aliases"]),
            symbol_imports={
                k: (v[0], v[1]) for k, v in doc["symbol_imports"].items()
            },
            functions=[FunctionInfo.from_dict(f) for f in doc["functions"]],
            classes={k: list(v) for k, v in doc["classes"].items()},
            stream_sites=[StreamSite.from_dict(s) for s in doc["stream_sites"]],
        )


def _module_identity(path: str) -> Tuple[str, str, bool, Tuple[str, ...]]:
    """Derive (dotted module, parent package, is_package, module_parts).

    Paths inside a ``repro`` tree are named from the last ``repro``
    component (``.../src/repro/sim/rng.py`` -> ``repro.sim.rng``) so the
    index is stable regardless of where the checkout lives.  Other paths
    (fixtures, tests) walk up through ``__init__.py`` markers to find
    their package root; a bare file is its own single-segment module.
    """
    parts: Tuple[str, ...] = Path(path).parts
    if "repro" in parts:
        last = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        module_parts = parts[last:]
        names = list(module_parts[:-1])
        leaf = module_parts[-1]
        is_package = leaf == "__init__.py"
        if not is_package:
            names.append(leaf[:-3] if leaf.endswith(".py") else leaf)
        module = ".".join(names)
        package = ".".join(names[:-1])
        return module, package, is_package, module_parts
    file_path = Path(path)
    module_parts = parts
    leaf = file_path.name
    is_package = leaf == "__init__.py"
    names = [] if is_package else [file_path.stem or "_module"]
    directory = file_path.parent
    try:
        while directory.name and (directory / "__init__.py").is_file():
            names.insert(0, directory.name)
            directory = directory.parent
    except OSError:  # pragma: no cover - unreadable parent directories
        pass
    if not names:
        names = [directory.name or "_module"]
    module = ".".join(names)
    package = ".".join(names[:-1])
    return module, package, is_package, module_parts


def _is_type_checking_test(test: ast.expr) -> bool:
    """``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:`` guards."""
    chain = attr_chain(test)
    return bool(chain) and chain[-1] == "TYPE_CHECKING"


class _ScopeConstants:
    """Single-assignment string/int literals, for constant propagation."""

    def __init__(self, parent: Optional["_ScopeConstants"] = None):
        self._parent = parent
        self._values: Dict[str, Any] = {}
        self._poisoned: Set[str] = set()

    def collect(self, body: Sequence[ast.stmt]) -> None:
        for node in body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    self._record(target.id, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    self._record(node.target.id, node.value)
            elif isinstance(node, (ast.AugAssign, ast.For)):
                target = getattr(node, "target", None)
                if isinstance(target, ast.Name):
                    self._poison(target.id)

    def _record(self, name: str, value: ast.expr) -> None:
        if name in self._poisoned:
            return
        if name in self._values:
            self._poison(name)
            return
        if isinstance(value, ast.Constant) and isinstance(
            value.value, (str, int)
        ) and not isinstance(value.value, bool):
            self._values[name] = value.value
        elif isinstance(value, ast.Call):
            chain = attr_chain(value.func)
            if chain and chain[-1] == "RngStreams" and value.args and (
                isinstance(value.args[0], ast.Constant)
                and isinstance(value.args[0].value, int)
                and not isinstance(value.args[0].value, bool)
            ):
                self._values[name] = ("RngStreams", value.args[0].value)
            else:
                self._poison(name)
        else:
            self._poison(name)

    def _poison(self, name: str) -> None:
        self._poisoned.add(name)
        self._values.pop(name, None)

    def lookup(self, name: str) -> Optional[Any]:
        if name in self._poisoned:
            return None
        if name in self._values:
            return self._values[name]
        if self._parent is not None:
            return self._parent.lookup(name)
        return None


def _literal_string(
    expr: ast.expr, scope: _ScopeConstants
) -> Optional[Tuple[str, bool]]:
    """Resolve ``expr`` to (prefix, exact) when it is a string literal,
    an f-string (literal prefix, exact when fully literal), a ``+``
    concatenation of resolvable parts, or a name bound once to one."""
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, str):
            return expr.value, True
        return None
    if isinstance(expr, ast.JoinedStr):
        prefix = ""
        for value in expr.values:
            if isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                prefix += value.value
            else:
                return prefix, False
        return prefix, True
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
        left = _literal_string(expr.left, scope)
        if left is None:
            return None
        left_prefix, left_exact = left
        if not left_exact:
            return left_prefix, False
        right = _literal_string(expr.right, scope)
        if right is None:
            return left_prefix, False
        return left_prefix + right[0], right[1]
    if isinstance(expr, ast.Name):
        value = scope.lookup(expr.id)
        if isinstance(value, str):
            return value, True
        return None
    return None


def _literal_root(
    expr: ast.expr, scope: _ScopeConstants
) -> Optional[int]:
    """Resolve a root-seed expression to an integer literal when possible."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, int) and (
        not isinstance(expr.value, bool)
    ):
        return expr.value
    if isinstance(expr, ast.Name):
        value = scope.lookup(expr.id)
        if isinstance(value, int) and not isinstance(value, bool):
            return value
    return None


class _ImportCollector:
    """Walks the module body, splitting runtime imports from lazy or
    typing-only ones while recording every alias for call resolution."""

    def __init__(self, module: str, package: str, is_package: bool):
        self._base_package = module if is_package else package
        self.runtime_imports: List[Tuple[str, int]] = []
        self.module_aliases: Dict[str, str] = {}
        self.symbol_imports: Dict[str, Tuple[str, str]] = {}

    def collect(self, body: Sequence[ast.stmt], runtime: bool = True) -> None:
        for node in body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name] = alias.name
                    if runtime:
                        self.runtime_imports.append((alias.name, node.lineno))
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node)
                if base is None:
                    continue
                if runtime:
                    self.runtime_imports.append((base, node.lineno))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.symbol_imports[alias.asname or alias.name] = (
                        base, alias.name
                    )
            elif isinstance(node, ast.If):
                in_runtime = runtime and not _is_type_checking_test(node.test)
                self.collect(node.body, in_runtime)
                self.collect(node.orelse, runtime)
            elif isinstance(node, ast.Try):
                self.collect(node.body, runtime)
                for handler in node.handlers:
                    self.collect(handler.body, runtime)
                self.collect(node.orelse, runtime)
                self.collect(node.finalbody, runtime)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.collect(node.body, runtime=False)
            elif isinstance(node, ast.ClassDef):
                self.collect(node.body, runtime=False)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                self.collect(node.body, runtime)

    def _resolve_from(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        base_parts = self._base_package.split(".") if self._base_package else []
        up = node.level - 1
        if up > len(base_parts):
            return None
        kept = base_parts[: len(base_parts) - up]
        if node.module:
            kept.append(node.module)
        return ".".join(kept) if kept else None


class _BodyScanner:
    """Extracts calls, hazards, and stream sites from one scope."""

    def __init__(
        self,
        collector: _ImportCollector,
        stdlib_random_aliases: Set[str],
        random_fn_aliases: Dict[str, str],
        numpy_aliases: Set[str],
        numpy_random_aliases: Set[str],
        clock_aliases: Dict[str, str],
    ):
        self._collector = collector
        self._stdlib_random = stdlib_random_aliases
        self._random_fns = random_fn_aliases
        self._numpy = numpy_aliases
        self._numpy_random = numpy_random_aliases
        self._clocks = clock_aliases

    def scan(
        self, nodes: Sequence[ast.AST], scope: _ScopeConstants
    ) -> Tuple[List[CallSite], List[HazardCall], List[StreamSite]]:
        calls: List[CallSite] = []
        hazards: List[HazardCall] = []
        sites: List[StreamSite] = []
        for root in nodes:
            for node in ast.walk(root):
                if not isinstance(node, ast.Call):
                    continue
                chain = attr_chain(node.func)
                call = self._call_site(node, chain)
                if call is not None:
                    calls.append(call)
                hazard = self._hazard(node, chain)
                if hazard is not None:
                    hazards.append(hazard)
                site = self._stream_site(node, chain, scope)
                if site is not None:
                    sites.append(site)
        return calls, hazards, sites

    def _call_site(
        self, node: ast.Call, chain: Tuple[str, ...]
    ) -> Optional[CallSite]:
        if len(chain) == 1:
            return CallSite("name", chain[0], (), node.lineno)
        if len(chain) == 2 and chain[0] == "self":
            return CallSite("self", chain[1], (), node.lineno)
        if len(chain) >= 2:
            return CallSite("attr", chain[-1], chain[:-1], node.lineno)
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Call):
            inner = attr_chain(func.value.func)
            if len(inner) == 1:
                return CallSite("ctor", func.attr, (inner[0],), node.lineno)
        return None

    def _hazard(
        self, node: ast.Call, chain: Tuple[str, ...]
    ) -> Optional[HazardCall]:
        if len(chain) >= 2:
            if chain[-2] == "time" and chain[-1] in WALL_CLOCK_ATTRS:
                return HazardCall("wall_clock", ".".join(chain[-2:]),
                                  node.lineno)
            if chain[-1] in DATETIME_NOW_ATTRS and chain[-2] in (
                "datetime", "date"
            ):
                return HazardCall("wall_clock", ".".join(chain[-2:]),
                                  node.lineno)
        if len(chain) == 1 and chain[0] in self._clocks:
            return HazardCall("wall_clock", self._clocks[chain[0]],
                              node.lineno)
        if len(chain) == 2 and chain[0] in self._stdlib_random and (
            chain[1] not in _RANDOM_SEEDED_OK
        ):
            return HazardCall("global_rng", f"random.{chain[1]}", node.lineno)
        if len(chain) == 1 and chain[0] in self._random_fns:
            return HazardCall("global_rng", self._random_fns[chain[0]],
                              node.lineno)
        if len(chain) == 3 and chain[0] in self._numpy and (
            chain[1] == "random"
        ) and chain[2] not in NUMPY_SEEDED_OK:
            return HazardCall("global_rng", f"numpy.random.{chain[2]}",
                              node.lineno)
        if len(chain) == 2 and chain[0] in self._numpy_random and (
            chain[1] not in NUMPY_SEEDED_OK
        ):
            return HazardCall("global_rng", f"numpy.random.{chain[1]}",
                              node.lineno)
        return None

    def _stream_site(
        self, node: ast.Call, chain: Tuple[str, ...],
        scope: _ScopeConstants,
    ) -> Optional[StreamSite]:
        api: Optional[str] = None
        name_arg: Optional[ast.expr] = None
        root: Optional[int] = None
        if len(chain) == 1:
            resolved = self._collector.symbol_imports.get(chain[0])
            target = resolved[1] if resolved else chain[0]
            if target in _STREAM_FREE_FUNCTIONS and (
                chain[0] in _STREAM_FREE_FUNCTIONS or resolved is not None
            ):
                api = target
                name_arg = self._argument(node, 1, "name")
                if node.args:
                    root = _literal_root(node.args[0], scope)
        elif len(chain) >= 2 and chain[-1] in _STREAM_METHODS:
            api = chain[-1]
            name_arg = self._argument(node, 0, "name")
            if len(chain) == 2:
                receiver = scope.lookup(chain[0])
                if isinstance(receiver, tuple) and receiver[0] == "RngStreams":
                    root = receiver[1]
        elif not chain and isinstance(node.func, ast.Attribute) and (
            node.func.attr in _STREAM_METHODS
        ) and isinstance(node.func.value, ast.Call):
            # chained construction: RngStreams(seed).stream("name")
            api = node.func.attr
            name_arg = self._argument(node, 0, "name")
            inner = node.func.value
            inner_chain = attr_chain(inner.func)
            if inner_chain and inner.args:
                ctor = inner_chain[-1]
                resolved_ctor = self._collector.symbol_imports.get(ctor)
                if resolved_ctor is not None and len(inner_chain) == 1:
                    ctor = resolved_ctor[1]
                if ctor == "RngStreams":
                    root = _literal_root(inner.args[0], scope)
        if api is None or name_arg is None:
            return None
        literal = _literal_string(name_arg, scope)
        if literal is None:
            return None
        prefix, exact = literal
        return StreamSite(api=api, prefix=prefix, exact=exact, root=root,
                          line=node.lineno, col=node.col_offset)

    @staticmethod
    def _argument(
        node: ast.Call, position: int, keyword: str
    ) -> Optional[ast.expr]:
        if len(node.args) > position:
            return node.args[position]
        for kw in node.keywords:
            if kw.arg == keyword:
                return kw.value
        return None


def build_fragment(path: str, source: str, tree: ast.Module) -> ModuleFragment:
    """Distil one parsed file into its :class:`ModuleFragment`."""
    module, package, is_package, module_parts = _module_identity(path)
    collector = _ImportCollector(module, package, is_package)
    collector.collect(tree.body)

    stdlib_random: Set[str] = set()
    random_fns: Dict[str, str] = {}
    numpy_aliases: Set[str] = set()
    numpy_random: Set[str] = set()
    clocks: Dict[str, str] = {}
    for local, target in collector.module_aliases.items():
        if target == "random":
            stdlib_random.add(local.split(".")[0] if local == target else local)
        elif target == "numpy":
            numpy_aliases.add(local if local != target else "numpy")
        elif target == "numpy.random":
            if local != target:
                numpy_random.add(local)
            else:
                numpy_aliases.add("numpy")
    for local, (mod, sym) in collector.symbol_imports.items():
        if mod == "time" and sym in WALL_CLOCK_ATTRS:
            clocks[local] = f"time.{sym}"
        elif mod == "random" and sym not in _RANDOM_SEEDED_OK:
            random_fns[local] = f"random.{sym}"
        elif mod == "numpy" and sym == "random":
            numpy_random.add(local)

    scanner = _BodyScanner(
        collector, stdlib_random, random_fns, numpy_aliases, numpy_random,
        clocks,
    )
    module_scope = _ScopeConstants()
    module_scope.collect(tree.body)

    functions: List[FunctionInfo] = []
    classes: Dict[str, List[str]] = {}
    stream_sites: List[StreamSite] = []

    def add_function(
        node: ast.AST, cls: Optional[str]
    ) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        scope = _ScopeConstants(module_scope)
        scope.collect(node.body)
        calls, hazards, sites = scanner.scan(node.body, scope)
        qname = f"{cls}.{node.name}" if cls else node.name
        functions.append(FunctionInfo(
            name=node.name, qname=qname, cls=cls,
            line=node.lineno, col=node.col_offset,
            calls=calls, hazards=hazards,
        ))
        stream_sites.extend(sites)

    module_level: List[ast.stmt] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_function(node, None)
        elif isinstance(node, ast.ClassDef):
            methods: List[str] = []
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.append(item.name)
                    add_function(item, node.name)
            classes[node.name] = methods
        else:
            module_level.append(node)
    _calls, _hazards, module_sites = scanner.scan(module_level, module_scope)
    stream_sites.extend(module_sites)
    stream_sites.sort(key=lambda s: (s.line, s.col))

    return ModuleFragment(
        path=path,
        module=module,
        package=package,
        is_package=is_package,
        module_parts=module_parts,
        runtime_imports=collector.runtime_imports,
        module_aliases=collector.module_aliases,
        symbol_imports=collector.symbol_imports,
        functions=functions,
        classes=classes,
        stream_sites=stream_sites,
    )


class ProjectIndex:
    """The whole-program view: every fragment, cross-resolved.

    ``functions`` maps fully qualified names (``repro.net.churn.renew``,
    ``repro.storage.replication.ReplicatedBlobStore.store``) to their
    (fragment, info) pairs; :meth:`call_edges` resolves one function's
    recorded call sites against the whole index; :meth:`import_graph`
    and :meth:`hazard_routes` are the precomputed structures IMP001 and
    DET006 consume.
    """

    def __init__(self, fragments: Sequence[ModuleFragment]):
        self.fragments: List[ModuleFragment] = sorted(
            fragments, key=lambda f: f.path
        )
        self.modules: Dict[str, ModuleFragment] = {}
        for fragment in self.fragments:
            self.modules.setdefault(fragment.module, fragment)
        self.functions: Dict[str, Tuple[ModuleFragment, FunctionInfo]] = {}
        self.classes: Dict[str, List[str]] = {}
        self._methods_by_name: Dict[str, List[str]] = {}
        for fragment in self.fragments:
            if self.modules[fragment.module] is not fragment:
                continue  # duplicate module name; first (sorted) path wins
            for info in fragment.functions:
                self.functions.setdefault(
                    f"{fragment.module}.{info.qname}", (fragment, info)
                )
            for cls, methods in fragment.classes.items():
                self.classes.setdefault(f"{fragment.module}.{cls}", methods)
        self._edges: Dict[str, Tuple[str, ...]] = {}

    # -- import graph -----------------------------------------------------

    def import_graph(self) -> Dict[str, List[Tuple[str, int]]]:
        """Runtime import edges restricted to indexed modules.

        ``from M import sym`` resolves to the submodule ``M.sym`` when
        that module is indexed (importing the symbol executes it),
        otherwise to ``M`` itself.
        """
        graph: Dict[str, List[Tuple[str, int]]] = {}
        for fragment in self.fragments:
            if self.modules[fragment.module] is not fragment:
                continue
            edges: List[Tuple[str, int]] = []
            seen: Set[str] = set()
            submodules: Dict[Tuple[str, int], List[str]] = {}
            for local, (mod, sym) in fragment.symbol_imports.items():
                if f"{mod}.{sym}" in self.modules:
                    submodules.setdefault((mod, 0), []).append(f"{mod}.{sym}")
            for target, line in fragment.runtime_imports:
                candidates = [target]
                for sub in submodules.get((target, 0), []):
                    candidates.append(sub)
                for candidate in candidates:
                    if candidate == fragment.module or candidate in seen:
                        continue
                    if candidate in self.modules:
                        seen.add(candidate)
                        edges.append((candidate, line))
            graph[fragment.module] = sorted(edges)
        return graph

    # -- call graph -------------------------------------------------------

    def call_edges(self, qname: str) -> Tuple[str, ...]:
        """Resolved outgoing edges of one function, sorted and cached."""
        cached = self._edges.get(qname)
        if cached is not None:
            return cached
        entry = self.functions.get(qname)
        if entry is None:
            self._edges[qname] = ()
            return ()
        fragment, info = entry
        targets: Set[str] = set()
        for call in info.calls:
            targets.update(self._resolve_call(fragment, info, call))
        targets.discard(qname)
        edges = tuple(sorted(targets))
        self._edges[qname] = edges
        return edges

    def _resolve_class(
        self, fragment: ModuleFragment, name: str
    ) -> Optional[str]:
        if name in fragment.classes:
            return f"{fragment.module}.{name}"
        imported = fragment.symbol_imports.get(name)
        if imported is not None:
            candidate = f"{imported[0]}.{imported[1]}"
            if candidate in self.classes:
                return candidate
        return None

    def _visible_classes(self, fragment: ModuleFragment) -> List[str]:
        visible = {f"{fragment.module}.{cls}" for cls in fragment.classes}
        for local, (mod, sym) in fragment.symbol_imports.items():
            candidate = f"{mod}.{sym}"
            if candidate in self.classes:
                visible.add(candidate)
        return sorted(visible)

    def _resolve_call(
        self, fragment: ModuleFragment, info: FunctionInfo, call: CallSite
    ) -> List[str]:
        module = fragment.module
        if call.kind == "name":
            local = f"{module}.{call.name}"
            if local in self.functions:
                return [local]
            cls = self._resolve_class(fragment, call.name)
            if cls is not None:
                init = f"{cls}.__init__"
                return [init] if init in self.functions else []
            imported = fragment.symbol_imports.get(call.name)
            if imported is not None:
                candidate = f"{imported[0]}.{imported[1]}"
                if candidate in self.functions:
                    return [candidate]
            return []
        if call.kind == "self":
            if info.cls is not None:
                candidate = f"{module}.{info.cls}.{call.name}"
                if candidate in self.functions:
                    return [candidate]
            return []
        if call.kind == "ctor":
            cls = self._resolve_class(fragment, call.base[0])
            if cls is not None:
                candidate = f"{cls}.{call.name}"
                if candidate in self.functions:
                    return [candidate]
            return []
        # attr: module-path calls, class statics, then bounded
        # method-name matching against classes visible in this module.
        base = call.base
        for k in range(len(base), 0, -1):
            prefix = ".".join(base[:k])
            target_module = fragment.module_aliases.get(prefix)
            if target_module is None and k == 1:
                imported = fragment.symbol_imports.get(base[0])
                if imported is not None and (
                    f"{imported[0]}.{imported[1]}" in self.modules
                ):
                    target_module = f"{imported[0]}.{imported[1]}"
            if target_module is not None:
                rest = ".".join(base[k:])
                full = target_module + ("." + rest if rest else "")
                candidate = f"{full}.{call.name}"
                return [candidate] if candidate in self.functions else []
        if len(base) == 1:
            cls = self._resolve_class(fragment, base[0])
            if cls is not None:
                candidate = f"{cls}.{call.name}"
                return [candidate] if candidate in self.functions else []
        candidates = []
        for cls_qname in self._visible_classes(fragment):
            candidate = f"{cls_qname}.{call.name}"
            if candidate in self.functions:
                candidates.append(candidate)
        return candidates

    # -- hazard routing (DET006) -----------------------------------------

    def hazard_routes(self) -> Dict[str, Tuple[str, str, HazardCall]]:
        """For every function that can reach a nondeterminism hazard in a
        *non-simulated* module, the first hop toward it.

        Returns ``{qname: (next_qname, endpoint_qname, hazard)}`` built
        by a reverse BFS from the hazard endpoints, so lookups and path
        reconstruction are O(path length).  Endpoints themselves are not
        included (a direct hazard is per-file territory, not DET006's).
        """
        reverse: Dict[str, List[str]] = {}
        for qname in sorted(self.functions):
            for target in self.call_edges(qname):
                reverse.setdefault(target, []).append(qname)
        routes: Dict[str, Tuple[str, str, HazardCall]] = {}
        frontier: List[str] = []
        for qname in sorted(self.functions):
            fragment, info = self.functions[qname]
            if not info.hazards:
                continue
            if fragment.in_package(*SIMULATED_PACKAGES):
                continue
            hazard = min(info.hazards, key=lambda h: (h.line, h.detail))
            for caller in sorted(reverse.get(qname, ())):
                if caller not in routes:
                    routes[caller] = (qname, qname, hazard)
                    frontier.append(caller)
        while frontier:
            next_frontier: List[str] = []
            for qname in frontier:
                hop = routes[qname]
                for caller in sorted(reverse.get(qname, ())):
                    if caller not in routes:
                        routes[caller] = (qname, hop[1], hop[2])
                        next_frontier.append(caller)
            frontier = next_frontier
        return routes

    def hazard_chain(
        self, qname: str, routes: Dict[str, Tuple[str, str, HazardCall]]
    ) -> List[str]:
        """The call chain from ``qname`` to its hazard endpoint."""
        chain = [qname]
        seen = {qname}
        current = qname
        while current in routes:
            current = routes[current][0]
            if current in seen:  # pragma: no cover - routes are acyclic
                break
            seen.add(current)
            chain.append(current)
        return chain

    # -- stream sites (DET005) -------------------------------------------

    def stream_sites(self) -> Iterator[Tuple[ModuleFragment, StreamSite]]:
        """Every stream construction site, in (path, line, col) order."""
        for fragment in self.fragments:
            if self.modules[fragment.module] is not fragment:
                continue
            for site in fragment.stream_sites:
                yield fragment, site
