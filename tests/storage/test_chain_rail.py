"""Tests for the on-chain payment rail (ChainRail) used by Table 2's
blockchain-based storage systems."""

import pytest

from repro.chain import BlockchainNetwork, ConsensusParams
from repro.crypto import generate_keypair
from repro.errors import ContractError
from repro.sim import RngStreams, Simulator
from repro.storage import ChainRail

FAST = ConsensusParams(
    target_block_interval=10.0, retarget_interval=100, initial_difficulty=100.0
)


def setup_chain(seed=1):
    sim = Simulator()
    streams = RngStreams(seed)
    consumer = generate_keypair(f"rail-consumer-{seed}")
    provider = generate_keypair(f"rail-provider-{seed}")
    chain_net = BlockchainNetwork(
        sim, streams, params=FAST, propagation_delay=0.3,
        premine={consumer.public_key: 100.0, provider.public_key: 10.0},
    )
    chain_net.add_participant("m1", hashrate=10.0)
    chain_net.add_participant("m2", hashrate=10.0)
    chain_net.start()
    rail = ChainRail(
        chain_net, chain_net.participant("m1"),
        keypairs={"consumer": consumer, "provider": provider},
        confirmations=2,
    )
    return sim, chain_net, rail, consumer, provider


class TestChainRail:
    def test_escrow_open_confirms_on_chain(self):
        sim, chain_net, rail, consumer, provider = setup_chain()

        def scenario():
            yield from rail.open_escrow("deal-1", "consumer", 20.0, provider="provider")
            return rail.balance("consumer")

        balance = sim.run_process(scenario(), until=50_000.0)
        # Escrow + fee deducted from the consumer's on-chain balance.
        assert balance < 80.0
        state = chain_net.participant("m1").chain.state_at()
        contract = state.contracts["deal-1"]
        assert contract.escrow == pytest.approx(20.0)
        assert not contract.closed

    def test_close_pays_provider_share(self):
        sim, chain_net, rail, consumer, provider = setup_chain(seed=2)

        def scenario():
            yield from rail.open_escrow("deal-1", "consumer", 20.0, provider="provider")
            yield from rail.close_with_share("deal-1", "consumer", 0.75)
            return rail.balance("provider")

        provider_balance = sim.run_process(scenario(), until=100_000.0)
        assert provider_balance == pytest.approx(10.0 + 15.0)
        state = chain_net.participant("m1").chain.state_at()
        assert state.contracts["deal-1"].closed

    def test_escrow_latency_is_confirmation_bound(self):
        # The blockchain rail pays the §3.3 latency cost: opening escrow
        # takes block confirmations, not a round trip.
        sim, chain_net, rail, consumer, provider = setup_chain(seed=3)

        def scenario():
            start = sim.now
            yield from rail.open_escrow("deal-1", "consumer", 5.0, provider="provider")
            return sim.now - start

        elapsed = sim.run_process(scenario(), until=50_000.0)
        assert elapsed >= FAST.target_block_interval / 2  # >= ~1 block

    def test_unknown_account_rejected(self):
        sim, chain_net, rail, consumer, provider = setup_chain(seed=4)
        with pytest.raises(ContractError):
            rail.balance("stranger")

    def test_double_open_rejected_by_ledger(self):
        sim, chain_net, rail, consumer, provider = setup_chain(seed=5)

        def scenario():
            yield from rail.open_escrow("deal-1", "consumer", 5.0, provider="provider")
            try:
                yield from rail.open_escrow("deal-1", "consumer", 5.0, provider="provider")
            except ContractError:
                return "rejected"

        assert sim.run_process(scenario(), until=100_000.0) == "rejected"
