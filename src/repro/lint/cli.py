"""``python -m repro lint``: the linter's command-line front end.

Exit codes: 0 clean, 1 findings, 2 usage error (unknown rule or path).

Linting is incremental by default: per-file results and index fragments
are cached under ``.repro_lint_cache`` (override with ``--cache-dir`` or
``$REPRO_LINT_CACHE_DIR``) keyed by content hash and rule-pack version,
so a warm run of an unchanged tree parses nothing.  ``--no-cache``
bypasses the cache entirely; ``--jobs`` parses cache misses in parallel.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Any, List, Optional, Sequence

from repro.lint.cache import LintCache
from repro.lint.engine import (
    LintError,
    LintStats,
    all_rules,
    lint_paths,
    resolve_rules,
)
from repro.lint.reporters import render_human, render_json

__all__ = ["add_lint_arguments", "default_lint_path", "run_lint"]


def default_lint_path() -> str:
    """The installed ``repro`` package directory, so ``python -m repro
    lint`` with no arguments checks the library from any cwd."""
    import repro

    return str(Path(repro.__file__).parent)


def add_lint_arguments(parser: Any) -> None:
    """Attach the lint options to an ``argparse`` (sub)parser."""
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the incremental cache: parse and check everything",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="incremental cache location (default: .repro_lint_cache,"
             " or $REPRO_LINT_CACHE_DIR)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parse files with N worker processes (0 = auto, default: 1)",
    )


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.rule_id}  {rule.title}")
        lines.append(f"        {rule.rationale}")
    return "\n".join(lines)


def run_lint(args: Any) -> int:
    """Execute the lint command from parsed arguments."""
    if args.list_rules:
        print(_list_rules())
        return 0
    selection: Optional[List[str]] = None
    if args.rules is not None:
        selection = [r for r in args.rules.split(",") if r.strip()]
    paths: Sequence[str] = args.paths or [default_lint_path()]
    cache: Optional[LintCache] = None
    if not args.no_cache:
        cache = LintCache(args.cache_dir)
    stats = LintStats()
    try:
        rules = resolve_rules(selection)
        findings = lint_paths(paths, rules=rules, cache=cache,
                              jobs=args.jobs, stats=stats)
    except LintError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings))
    else:
        rendered = render_human(findings)
        if rendered:
            print(rendered)
        else:
            checked = ", ".join(str(p) for p in paths)
            print(f"lint: clean ({len(rules)} rule(s) over {checked})")
        print(
            f"lint: {stats.files} file(s), {stats.parsed} parsed,"
            f" {stats.cache_hits} cached", file=sys.stderr,
        )
    return 1 if findings else 0
