"""Negative fixture: violates no rule."""

__all__ = ["double", "halve"]


def double(x: int) -> int:
    return 2 * x


def halve(x: int) -> float:
    try:
        return x / 2
    except TypeError:
        raise
