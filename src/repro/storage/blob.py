"""Data blobs: chunked, content-addressed, Merkle-committed.

The unit of storage throughout §3.3's systems.  Chunks are real bytes —
storage proofs (:mod:`repro.storage.proofs`) challenge actual chunk data
against the Merkle commitment, so a provider that drops bytes genuinely
cannot answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.crypto.hashing import sha256_hex
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.errors import StorageError
from repro.sim.rng import RngStreams

__all__ = ["DataBlob", "make_random_blob"]

DEFAULT_CHUNK_SIZE = 1024


@dataclass(frozen=True)
class DataBlob:
    """An immutable chunked blob with its Merkle commitment."""

    chunks: Tuple[bytes, ...]
    chunk_size: int

    def __post_init__(self) -> None:
        if not self.chunks:
            raise StorageError("a blob needs at least one chunk")

    @property
    def size_bytes(self) -> int:
        return sum(len(c) for c in self.chunks)

    @property
    def content_id(self) -> str:
        """The content address (hash of all chunk hashes, order-sensitive)."""
        return sha256_hex(
            ":".join(sha256_hex(c) for c in self.chunks).encode("utf-8")
        )

    @property
    def merkle_root(self) -> str:
        return self._tree().root

    def _tree(self) -> MerkleTree:
        return MerkleTree(list(self.chunks))

    def proof_for(self, index: int) -> MerkleProof:
        return self._tree().proof(index)

    def verify_chunk(self, index: int, chunk: bytes, proof: MerkleProof) -> bool:
        """Does (chunk, proof) open the commitment at this index?"""
        if proof.leaf_index != index:
            return False
        from repro.crypto.merkle import _leaf_hash

        if proof.leaf_hash != _leaf_hash(chunk):
            return False
        return proof.verify(self.merkle_root)

    @staticmethod
    def from_bytes(data: bytes, chunk_size: int = DEFAULT_CHUNK_SIZE) -> "DataBlob":
        if not data:
            raise StorageError("cannot make a blob from empty data")
        if chunk_size <= 0:
            raise StorageError(f"chunk size must be positive: {chunk_size}")
        chunks = tuple(
            data[i:i + chunk_size] for i in range(0, len(data), chunk_size)
        )
        return DataBlob(chunks=chunks, chunk_size=chunk_size)

    def to_bytes(self) -> bytes:
        return b"".join(self.chunks)


def make_random_blob(
    streams: RngStreams,
    size_bytes: int,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    name: str = "blob",
) -> DataBlob:
    """A reproducible random blob (incompressible: generation attacks on
    it cannot cheat by re-deriving content)."""
    if size_bytes <= 0:
        raise StorageError(f"blob size must be positive: {size_bytes}")
    rng = streams.stream(f"blob.{name}")
    data = bytes(rng.getrandbits(8) for _ in range(size_bytes))
    return DataBlob.from_bytes(data, chunk_size)
