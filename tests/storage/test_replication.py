"""Tests for replica maintenance under churn (the E9 machinery)."""

import pytest

from repro.errors import StorageError
from repro.net import ChurnProfile, ConstantLatency, Network, attach_churn
from repro.sim import RngStreams, Simulator
from repro.storage import ReplicatedBlobStore, StorageProvider, make_random_blob


def setup_pool(seed=1, n_providers=10, replication_factor=3, check_interval=30.0):
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams, latency=ConstantLatency(0.01))
    providers = [StorageProvider(network, f"p{i}") for i in range(n_providers)]
    store = ReplicatedBlobStore(
        network, providers, streams,
        replication_factor=replication_factor,
        check_interval=check_interval,
    )
    return sim, streams, network, providers, store


class TestPlacementAndRetrieval:
    def test_store_places_r_replicas(self):
        sim, streams, network, providers, store = setup_pool()
        blob = make_random_blob(streams, 4096, chunk_size=1024)

        def scenario():
            health = yield from store.store(blob)
            return health

        health = sim.run_process(scenario())
        assert len(health.holders) == 3
        assert store.online_replicas(blob.merkle_root) == 3

    def test_retrieve_roundtrip(self):
        sim, streams, network, providers, store = setup_pool(seed=2)
        blob = make_random_blob(streams, 4096, chunk_size=1024)

        def scenario():
            yield from store.store(blob)
            return (yield from store.retrieve(blob.merkle_root))

        assert sim.run_process(scenario()) == blob.to_bytes()

    def test_retrieve_survives_minority_failures(self):
        sim, streams, network, providers, store = setup_pool(seed=3)
        blob = make_random_blob(streams, 4096, chunk_size=1024)

        def scenario():
            health = yield from store.store(blob)
            holders = sorted(health.holders)
            for holder in holders[:2]:  # kill 2 of 3
                network.node(holder).set_online(False, sim.now)
            return (yield from store.retrieve(blob.merkle_root))

        assert sim.run_process(scenario()) == blob.to_bytes()

    def test_retrieve_fails_when_all_holders_down(self):
        sim, streams, network, providers, store = setup_pool(seed=4)
        blob = make_random_blob(streams, 4096, chunk_size=1024)

        def scenario():
            health = yield from store.store(blob)
            for holder in health.holders:
                network.node(holder).set_online(False, sim.now)
            try:
                yield from store.retrieve(blob.merkle_root)
            except StorageError:
                return "unavailable"

        assert sim.run_process(scenario()) == "unavailable"

    def test_not_enough_online_providers(self):
        sim, streams, network, providers, store = setup_pool(
            seed=5, n_providers=3, replication_factor=3
        )
        network.node("p0").set_online(False, 0.0)
        blob = make_random_blob(streams, 1024)

        def scenario():
            try:
                yield from store.store(blob)
            except StorageError:
                return "underprovisioned"

        assert sim.run_process(scenario()) == "underprovisioned"

    def test_pool_smaller_than_factor_rejected(self):
        sim = Simulator()
        streams = RngStreams(6)
        network = Network(sim, streams)
        providers = [StorageProvider(network, "only")]
        with pytest.raises(StorageError):
            ReplicatedBlobStore(network, providers, streams, replication_factor=3)


class TestRepair:
    def test_repair_restores_replication_factor(self):
        sim, streams, network, providers, store = setup_pool(seed=7)
        blob = make_random_blob(streams, 4096, chunk_size=1024)

        def scenario():
            health = yield from store.store(blob)
            store.start_repair()
            # Kill one holder permanently.
            victim = sorted(health.holders)[0]
            network.node(victim).set_online(False, sim.now)
            yield 200.0  # several check intervals
            store.stop_repair()
            return health

        health = sim.run_process(scenario(), until=1000.0)
        assert store.online_replicas(blob.merkle_root) >= 3
        assert health.repairs >= 1
        assert store.repair_bytes() >= 4096

    def test_no_repair_without_failures(self):
        sim, streams, network, providers, store = setup_pool(seed=8)
        blob = make_random_blob(streams, 4096, chunk_size=1024)

        def scenario():
            health = yield from store.store(blob)
            store.start_repair()
            yield 200.0
            store.stop_repair()
            return health

        health = sim.run_process(scenario(), until=1000.0)
        assert health.repairs == 0
        assert store.repair_bytes() == 0

    def test_churny_pool_keeps_blob_alive(self):
        sim, streams, network, providers, store = setup_pool(
            seed=9, n_providers=12, replication_factor=4, check_interval=20.0
        )
        # Device-grade churn: up 200s, down 100s on average.
        profile = ChurnProfile(mean_uptime=200.0, mean_downtime=100.0)
        attach_churn(sim, streams, [p.node for p in providers], profile)
        blob = make_random_blob(streams, 2048, chunk_size=1024)

        def scenario():
            yield from store.store(blob)
            store.start_repair()
            yield 3000.0
            data = yield from store.retrieve(blob.merkle_root)
            store.stop_repair()
            return data

        assert sim.run_process(scenario(), until=10_000.0) == blob.to_bytes()

    def test_repair_traffic_scales_with_churn(self):
        repair_bytes = {}
        # Calm: failures are rare (long uptimes).  Churny: constant cycling.
        for label, uptime in (("calm", 100_000.0), ("churny", 300.0)):
            sim, streams, network, providers, store = setup_pool(
                seed=10, n_providers=12, replication_factor=3, check_interval=20.0
            )
            profile = ChurnProfile(mean_uptime=uptime, mean_downtime=100.0)
            attach_churn(sim, streams, [p.node for p in providers], profile)
            blob = make_random_blob(streams, 2048, chunk_size=1024)

            def scenario():
                yield from store.store(blob)
                store.start_repair()
                yield 2000.0
                store.stop_repair()

            sim.run_process(scenario(), until=8000.0)
            repair_bytes[label] = store.repair_bytes()
        assert repair_bytes["churny"] > repair_bytes["calm"]
