"""Socially-aware P2P communication (PrPl / Persona / Lockr, §3.2).

Users keep ownership of their data: posts live on the author's own device
and, optionally, on friends' devices as encrypted replicas.  Peers serve
*only* socially-trusted requesters (graph neighbours), which is what buys
privacy — and what costs availability, because the set of nodes allowed to
serve a post is small and device-grade (the trade E5 quantifies).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Generator, List, Optional

import networkx as nx

from repro.errors import (
    AccessDeniedError,
    GroupCommError,
    RemoteError,
    RpcTimeoutError,
)
from repro.groupcomm.messages import Audience, Message
from repro.net.node import NodeClass
from repro.net.transport import Network

__all__ = ["SocialP2PNetwork"]


class SocialP2PNetwork:
    """A friend-to-friend data network over a social graph."""

    kind = "socially_aware_p2p"

    def __init__(
        self,
        network: Network,
        social_graph: nx.Graph,
        replicate_to_friends: int = 2,
        node_class: str = NodeClass.PERSONAL_COMPUTER,
    ):
        if replicate_to_friends < 0:
            raise GroupCommError(
                f"replication count cannot be negative: {replicate_to_friends}"
            )
        self.network = network
        self.graph = social_graph
        self.replicate_to_friends = replicate_to_friends
        # user -> author -> messages held locally (own posts + replicas).
        self._held: Dict[str, Dict[str, List[Message]]] = defaultdict(
            lambda: defaultdict(list)
        )
        # user -> designated close friends (a subset of their friends).
        self._close_friends: Dict[str, set] = defaultdict(set)
        for user in social_graph.nodes:
            if not network.has_node(user):
                network.create_node(user, node_class=node_class)
            network.node(user).register_handler(
                "p2p.fetch", self._make_fetch_handler(user)
            )
            network.node(user).register_handler(
                "p2p.replica", self._make_replica_handler(user)
            )

    # -- social checks --------------------------------------------------------

    def friends_of(self, user: str) -> List[str]:
        if user not in self.graph:
            raise GroupCommError(f"unknown user {user!r}")
        return sorted(self.graph.neighbors(user))

    def are_friends(self, a: str, b: str) -> bool:
        return self.graph.has_edge(a, b)

    # -- access levels (Persona/Lockr-style, §3.2) -----------------------------

    def designate_close_friends(self, user: str, close: List[str]) -> None:
        """Mark a subset of a user's friends as close friends.

        Relationship definitions stay with the user — the §3.2 point that
        these systems let users define relationships and ensure they are
        not exploited.
        """
        for friend in close:
            if not self.are_friends(user, friend):
                raise GroupCommError(
                    f"{friend!r} is not a friend of {user!r};"
                    " close friends must be friends first"
                )
        self._close_friends[user] = set(close)

    def relationship(self, author: str, reader: str) -> str:
        """The reader's relationship to the author: self, close_friend,
        friend, or stranger."""
        if reader == author:
            return "self"
        if reader in self._close_friends.get(author, set()):
            return "close_friend"
        if self.are_friends(author, reader):
            return "friend"
        return "stranger"

    def may_read(self, author: str, reader: str, audience: str) -> bool:
        """Does the author's access policy allow this reader?"""
        relationship = self.relationship(author, reader)
        if relationship == "self":
            return True
        if audience == Audience.PUBLIC:
            return True
        if audience == Audience.FRIENDS:
            return relationship in ("friend", "close_friend")
        if audience == Audience.CLOSE_FRIENDS:
            return relationship == "close_friend"
        raise GroupCommError(f"unknown audience {audience!r}")

    # -- handlers -----------------------------------------------------------------

    def _make_fetch_handler(self, holder: str):
        def handler(node, payload: dict, sender: str) -> List[Message]:
            author, reader = payload["author"], payload["reader"]
            # Trust gate: strangers may only receive the author's public
            # posts; every message is filtered by the author's policy.
            allowed = [
                m
                for m in self._held[holder].get(author, [])
                if self.may_read(author, reader, m.audience)
            ]
            if not allowed and self.relationship(author, reader) == "stranger":
                raise AccessDeniedError(
                    f"{reader!r} is not trusted by {author!r}"
                )
            return allowed

        return handler

    def _make_replica_handler(self, holder: str):
        def handler(node, payload: dict, sender: str) -> bool:
            message: Message = payload["message"]
            if not self.are_friends(holder, message.author):
                raise AccessDeniedError(
                    f"{holder!r} does not accept replicas from strangers"
                )
            held = self._held[holder][message.author]
            if all(m.msg_id != message.msg_id for m in held):
                held.append(message)
            return True

        return handler

    # -- client operations ------------------------------------------------------------

    def post(self, author: str, body: Any, audience: str = Audience.FRIENDS) -> Generator:
        """Store a post locally and replicate to up to
        ``replicate_to_friends`` currently-online friends.

        ``audience`` sets the access level: public posts serve anyone,
        friends-posts serve graph neighbours, close-friends posts serve
        only the author's designated subset.
        """
        if audience not in Audience.ALL:
            raise GroupCommError(f"unknown audience {audience!r}")
        if not self.network.node(author).online:
            raise GroupCommError(f"{author!r} is offline and cannot post")
        message = Message(
            author=author, room=f"feed:{author}", body=body,
            sent_at=self.network.sim.now,
            seq=len(self._held[author][author]),
            audience=audience,
        )
        self._held[author][author].append(message)
        replicated = 0
        for friend in self.friends_of(author):
            if replicated >= self.replicate_to_friends:
                break
            if not self.network.node(friend).online:
                continue
            try:
                ok = yield from self.network.rpc(
                    author, friend, "p2p.replica", {"message": message},
                    timeout=5.0,
                )
                if ok:
                    replicated += 1
            except (RpcTimeoutError, RemoteError):
                continue
        return message.msg_id

    def fetch(self, reader: str, author: str) -> Generator:
        """Read an author's feed: try the author's device, then their
        friends' replicas.  Returns only messages the author's access
        policy allows this reader; raises when no trusted holder is
        reachable — the availability cost of the socially-gated design."""
        if (
            reader != author
            and not self.are_friends(author, reader)
            and not any(
                m.audience == Audience.PUBLIC
                for m in self._held[author].get(author, [])
            )
        ):
            raise AccessDeniedError(f"{reader!r} is not trusted by {author!r}")
        holders = [author] + self.friends_of(author)
        last_error: Optional[Exception] = None
        for holder in holders:
            try:
                messages = yield from self.network.rpc(
                    reader, holder, "p2p.fetch",
                    {"author": author, "reader": reader},
                    timeout=5.0,
                )
            except RpcTimeoutError as exc:
                last_error = exc
                continue
            except RemoteError as exc:
                raise exc.remote_exception
            if messages:
                return sorted(messages, key=lambda m: m.seq)
        if last_error is not None:
            raise GroupCommError(
                f"no trusted holder of {author!r}'s feed is reachable"
            )
        return []

    # -- measurement hooks ---------------------------------------------------------------

    def replica_count(self, author: str, msg_id: str) -> int:
        """How many devices currently hold a message (incl. the author)."""
        return sum(
            1
            for holder in [author] + self.friends_of(author)
            if any(
                m.msg_id == msg_id for m in self._held[holder].get(author, [])
            )
        )

    def holders(self, author: str) -> List[str]:
        """Devices holding any of the author's posts."""
        return [
            holder
            for holder in [author] + self.friends_of(author)
            if self._held[holder].get(author)
        ]
