"""repro.lint: AST-based determinism & simulation-invariant linter.

Every claim this repository makes rests on bit-identical replay: the
Table 3 goldens, the serial==parallel==cached guarantee of
:class:`~repro.analysis.runner.SweepRunner`, the selfish-mining and
availability curves.  This package turns that discipline from convention
into a checked invariant: a small :mod:`ast`-walking framework plus a
rule pack grounded in this codebase.

Rules (see ``docs/LINTING.md`` for the full catalog and rationale):

* **DET001** — no ``random`` imports outside ``repro/sim/rng.py``;
  randomness must route through ``RngStreams`` / ``seeded_rng`` /
  ``derive_seed``.
* **DET002** — no wall-clock reads (``time.time``, ``datetime.now``,
  ``time.monotonic``, ...) in the simulated packages ``sim/``, ``net/``,
  ``chain/``, ``storage/``, ``groupcomm/``.
* **DET003** — no unseeded ``numpy.random`` global-state calls.
* **PAR001** — no lambdas / nested functions handed to
  ``SweepRunner.run`` / ``ProcessPoolExecutor.submit|map`` (they are not
  picklable, silently forcing serial fallbacks).
* **ERR001** — no ``except Exception`` that neither re-raises nor raises
  a :mod:`repro.errors` type.
* **API001** — ``__all__`` must match the module's public definitions.
* **FLT001** — no direct mutation of transport fault/censor state
  (including in-place blocklist edits) outside ``repro.faults``; faults
  must be declared as ``FaultPlan`` events.
* **BEN001** — no host-clock reads inside ``repro/bench/`` benchmark
  bodies; only ``repro/bench/harness.py`` times.
* **SHD001** — no direct cross-shard state mutation outside
  ``repro/sim/shard.py``; cross-shard traffic must ride the
  coordinator's envelope barrier protocol.

Whole-program rules (checked over the :class:`ProjectIndex` built from
*all* linted files, not one file at a time):

* **DET005** — no RNG stream-name collisions: the same stream name
  constructed at two sites that can share a seed root means correlated
  draws; generic undotted names are flagged pre-emptively.
* **DET006** — transitive determinism: functions in the simulated
  packages must not reach wall-clock or global-RNG calls through helper
  modules the per-file rules cannot see.
* **ORD001** — no iteration over ``set``/``frozenset`` values in
  simulated packages (per-file, ships with the whole-program pack).
* **IMP001** — no import cycles over the resolved module-level import
  graph (lazy and ``TYPE_CHECKING`` imports are the sanctioned
  break patterns).

Suppress a finding on one line with ``# repro: noqa[RULE001]`` (comma
list allowed; bare ``# repro: noqa`` suppresses every rule on the line).

Programmatic use::

    from repro.lint import lint_paths
    findings = lint_paths(["src/repro"])

Command line::

    python -m repro lint [--format json] [--rules DET001,...] [paths...]
"""

from repro.lint.cache import LintCache
from repro.lint.engine import (
    LintContext,
    LintStats,
    ProjectRule,
    Rule,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    resolve_rules,
)
from repro.lint.findings import Finding
from repro.lint.index import ModuleFragment, ProjectIndex, build_fragment
from repro.lint.reporters import render_human, render_json

# Importing the rule modules registers their rules with the engine.
from repro.lint import rules_api  # noqa: F401
from repro.lint import rules_bench  # noqa: F401
from repro.lint import rules_determinism  # noqa: F401
from repro.lint import rules_errors  # noqa: F401
from repro.lint import rules_faults  # noqa: F401
from repro.lint import rules_parallel  # noqa: F401
from repro.lint import rules_project  # noqa: F401
from repro.lint import rules_shard  # noqa: F401

__all__ = [
    "Finding",
    "LintCache",
    "LintContext",
    "LintStats",
    "ModuleFragment",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "all_rules",
    "build_fragment",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_human",
    "render_json",
    "resolve_rules",
]
