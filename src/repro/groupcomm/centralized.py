"""The centralized platform baseline (§2/§3.2's incumbent).

One operator, one logical server.  It delivers the paper's §2.1 benefits —
always-on, fast, connected — and exhibits every feudal failure mode as an
explicit method: unilateral bans, content deletion, total metadata *and*
content visibility, and monetization of both.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Generator, List, Optional, Set

from repro.errors import AccessDeniedError, GroupCommError, RemoteError
from repro.groupcomm.messages import Message, Room
from repro.net.node import NodeClass
from repro.net.transport import Network

__all__ = ["CentralizedPlatform"]


class CentralizedPlatform:
    """A single-operator messaging/OSN service."""

    kind = "centralized"

    def __init__(self, network: Network, server_id: str = "platform"):
        self.network = network
        self.server_id = server_id
        self.server = (
            network.node(server_id)
            if network.has_node(server_id)
            else network.create_node(server_id, node_class=NodeClass.DATACENTER)
        )
        self._rooms: Dict[str, Room] = {}
        self._timeline: Dict[str, List[Message]] = defaultdict(list)
        self._banned: Set[str] = set()
        self._deleted: Set[str] = set()
        self.operator_reads = 0  # every post the operator could mine
        self.server.register_handler("osn.post", self._on_post)
        self.server.register_handler("osn.fetch", self._on_fetch)

    # -- rooms ------------------------------------------------------------------

    def create_room(self, room_id: str, members: List[str], public: bool = False) -> Room:
        if room_id in self._rooms:
            raise GroupCommError(f"room {room_id!r} exists")
        room = Room(room_id, set(members), public)
        self._rooms[room_id] = room
        return room

    def room(self, room_id: str) -> Room:
        room = self._rooms.get(room_id)
        if room is None:
            raise GroupCommError(f"no room {room_id!r}")
        return room

    # -- server handlers -----------------------------------------------------------

    def _on_post(self, node, payload: dict, sender: str) -> dict:
        user = payload["user"]
        if user in self._banned:
            raise AccessDeniedError(f"{user!r} is banned from the platform")
        room = self.room(payload["room"])
        room.require_member(user)
        message = Message(
            author=user,
            room=room.room_id,
            body=payload["body"],
            sent_at=self.network.sim.now,
            seq=len(self._timeline[room.room_id]),
        )
        self._timeline[room.room_id].append(message)
        self.operator_reads += 1  # the operator sees everything
        return {"msg_id": message.msg_id}

    def _on_fetch(self, node, payload: dict, sender: str) -> List[Message]:
        user = payload["user"]
        if user in self._banned:
            raise AccessDeniedError(f"{user!r} is banned from the platform")
        room = self.room(payload["room"])
        room.require_member(user)
        return [
            m
            for m in self._timeline[room.room_id]
            if m.msg_id not in self._deleted
        ]

    # -- client operations -------------------------------------------------------------

    def post(self, user: str, room_id: str, body: Any) -> Generator:
        """Post a message from the user's device (one RPC)."""
        try:
            answer = yield from self.network.rpc(
                user, self.server_id, "osn.post",
                {"user": user, "room": room_id, "body": body},
            )
        except RemoteError as exc:
            raise exc.remote_exception
        return answer["msg_id"]

    def fetch(self, user: str, room_id: str) -> Generator:
        """Read a room's messages from the user's device."""
        try:
            messages = yield from self.network.rpc(
                user, self.server_id, "osn.fetch", {"user": user, "room": room_id}
            )
        except RemoteError as exc:
            raise exc.remote_exception
        return messages

    # -- feudal powers ---------------------------------------------------------------

    def ban(self, user: str) -> None:
        """Unequivocally revoke platform access (§3.2): the user's data is
        rendered inaccessible to them."""
        self._banned.add(user)

    def delete_message(self, msg_id: str) -> None:
        """Operator moderation/censorship: removes content for everyone."""
        self._deleted.add(msg_id)

    def surveil(self, room_id: str) -> List[Dict[str, Any]]:
        """The operator reads all content and metadata without consent —
        the monetization surface of §3.2."""
        return [
            {"metadata": m.metadata, "body": m.body}
            for m in self._timeline[self.room(room_id).room_id]
        ]

    def visible_metadata_count(self) -> int:
        """Messages whose metadata the operator holds (all of them)."""
        return sum(len(msgs) for msgs in self._timeline.values())
