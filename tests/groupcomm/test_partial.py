"""Tests for trust-gated partial federation (repro.groupcomm.partial)."""

import pytest

from repro.errors import GroupCommError, RpcTimeoutError
from repro.gossip.antientropy import Versioned
from repro.groupcomm import (
    ConflictRecord,
    FederationPeer,
    FederationPolicy,
    LastWriterWins,
    ManualQueue,
    PartialFederation,
    PartialReplicaStore,
    TrustWeighted,
    make_strategy,
)
from repro.net.transport import ConstantLatency, Network
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


def make_network(seed=1, latency=0.02):
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams, latency=ConstantLatency(latency))
    return sim, streams, network


def make_federation(seed=1, **kwargs):
    sim, streams, network = make_network(seed)
    fed = PartialFederation(
        network, ["ca", "hub1", "hub2"], streams,
        gossip_interval=2.0, **kwargs,
    )
    for user, home in (("alice", "ca"), ("bob", "hub1"), ("carol", "hub2")):
        fed.add_user(user, home)
    fed.create_room("town", ["alice", "bob", "carol"], public=True)
    return sim, network, fed


def run(sim, gen, until=None):
    return sim.run_process(gen, until=until)


class TestPeerManagement:
    def test_auto_peer_builds_full_mesh(self):
        _, _, fed = make_federation()
        for server_id in ("ca", "hub1", "hub2"):
            peers = fed.hubs[server_id].peers
            assert sorted(peers) == sorted(
                s for s in ("ca", "hub1", "hub2") if s != server_id
            )

    def test_register_peer_defaults(self):
        _, _, fed = make_federation()
        peer = fed.hubs["ca"].peers["hub1"]
        assert peer.trust_level == 0.5
        assert peer.policy == FederationPolicy.FULL
        assert peer.active is True
        assert peer.name == "hub1"

    def test_cannot_register_self(self):
        _, _, fed = make_federation()
        with pytest.raises(GroupCommError, match="itself"):
            fed.hubs["ca"].register_peer("ca")

    def test_cannot_register_twice(self):
        _, _, fed = make_federation()
        with pytest.raises(GroupCommError, match="already registered"):
            fed.hubs["ca"].register_peer("hub1")

    def test_trust_level_validated(self):
        _, _, fed = make_federation()
        with pytest.raises(GroupCommError, match="trust level"):
            fed.set_trust("ca", "hub1", 1.5)
        with pytest.raises(GroupCommError, match="trust level"):
            FederationPeer(peer_id="x", name="x", trust_level=-0.1)

    def test_policy_validated(self):
        _, _, fed = make_federation()
        with pytest.raises(GroupCommError, match="policy"):
            fed.set_policy("ca", "hub1", "bogus")
        with pytest.raises(GroupCommError, match="policy"):
            FederationPeer(peer_id="x", name="x", policy="bogus")

    def test_deactivate_and_reactivate(self):
        _, _, fed = make_federation()
        assert fed.deactivate_peer("ca", "hub1") is True
        assert not fed.hubs["ca"].federates_with("hub1")
        assert fed.deactivate_peer("ca", "nope") is False
        fed.hubs["ca"].reactivate_peer("hub1")
        assert fed.hubs["ca"].federates_with("hub1")

    def test_active_peers_sorted_and_filtered(self):
        _, _, fed = make_federation()
        fed.set_policy("ca", "hub2", FederationPolicy.NONE)
        assert [p.peer_id for p in fed.hubs["ca"].active_peers()] == ["hub1"]
        fed.set_policy("ca", "hub2", FederationPolicy.FULL)
        assert [p.peer_id for p in fed.hubs["ca"].active_peers()] == [
            "hub1", "hub2",
        ]

    def test_unknown_peer_and_server_raise(self):
        _, _, fed = make_federation()
        with pytest.raises(GroupCommError, match="no peer"):
            fed.hubs["ca"].get_peer("nope")
        with pytest.raises(GroupCommError, match="unknown server"):
            fed.hub("nope")

    def test_reputation_validated_and_defaulted(self):
        _, _, fed = make_federation(default_trust=0.4)
        assert fed.reputation("hub1") == 0.4
        fed.set_reputation("hub1", 0.8)
        assert fed.reputation("hub1") == 0.8
        with pytest.raises(GroupCommError, match="reputation"):
            fed.set_reputation("hub1", 2.0)

    def test_gossip_interval_validated(self):
        sim, streams, network = make_network()
        with pytest.raises(GroupCommError, match="interval"):
            PartialFederation(network, ["a", "b"], streams, gossip_interval=0)


class TestConflictStrategies:
    def test_registry(self):
        assert isinstance(make_strategy("lww"), LastWriterWins)
        assert isinstance(make_strategy("trust_weighted"), TrustWeighted)
        assert isinstance(make_strategy("manual"), ManualQueue)
        with pytest.raises(GroupCommError, match="unknown conflict strategy"):
            make_strategy("bogus")

    def test_lww_picks_higher_stamp(self):
        older = Versioned({"v": 1}, 1, "a")
        newer = Versioned({"v": 2}, 2, "b")
        rep = lambda writer: 0.5
        assert LastWriterWins().resolve("k", older, newer, rep) is newer
        assert LastWriterWins().resolve("k", newer, older, rep) is newer

    def test_trust_weighted_prefers_reputable_writer(self):
        low = Versioned({"v": "forged"}, 9, "sybil")
        high = Versioned({"v": "real"}, 2, "anchor")
        rep = {"sybil": 0.1, "anchor": 0.9}.get
        strategy = TrustWeighted()
        assert strategy.resolve("k", low, high, rep) is high
        assert strategy.resolve("k", high, low, rep) is high

    def test_trust_weighted_falls_back_to_stamp_on_tie(self):
        a = Versioned({"v": 1}, 1, "x")
        b = Versioned({"v": 2}, 2, "y")
        rep = lambda writer: 0.5
        assert TrustWeighted().resolve("k", a, b, rep) is b

    def test_manual_returns_none(self):
        a = Versioned({"v": 1}, 1, "x")
        b = Versioned({"v": 2}, 2, "y")
        assert ManualQueue().resolve("k", a, b, lambda w: 0.5) is None


class TestPartialReplicaStore:
    def rep(self, writer):
        return 0.5

    def test_write_records_prev_stamp(self):
        store = PartialReplicaStore()
        first = store.write("k", {"v": 1}, "a")
        assert first.value["prev"] is None
        second = store.write("k", {"v": 2}, "a")
        assert tuple(second.value["prev"]) == first.stamp

    def test_merge_adopts_new_key_and_dedupes(self):
        store = PartialReplicaStore()
        item = Versioned({"v": 1, "prev": None}, 1, "a")
        lww = LastWriterWins()
        assert store.merge("k", item, lww, self.rep) == "adopted"
        assert store.merge("k", item, lww, self.rep) == "duplicate"
        assert "k" in store and len(store) == 1

    def test_merge_fast_forwards_causal_descendant(self):
        a = PartialReplicaStore()
        first = a.write("k", {"v": 1}, "x")
        b = PartialReplicaStore()
        b.merge("k", first, LastWriterWins(), self.rep)
        second = b.write("k", {"v": 2}, "x")
        assert a.merge("k", second, ManualQueue(), self.rep) == "fast_forward"
        assert a.get("k")["v"] == 2
        # The mirror direction is stale, not a conflict.
        assert b.merge("k", first, ManualQueue(), self.rep) == "stale"
        assert b.get("k")["v"] == 2

    def test_merge_conflict_resolved_by_strategy(self):
        a = PartialReplicaStore()
        base = a.write("k", {"v": 0}, "x")
        b = PartialReplicaStore()
        b.merge("k", base, LastWriterWins(), self.rep)
        ours = a.write("k", {"v": "a"}, "x")
        theirs = b.write("k", {"v": "b"}, "y")
        outcome = a.merge("k", theirs, LastWriterWins(), self.rep)
        assert outcome in ("resolved_adopted", "resolved_kept")
        winner = max((ours, theirs), key=lambda i: i.stamp)
        assert a.item("k").stamp == winner.stamp

    def test_merge_queued_keeps_current(self):
        a = PartialReplicaStore()
        base = a.write("k", {"v": 0}, "x")
        b = PartialReplicaStore()
        b.merge("k", base, LastWriterWins(), self.rep)
        ours = a.write("k", {"v": "a"}, "x")
        theirs = b.write("k", {"v": "b"}, "y")
        assert a.merge("k", theirs, ManualQueue(), self.rep) == "queued"
        assert a.item("k").stamp == ours.stamp

    def test_clock_advances_past_merged_counters(self):
        store = PartialReplicaStore()
        store.merge(
            "k", Versioned({"v": 1, "prev": None}, 41, "a"),
            LastWriterWins(), self.rep,
        )
        assert store.write("k2", {"v": 2}, "b").counter == 42

    def test_digest_maps_keys_to_stamps(self):
        store = PartialReplicaStore()
        item = store.write("k", {"v": 1}, "a")
        assert store.digest() == {"k": item.stamp}


class TestPropagationPolicies:
    def post_and_settle(self, fed, sim, author="alice", body="hi"):
        def scenario():
            yield from fed.post(author, "town", body)
            yield 30.0
        run(sim, scenario(), until=sim.now + 200.0)

    def holders(self, fed, room="town"):
        return sorted(
            server_id for server_id in fed.hubs
            if any(
                key.startswith(f"msg/{room}/")
                for key in fed.hubs[server_id].store.keys()
            )
        )

    def test_full_policy_replicates_everywhere(self):
        sim, _, fed = make_federation()
        fed.start_federation()
        self.post_and_settle(fed, sim)
        assert self.holders(fed) == ["ca", "hub1", "hub2"]

    def test_none_policy_keeps_messages_home(self):
        sim, _, fed = make_federation(default_policy=FederationPolicy.NONE)
        fed.start_federation()
        self.post_and_settle(fed, sim)
        assert self.holders(fed) == ["ca"]

    def test_filtered_policy_gates_private_rooms_by_trust(self):
        sim, _, fed = make_federation(
            default_policy=FederationPolicy.FILTERED, default_trust=0.5,
        )
        fed.create_room("club", ["alice", "bob"], public=False)
        # ca and hub1 trust each other enough for private traffic
        # (both sides gate: the sender shares, the receiver accepts);
        # hub2 stays at the 0.5 default, below the 0.75 threshold.
        fed.set_trust("ca", "hub1", 0.9)
        fed.set_trust("hub1", "ca", 0.9)
        fed.start_federation()

        def scenario():
            yield from fed.post("alice", "town", "open")
            yield from fed.post("alice", "club", "secret")
            yield 30.0
        run(sim, scenario(), until=200.0)

        # Public room reaches every hub regardless of trust...
        assert self.holders(fed, "town") == ["ca", "hub1", "hub2"]
        # ...private room only the trusted peer.
        assert self.holders(fed, "club") == ["ca", "hub1"]

    def test_deactivated_peer_receives_nothing(self):
        sim, _, fed = make_federation()
        for server_id in ("ca", "hub1"):
            fed.deactivate_peer(server_id, "hub2")
        fed.deactivate_peer("hub2", "ca")
        fed.deactivate_peer("hub2", "hub1")
        fed.start_federation()
        self.post_and_settle(fed, sim)
        assert self.holders(fed) == ["ca", "hub1"]

    def test_digest_hides_private_entries_from_untrusted_peers(self):
        sim, _, fed = make_federation(
            default_policy=FederationPolicy.FILTERED, default_trust=0.2,
        )
        fed.create_room("club", ["alice", "bob"], public=False)

        def scenario():
            yield from fed.post("alice", "club", "secret")
            yield 0.0
        run(sim, scenario(), until=50.0)
        hub = fed.hubs["ca"]
        handler = fed._make_digest_handler("ca")
        # An untrusted peer's digest request reveals nothing private.
        assert handler(None, {}, "hub2") == {}
        # An unknown sender reveals nothing at all.
        assert handler(None, {}, "stranger") == {}


class TestFetchFailover:
    def test_fetch_fails_over_to_federated_peer(self):
        sim, network, fed = make_federation()
        fed.start_federation()

        def post_phase():
            yield from fed.post("alice", "town", "hello")
            yield 30.0
        run(sim, post_phase(), until=200.0)
        network.node("ca").set_online(False, sim.now)

        def read_phase():
            messages = yield from fed.fetch("alice", "town")
            return [m.body for m in messages]
        assert run(sim, read_phase(), until=sim.now + 500.0) == ["hello"]

    def test_fetch_with_none_policy_has_no_failover(self):
        sim, network, fed = make_federation(
            default_policy=FederationPolicy.NONE,
        )
        network.node("ca").set_online(False, sim.now)

        def read_phase():
            try:
                yield from fed.fetch("alice", "town")
            except RpcTimeoutError as exc:
                return exc
            return None
        error = run(sim, read_phase(), until=sim.now + 500.0)
        assert isinstance(error, RpcTimeoutError)

    def test_fetch_reraises_last_timeout_when_all_targets_dead(self):
        sim, network, fed = make_federation()
        for server_id in ("ca", "hub1", "hub2"):
            network.node(server_id).set_online(False, sim.now)

        def read_phase():
            try:
                yield from fed.fetch("alice", "town")
            except RpcTimeoutError as exc:
                return exc
            return None
        error = run(sim, read_phase(), until=sim.now + 1000.0)
        assert isinstance(error, RpcTimeoutError)

    def test_fetch_rejects_non_members_of_private_rooms(self):
        sim, _, fed = make_federation()
        fed.add_user("mallory", "ca")
        fed.create_room("club", ["alice", "bob"], public=False)

        def read_phase():
            try:
                yield from fed.fetch("mallory", "club")
            except GroupCommError as exc:
                return exc
            return None
        assert isinstance(
            run(sim, read_phase(), until=100.0), GroupCommError
        )

    def test_post_requires_membership_and_home(self):
        sim, _, fed = make_federation()

        def bad_post():
            try:
                yield from fed.post("nobody", "town", "x")
            except GroupCommError as exc:
                return exc
        assert isinstance(run(sim, bad_post(), until=100.0), GroupCommError)


def diverge_and_heal(strategy, seed=7):
    """Partition the mesh, write both sides, heal; returns (fed, sim)."""
    sim, network, fed = make_federation(seed=seed, conflict_strategy=strategy)
    fed.set_reputation("ca", 0.9)
    fed.set_reputation("hub1", 0.7)
    fed.set_reputation("hub2", 0.2)
    fed.start_federation()

    def warm():
        yield from fed.set_room_state("bob", "town", "topic", "welcome")
        yield 30.0
    run(sim, warm(), until=100.0)

    network.partition([("ca", "hub1", "alice", "bob"), ("hub2", "carol")])

    def split_writes():
        yield from fed.set_room_state("bob", "town", "topic", "left")
        yield 0.5
        yield from fed.set_room_state("carol", "town", "topic", "right")
        yield 40.0
    run(sim, split_writes(), until=sim.now + 200.0)
    assert fed.divergence(), "partition must manufacture divergence"
    network.heal()
    sim.run(until=sim.now + 150.0)
    return fed, sim


class TestConflictConvergence:
    def topic_values(self, fed):
        return {
            server_id: fed.hubs[server_id].store.get("state/town/topic")["value"]
            for server_id in fed.hubs
        }

    def test_lww_converges_to_last_writer(self):
        fed, _ = diverge_and_heal("lww")
        assert fed.divergence() == {}
        assert set(self.topic_values(fed).values()) == {"right"}

    def test_trust_weighted_converges_to_reputable_writer(self):
        fed, _ = diverge_and_heal("trust_weighted")
        assert fed.divergence() == {}
        # hub1 (rep 0.7) wrote "left"; hub2 (rep 0.2) wrote "right".
        assert set(self.topic_values(fed).values()) == {"left"}

    def test_trust_weighted_rejects_sybil_forgery(self):
        # The Sybil arc: a freshly-spun-up hub floods a competing value;
        # under LWW it wins (later stamp), under trust weighting it loses.
        lww_fed, _ = diverge_and_heal("lww")
        tw_fed, _ = diverge_and_heal("trust_weighted")
        assert set(self.topic_values(lww_fed).values()) == {"right"}
        assert set(self.topic_values(tw_fed).values()) == {"left"}

    def test_manual_queue_diverges_until_operator_acts(self):
        fed, sim = diverge_and_heal("manual")
        # Still divergent: the strategy parks conflicts instead.
        assert fed.divergence() != {}
        queued = {
            server_id: fed.pending_conflicts(server_id)
            for server_id in fed.hubs
        }
        assert any(queued.values())
        record = next(q[0] for q in queued.values() if q)
        assert isinstance(record, ConflictRecord)
        assert record.key == "state/town/topic"
        resolved = fed.resolve_manual_queues()
        assert resolved > 0
        sim.run(until=sim.now + 100.0)
        assert fed.divergence() == {}
        assert all(not fed.pending_conflicts(s) for s in fed.hubs)

    def test_manual_queue_custom_chooser(self):
        fed, sim = diverge_and_heal("manual")
        fed.resolve_manual_queues(
            chooser=lambda record: max(
                (record.current, record.incoming),
                key=lambda item: (fed.reputation(item.writer),) + item.stamp,
            )
        )
        sim.run(until=sim.now + 100.0)
        assert fed.divergence() == {}
        values = {
            fed.hubs[s].store.get("state/town/topic")["value"]
            for s in fed.hubs
        }
        assert values == {"left"}

    def test_manual_queue_dedupes_repeated_offers(self):
        fed, _ = diverge_and_heal("manual")
        for server_id in fed.hubs:
            queue = fed.pending_conflicts(server_id)
            marks = {(r.key, r.incoming.stamp) for r in queue}
            assert len(marks) == len(queue)


class TestAuditSurface:
    def test_metadata_view_hides_encrypted_bodies(self):
        sim, _, fed = make_federation()
        fed.start_federation()

        def scenario():
            yield from fed.post("alice", "town", "plain")
            yield from fed.post("alice", "town", "secret", encrypted=True)
            yield 30.0
        run(sim, scenario(), until=200.0)
        view = fed.server_metadata_view("hub2")
        assert len(view) == 2
        bodies = [entry.get("body") for entry in view]
        assert "plain" in bodies
        assert "secret" not in bodies
        assert all(entry["author"] == "alice" for entry in view)

    def test_divergence_ignores_offline_hubs_when_asked(self):
        fed, sim = diverge_and_heal("manual")
        assert fed.divergence() != {}
        # Knock the disagreeing hub offline: the online view agrees.
        network = fed.network
        divergent_holders = [
            s for s in fed.hubs
            if fed.hubs[s].store.get("state/town/topic")["value"] == "right"
        ]
        for server_id in divergent_holders:
            network.node(server_id).set_online(False, sim.now)
        if len(divergent_holders) < len(fed.hubs):
            assert fed.divergence(online_only=True) == {}

    def test_determinism_same_seed_same_outcome(self):
        first, _ = diverge_and_heal("lww", seed=11)
        second, _ = diverge_and_heal("lww", seed=11)
        assert first.divergence() == second.divergence()
        assert (
            first.hubs["ca"].store.digest()
            == second.hubs["ca"].store.digest()
        )
