"""Extension benches — two §3 weaknesses the paper names, measured.

* the Usenet collapse (§3.2): full-feed federation cost per node grows
  linearly with community size, while centralized users pay ~flat cost;
* the endless ledger problem (§3.1): the chain grows forever even though
  the live name set plateaus (expiry reclaims names, never history).
"""

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.analysis.experiments import run_endless_ledger, run_usenet_collapse


def test_bench_usenet_collapse(benchmark):
    rows = benchmark.pedantic(
        run_usenet_collapse,
        kwargs={"seed": 3, "community_sizes": (10, 20, 40, 80)},
        rounds=1, iterations=1,
    )
    emit("Usenet collapse — per-node cost of full-feed federation",
         render_table(rows))
    first, last = rows[0], rows[-1]
    growth = last["community_size"] / first["community_size"]  # 8x
    # Federated per-node load scales ~linearly with the community.
    federated_growth = (
        last["per_node_bytes_federated"] / first["per_node_bytes_federated"]
    )
    assert federated_growth > 0.6 * growth
    # Centralized per-user load grows far slower (selective fetch).
    user_growth = (
        last["per_user_bytes_centralized"] / first["per_user_bytes_centralized"]
    )
    assert user_growth < federated_growth / 1.5
    # The linear load lands on the provider instead — §2.1's performance
    # rationale for centralization.
    assert last["server_bytes_centralized"] > first["server_bytes_centralized"]


def test_bench_endless_ledger(benchmark):
    rows = benchmark.pedantic(
        run_endless_ledger, kwargs={"seed": 3}, rounds=1, iterations=1
    )
    emit("Endless ledger — chain size vs live names over time",
         render_table(rows))
    chain_sizes = [row["chain_bytes"] for row in rows]
    live_names = [row["live_names"] for row in rows]
    registrations = [row["total_registrations"] for row in rows]
    # History grows strictly monotonically...
    assert all(a < b for a, b in zip(chain_sizes, chain_sizes[1:]))
    assert registrations[-1] > 3 * registrations[0]
    # ...while the useful state (live names) plateaus under expiry.
    assert max(live_names) < registrations[0] * 2
    # Storage-per-live-name diverges: the endless-ledger problem.
    early = chain_sizes[0] / max(1, live_names[0])
    late = chain_sizes[-1] / max(1, live_names[-1])
    assert late > 2 * early
