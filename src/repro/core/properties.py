"""Desirable-property scorecards (§2.1 and §3.2).

The paper enumerates why centralized systems win users (convenience,
homogeneity, cost) and operators (performance, security, financing), and
what group-communication systems must additionally provide (connectedness,
abuse prevention, privacy).  This module gives those checklists a typed
representation plus measured-score plumbing, so experiment drivers can
attach simulation results to the qualitative claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReproError

__all__ = [
    "UserProperty",
    "OperatorProperty",
    "CommProperty",
    "Scorecard",
    "PAPER_SCORECARDS",
]


class UserProperty:
    """§2.1: why users accept the feudal bargain."""

    CONVENIENCE = "convenience"
    HOMOGENEITY = "homogeneity"
    COST = "cost"

    ALL = (CONVENIENCE, HOMOGENEITY, COST)


class OperatorProperty:
    """§2.1: why designers/operators centralize."""

    PERFORMANCE = "performance"
    SECURITY = "security"
    FINANCING = "financing"

    ALL = (PERFORMANCE, SECURITY, FINANCING)


class CommProperty:
    """§3.2: extra requirements on group communication."""

    CONNECTEDNESS = "connectedness"
    ABUSE_PREVENTION = "abuse_prevention"
    PRIVACY = "privacy"

    ALL = (CONNECTEDNESS, ABUSE_PREVENTION, PRIVACY)


_KNOWN = set(UserProperty.ALL) | set(OperatorProperty.ALL) | set(CommProperty.ALL)


@dataclass
class Scorecard:
    """Qualitative scores in [0, 1] per property for one system family.

    ``evidence`` maps a property to the experiment id (DESIGN.md E-number)
    or measurement that backs the score; :meth:`attach_measurement` lets
    experiment drivers replace a prior score with a measured one.
    """

    system: str
    scores: Dict[str, float] = field(default_factory=dict)
    evidence: Dict[str, str] = field(default_factory=dict)

    def set_score(self, prop: str, score: float, evidence: str = "") -> None:
        if prop not in _KNOWN:
            raise ReproError(f"unknown property {prop!r}")
        if not 0.0 <= score <= 1.0:
            raise ReproError(f"score must be in [0,1]: {score}")
        self.scores[prop] = score
        if evidence:
            self.evidence[prop] = evidence

    def score(self, prop: str) -> Optional[float]:
        return self.scores.get(prop)

    def attach_measurement(self, prop: str, measured: float, experiment: str) -> None:
        """Replace a qualitative score with a measured one (clamped)."""
        self.set_score(prop, max(0.0, min(1.0, measured)), f"measured:{experiment}")

    def dominates(self, other: "Scorecard", props: List[str]) -> bool:
        """True when this system weakly beats ``other`` on every listed
        property (both must have scores)."""
        for prop in props:
            mine, theirs = self.scores.get(prop), other.scores.get(prop)
            if mine is None or theirs is None:
                raise ReproError(f"missing score for {prop!r}")
            if mine < theirs:
                return False
        return True


def _card(system: str, **scores: float) -> Scorecard:
    card = Scorecard(system)
    for prop, score in scores.items():
        card.set_score(prop, score, evidence="paper:qualitative")
    return card


# The paper's qualitative landscape, §2.1 + §3.2 prose, as priors that
# experiments overwrite with measurements (see repro.analysis).
PAPER_SCORECARDS: Dict[str, Scorecard] = {
    "centralized": _card(
        "centralized",
        convenience=0.9, homogeneity=0.9, cost=0.8,
        performance=0.9, security=0.7, financing=0.9,
        connectedness=0.9, abuse_prevention=0.8, privacy=0.2,
    ),
    "federated_single_home": _card(
        "federated_single_home",
        convenience=0.6, homogeneity=0.6, cost=0.6,
        performance=0.6, security=0.5, financing=0.4,
        connectedness=0.5, abuse_prevention=0.6, privacy=0.5,
    ),
    "federated_replicated": _card(
        "federated_replicated",
        convenience=0.6, homogeneity=0.6, cost=0.5,
        performance=0.6, security=0.6, financing=0.4,
        connectedness=0.8, abuse_prevention=0.6, privacy=0.6,
    ),
    "socially_aware_p2p": _card(
        "socially_aware_p2p",
        convenience=0.3, homogeneity=0.4, cost=0.7,
        performance=0.4, security=0.6, financing=0.3,
        connectedness=0.3, abuse_prevention=0.4, privacy=0.9,
    ),
    "blockchain": _card(
        "blockchain",
        convenience=0.4, homogeneity=0.5, cost=0.4,
        performance=0.2, security=0.8, financing=0.5,
        connectedness=0.7, abuse_prevention=0.3, privacy=0.5,
    ),
}
