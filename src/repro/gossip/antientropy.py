"""Anti-entropy replication: eventually-consistent full replication.

This is the mechanism behind Matrix-style federation in the group
communication experiments (§3.2): every server eventually holds every
item, so any single server failure loses nothing.  Items are
last-writer-wins registers versioned by ``(counter, writer)`` pairs
(a Lamport-style total order).

Each node runs a periodic reconciliation loop: pick a random peer,
exchange digests, pull what the peer has newer, push what we have newer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.errors import NetworkError, RemoteError, RpcTimeoutError
from repro.net.node import Node
from repro.net.transport import Network
from repro.sim.rng import RngStreams

__all__ = ["Versioned", "ReplicaStore", "AntiEntropyNode"]


@dataclass(frozen=True)
class Versioned:
    """A replicated register value with its version stamp.

    The stamp totally orders *all* writes, including a buggy or Byzantine
    writer reusing a counter with different values: the value hash breaks
    that tie deterministically, so replicas always converge.
    """

    value: Any
    counter: int
    writer: str

    @property
    def stamp(self) -> Tuple[int, str, str]:
        from repro.crypto.hashing import hash_obj

        return (self.counter, self.writer, hash_obj(self.value))


class ReplicaStore:
    """Key -> versioned value, merged by last-writer-wins."""

    def __init__(self) -> None:
        self._items: Dict[str, Versioned] = {}
        self._clock = 0

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def keys(self) -> List[str]:
        return list(self._items)

    def get(self, key: str) -> Optional[Any]:
        item = self._items.get(key)
        return item.value if item is not None else None

    def write(self, key: str, value: Any, writer: str) -> Versioned:
        """A local write: bumps the Lamport clock past anything seen."""
        self._clock += 1
        item = Versioned(value, self._clock, writer)
        self._items[key] = item
        return item

    def merge(self, key: str, incoming: Versioned) -> bool:
        """Adopt ``incoming`` if it beats the local version.

        Returns True when the store changed.  Observing a higher counter
        also advances the local clock so later local writes win.
        """
        self._clock = max(self._clock, incoming.counter)
        current = self._items.get(key)
        if current is None or incoming.stamp > current.stamp:
            self._items[key] = incoming
            return True
        return False

    def digest(self) -> Dict[str, Tuple[int, str]]:
        """Version stamps for every key (sent during reconciliation)."""
        return {key: item.stamp for key, item in self._items.items()}

    def item(self, key: str) -> Versioned:
        return self._items[key]


class AntiEntropyNode:
    """One replica running periodic pairwise reconciliation."""

    def __init__(
        self,
        network: Network,
        node: Node,
        peers: List[str],
        streams: RngStreams,
        interval: float = 10.0,
        rpc_timeout: float = 5.0,
        on_change: Optional[Callable[[str, Versioned], None]] = None,
    ):
        if interval <= 0:
            raise NetworkError(f"gossip interval must be positive: {interval}")
        self.network = network
        self.node = node
        self.peers = [p for p in peers if p != node.node_id]
        self.interval = interval
        self.rpc_timeout = rpc_timeout
        self.store = ReplicaStore()
        self.on_change = on_change
        self.rounds = 0
        self.items_transferred = 0
        self._running = False
        self._rng = streams.stream(f"antientropy.{node.node_id}")
        node.register_handler("gossip.digest", self._on_digest)
        node.register_handler("gossip.pull", self._on_pull)
        node.register_handler("gossip.push", self._on_push)

    # -- server handlers ------------------------------------------------------

    def _on_digest(self, node: Node, payload: Any, sender: str) -> Dict[str, Tuple[int, str]]:
        return self.store.digest()

    def _on_pull(self, node: Node, payload: Any, sender: str) -> Dict[str, dict]:
        out = {}
        for key in payload["keys"]:
            if key in self.store:
                item = self.store.item(key)
                out[key] = {
                    "value": item.value,
                    "counter": item.counter,
                    "writer": item.writer,
                }
        return out

    def _on_push(self, node: Node, payload: Any, sender: str) -> int:
        merged = 0
        for key, raw in payload["items"].items():
            item = Versioned(raw["value"], raw["counter"], raw["writer"])
            if self.store.merge(key, item):
                merged += 1
                if self.on_change is not None:
                    self.on_change(key, item)
        return merged

    # -- client side -----------------------------------------------------------

    def write(self, key: str, value: Any) -> Versioned:
        """Local write; reaches other replicas on subsequent gossip rounds."""
        return self.store.write(key, value, self.node.node_id)

    def start(self) -> None:
        """Begin the periodic reconciliation loop."""
        if self._running:
            return
        self._running = True
        self.network.sim.spawn(
            self._loop(), name=f"antientropy:{self.node.node_id}"
        )

    def stop(self) -> None:
        self._running = False

    def _loop(self) -> Generator:
        while self._running:
            yield self._rng.uniform(0.5 * self.interval, 1.5 * self.interval)
            if not self._running:
                return
            if not self.node.online or not self.peers:
                continue
            peer = self._rng.choice(self.peers)
            yield from self.reconcile_with(peer)

    def reconcile_with(self, peer: str) -> Generator:
        """One full pull+push exchange with ``peer`` (yieldable)."""
        try:
            their_digest = yield from self.network.rpc(
                self.node.node_id, peer, "gossip.digest", {},
                timeout=self.rpc_timeout,
            )
        except (RpcTimeoutError, RemoteError, NetworkError):
            return False
        mine = self.store.digest()
        to_pull = [
            key for key, stamp in their_digest.items()
            if key not in mine or tuple(stamp) > mine[key]
        ]
        to_push = {
            key: {
                "value": self.store.item(key).value,
                "counter": self.store.item(key).counter,
                "writer": self.store.item(key).writer,
            }
            for key, stamp in mine.items()
            if key not in their_digest or stamp > tuple(their_digest[key])
        }
        try:
            if to_pull:
                items = yield from self.network.rpc(
                    self.node.node_id, peer, "gossip.pull", {"keys": to_pull},
                    timeout=self.rpc_timeout,
                )
                for key, raw in items.items():
                    item = Versioned(raw["value"], raw["counter"], raw["writer"])
                    if self.store.merge(key, item):
                        self.items_transferred += 1
                        if self.on_change is not None:
                            self.on_change(key, item)
            if to_push:
                merged = yield from self.network.rpc(
                    self.node.node_id, peer, "gossip.push", {"items": to_push},
                    timeout=self.rpc_timeout,
                )
                self.items_transferred += merged
        except (RpcTimeoutError, RemoteError, NetworkError):
            return False
        self.rounds += 1
        return True
