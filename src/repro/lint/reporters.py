"""Human and JSON rendering of lint findings.

The JSON form is a stable machine interface (CI consumes it)::

    {
      "schema": 1,
      "count": <int>,
      "findings": [
        {"rule": "DET001", "path": "...", "line": 3, "col": 0,
         "message": "..."},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from repro.lint.findings import Finding

__all__ = ["JSON_SCHEMA_VERSION", "render_human", "render_json"]

JSON_SCHEMA_VERSION = 1


def render_human(findings: Sequence[Finding]) -> str:
    """One line per finding plus a per-rule summary; '' when clean."""
    if not findings:
        return ""
    lines: List[str] = [f.render() for f in findings]
    by_rule = Counter(f.rule_id for f in findings)
    summary = ", ".join(f"{rule}: {n}" for rule, n in sorted(by_rule.items()))
    lines.append("")
    lines.append(f"{len(findings)} finding(s)  ({summary})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    payload = {
        "schema": JSON_SCHEMA_VERSION,
        "count": len(findings),
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=1)
