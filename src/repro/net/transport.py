"""Message transport over the simulated network.

:class:`Network` owns the node registry and delivers messages with delays
from a :class:`~repro.net.latency.LatencyModel`, optional random loss, and
liveness checks at *arrival* time (a node that goes offline while a message
is in flight loses it — exactly the intermittency §5.2 of the paper says
device-grade infrastructure must be designed around).

Two primitives:

* :meth:`Network.send` — fire-and-forget one-way message.
* :meth:`Network.rpc` — request/response as a yieldable generator for use
  inside simulation processes.  Handlers may return either a plain value or
  a generator (which is spawned as a process, letting servers model work
  that itself takes simulated time or performs nested RPCs).  Pass
  ``retries=N`` to re-issue a timed-out request up to N more times.

Observability: the network shares its :class:`Simulator`'s tracer and
metrics (see :mod:`repro.obs`).  When active, every message leg emits a
``msg_send`` / ``msg_deliver`` / ``msg_drop`` trace event and every RPC
attempt emits an ``rpc`` span (start, end, outcome, attempt) plus
``net.*`` counters and a latency histogram; when inactive each hook is a
single ``is not None`` check.

Fault injection: a :class:`FaultSurface` installed by
:class:`repro.faults.FaultInjector` adds burst loss, a latency
multiplier, and receiver-side corruption (a corrupted message is
rejected at arrival, like a checksum failure, and dropped with reason
``"corrupt"``).  With no plan active the surface is ``None`` and every
hook is one pointer check.  Direct mutation of the fault surface or the
partition map outside :mod:`repro.faults` is flagged by lint rule
FLT001 — benches and tests go through a
:class:`~repro.faults.FaultPlan`.

Censorship: a :class:`CensorSurface` (installed by the same injector
while a :class:`~repro.faults.plan.Censor` campaign is open) adds an
asymmetric national border on top of partitions.  Crossing traffic to a
blocklisted endpoint is hard-dropped in the blocked direction (drop
reason ``"censor"``, and :meth:`Network.can_reach` becomes
order-sensitive) and probabilistically degraded in the other; every
fingerprinted crossing message is reported to the campaign's DPI
observation hook, which is how relays get detected and re-blocked.

The transport also keeps exact flow accounting — every message leg is
``sent`` and then exactly one of ``delivered`` or ``dropped`` (send-time
loss, or arrival-time loss/offline/partition/corrupt), with the
remainder ``in_flight`` — which the chaos invariant harness checks
continuously (``sent == delivered + dropped + in_flight``).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only; draws stay stream-derived
    import random  # repro: noqa[DET001]

from repro.errors import (
    NetworkError,
    ReproError,
    RemoteError,
    RpcTimeoutError,
)
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.node import Node, NodeClass
from repro.sim.engine import AnyOf, Signal, Simulator, Timeout
from repro.sim.monitor import Monitor
from repro.sim.rng import RngStreams

__all__ = ["CensorSurface", "FaultSurface", "Network",
           "DEFAULT_MESSAGE_BYTES"]

DEFAULT_MESSAGE_BYTES = 512


class FaultSurface:
    """Active transport-level fault parameters.

    One immutable-by-convention bundle installed on a :class:`Network`
    by :class:`repro.faults.FaultInjector` while at least one
    ``DropBurst`` / ``LatencySpike`` / ``Corrupt`` window is open, and
    cleared back to ``None`` when the last window closes.  Draws come
    from dedicated named RNG streams (``faults.drop`` /
    ``faults.corrupt``) so enabling a fault window never perturbs the
    base ``net.loss`` stream.
    """

    __slots__ = ("drop_prob", "latency_factor", "corrupt_prob",
                 "drop_rng", "corrupt_rng")

    def __init__(
        self,
        drop_prob: float,
        latency_factor: float,
        corrupt_prob: float,
        drop_rng: "random.Random",
        corrupt_rng: "random.Random",
    ):
        if not 0 <= drop_prob < 1:
            raise NetworkError(f"drop_prob must be in [0, 1): {drop_prob}")
        if not 0 <= corrupt_prob < 1:
            raise NetworkError(
                f"corrupt_prob must be in [0, 1): {corrupt_prob}"
            )
        if latency_factor <= 0:
            raise NetworkError(
                f"latency_factor must be positive: {latency_factor}"
            )
        self.drop_prob = drop_prob
        self.latency_factor = latency_factor
        self.corrupt_prob = corrupt_prob
        self.drop_rng = drop_rng
        self.corrupt_rng = corrupt_rng

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultSurface(drop={self.drop_prob},"
            f" latency_x={self.latency_factor}, corrupt={self.corrupt_prob})"
        )


class CensorSurface:
    """Active censorship-campaign state over the transport.

    Installed on a :class:`Network` by :class:`repro.faults.FaultInjector`
    while a :class:`~repro.faults.plan.Censor` campaign is open, and
    cleared back to ``None`` at heal.  It owns the border membership
    (``inside``), the growing endpoint ``blocklist`` (initial banned
    services plus relays the campaign re-blocks), and the directional
    verdict logic; the per-blocked-flow cost counters make the censor's
    collateral-damage curve measurable.

    The injector remains the campaign's brain: degrade drops draw from
    the dedicated ``faults.censor.degrade`` stream it supplies, and
    every fingerprinted crossing message is reported through
    ``on_fingerprint`` so detection draws and delayed re-blocking stay
    plan machinery (and in the trace), not transport state.  Direct
    mutation of the surface or its blocklist outside :mod:`repro.faults`
    is flagged by lint rule FLT001.
    """

    __slots__ = ("inside", "blocklist", "direction", "degrade_prob",
                 "fingerprints", "degrade_rng", "on_fingerprint",
                 "blocked_flows", "collateral_flows", "degraded_drops")

    def __init__(
        self,
        inside: Iterable[str],
        blocked: Iterable[str],
        direction: str,
        degrade_prob: float,
        fingerprints: Iterable[str],
        degrade_rng: Optional["random.Random"] = None,
        on_fingerprint: Optional[Any] = None,
    ):
        if direction not in ("outbound", "both"):
            raise NetworkError(
                f"censor direction must be 'outbound' or 'both':"
                f" {direction!r}"
            )
        if not 0 <= degrade_prob <= 1:
            raise NetworkError(
                f"degrade_prob must be in [0, 1]: {degrade_prob}"
            )
        if degrade_prob > 0 and degrade_rng is None:
            raise NetworkError("degrade_prob > 0 needs a degrade_rng")
        self.inside = frozenset(inside)
        self.blocklist = set(blocked)
        self.direction = direction
        self.degrade_prob = degrade_prob
        self.fingerprints = tuple(fingerprints)
        self.degrade_rng = degrade_rng
        self.on_fingerprint = on_fingerprint
        # Cost model: every flow the campaign kills, split into
        # fingerprinted (intended) and collateral (innocent) damage.
        self.blocked_flows = 0
        self.collateral_flows = 0
        self.degraded_drops = 0

    def crossing(self, src_id: str, dst_id: str) -> bool:
        """Does a src→dst message cross the national border?"""
        return (src_id in self.inside) != (dst_id in self.inside)

    def fingerprinted(self, method: str) -> bool:
        """Does the method carry a protocol fingerprint the DPI watches?"""
        for prefix in self.fingerprints:
            if method.startswith(prefix):
                return True
        return False

    def hard_blocks(self, src_id: str, dst_id: str) -> bool:
        """Deterministic directional block (the censor leg of
        :meth:`Network.can_reach` — order-sensitive)."""
        if not self.crossing(src_id, dst_id):
            return False
        remote = dst_id if src_id in self.inside else src_id
        if remote not in self.blocklist:
            return False
        return self.direction == "both" or src_id in self.inside

    def verdict(self, src_id: str, dst_id: str, method: str) -> Optional[str]:
        """Delivery-time decision for one crossing message.

        Returns ``None`` (pass), ``"blocked"`` (hard directional drop)
        or ``"degraded"`` (probabilistic drop in the degraded
        direction), maintaining the cost counters and feeding every
        fingerprinted crossing message to the DPI observation hook —
        even messages that ultimately pass, which is exactly how relay
        traffic leaks to the censor.
        """
        if not self.crossing(src_id, dst_id):
            return None
        is_relay_traffic = self.fingerprinted(method)
        if is_relay_traffic and self.on_fingerprint is not None:
            self.on_fingerprint(src_id, dst_id, method)
        remote = dst_id if src_id in self.inside else src_id
        if remote not in self.blocklist:
            return None
        if self.direction == "both" or src_id in self.inside:
            self.blocked_flows += 1
            if not is_relay_traffic:
                self.collateral_flows += 1
            return "blocked"
        rng = self.degrade_rng
        if (self.degrade_prob > 0 and rng is not None
                and rng.random() < self.degrade_prob):
            self.degraded_drops += 1
            if not is_relay_traffic:
                self.collateral_flows += 1
            return "degraded"
        return None

    def cost_snapshot(self) -> Dict[str, int]:
        """The campaign's running cost counters."""
        return {
            "blocked_flows": self.blocked_flows,
            "collateral_flows": self.collateral_flows,
            "degraded_drops": self.degraded_drops,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CensorSurface(inside={len(self.inside)},"
            f" blocklist={len(self.blocklist)},"
            f" direction={self.direction!r})"
        )


class _RpcFault:
    """Wrapper distinguishing a remote error payload from a normal value."""

    __slots__ = ("error",)

    def __init__(self, error: Exception):
        self.error = error


class Network:
    """The simulated network fabric.

    Parameters
    ----------
    sim:
        The discrete-event simulator driving everything.
    streams:
        Named RNG streams (loss decisions draw from ``"net.loss"``).
    latency:
        A :class:`LatencyModel`; defaults to 50 ms constant.
    loss_rate:
        Independent per-message drop probability in [0, 1).
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RngStreams,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
    ):
        if not 0 <= loss_rate < 1:
            raise NetworkError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.streams = streams
        self.latency = latency if latency is not None else ConstantLatency()
        self.loss_rate = loss_rate
        self.monitor = Monitor()
        # Share the simulator's observation hooks (both None unless an
        # observe() block or explicit Simulator args enabled them).
        self._tracer = sim.tracer
        self._metrics = sim.metrics
        self._nodes: Dict[str, Node] = {}
        self._loss_rng = streams.stream("net.loss")
        self._partition: Optional[Dict[str, int]] = None
        # Fault surface: None unless a FaultPlan window is active
        # (installed only by repro.faults.FaultInjector; FLT001).
        self._faults: Optional[FaultSurface] = None
        # Censor surface: None unless a Censor campaign is active
        # (same installer, same lint rule).
        self._censor: Optional[CensorSurface] = None
        # Flow accounting: sent == delivered + dropped + in_flight at
        # every instant (the chaos conservation invariant).
        self._flow_sent = 0
        self._flow_delivered = 0
        self._flow_dropped = 0
        self._flow_in_flight = 0

    # -- registry ----------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        if node.node_id in self._nodes:
            raise NetworkError(f"duplicate node id {node.node_id!r}")
        node.network = self
        self._nodes[node.node_id] = node
        return node

    def create_node(
        self,
        node_id: str,
        node_class: str = NodeClass.DATACENTER,
        upstream_bps: float = 1e9,
        downstream_bps: float = 1e9,
    ) -> Node:
        return self.add_node(
            Node(node_id, node_class, upstream_bps, downstream_bps)
        )

    def node(self, node_id: str) -> Node:
        node = self._nodes.get(node_id)
        if node is None:
            raise NetworkError(f"unknown node {node_id!r}")
        return node

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    def node_ids(self) -> List[str]:
        return list(self._nodes)

    def online_nodes(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.online]

    # -- one-way messages ----------------------------------------------------

    def send(
        self,
        src_id: str,
        dst_id: str,
        method: str,
        payload: Any = None,
        size_bytes: int = DEFAULT_MESSAGE_BYTES,
    ) -> None:
        """Fire-and-forget message; delivery is best-effort.

        The handler's return value is discarded.  Lost silently if the
        message is dropped or the destination is offline at arrival.
        """
        src, dst = self.node(src_id), self.node(dst_id)
        self.monitor.counters.increment("messages_sent")
        self.monitor.counters.increment(f"bytes_sent.{src_id}", size_bytes)
        self._flow_sent += 1
        self._msg_event("msg_send", src_id, dst_id, method, size_bytes)
        # Loss/latency fault checks inlined (not via _dropped()/_delay()):
        # this is the hottest path in the library and the quiet-plan cost
        # budget is one pointer check per hook, not a method call.
        faults = self._faults
        if (self.loss_rate > 0
                and self._loss_rng.random() < self.loss_rate) or (
                faults is not None and faults.drop_prob > 0
                and faults.drop_rng.random() < faults.drop_prob):
            self.monitor.counters.increment("messages_lost")
            self._flow_dropped += 1
            self._msg_event("msg_drop", src_id, dst_id, method, size_bytes,
                            reason="loss")
            return
        delay = self.latency.delay(src, dst, size_bytes)
        if faults is not None and faults.latency_factor != 1.0:
            delay *= faults.latency_factor
        self._flow_in_flight += 1

        def deliver() -> None:
            self._flow_in_flight -= 1
            if not dst.online:
                self.monitor.counters.increment("messages_to_offline")
                self._flow_dropped += 1
                self._msg_event("msg_drop", src_id, dst_id, method,
                                size_bytes, reason="offline")
                return
            if (self._censor is not None
                    and self._censored(src_id, dst_id, method)):
                self._flow_dropped += 1
                self._msg_event("msg_drop", src_id, dst_id, method,
                                size_bytes, reason="censor")
                return
            if not self.can_reach(src_id, dst_id):
                self.monitor.counters.increment("messages_partitioned")
                self._flow_dropped += 1
                self._msg_event("msg_drop", src_id, dst_id, method,
                                size_bytes, reason="partition")
                return
            arrival_faults = self._faults
            if (arrival_faults is not None
                    and arrival_faults.corrupt_prob > 0
                    and arrival_faults.corrupt_rng.random()
                    < arrival_faults.corrupt_prob):
                self.monitor.counters.increment("messages_corrupted")
                self._flow_dropped += 1
                self._msg_event("msg_drop", src_id, dst_id, method,
                                size_bytes, reason="corrupt")
                return
            self.monitor.counters.increment("messages_delivered")
            self._flow_delivered += 1
            self._msg_event("msg_deliver", src_id, dst_id, method, size_bytes)
            try:
                result = dst.dispatch(method, payload, src_id)
            except ReproError:
                self.monitor.counters.increment("handler_errors")
                return  # fire-and-forget: failures are silent
            if _is_generator(result):
                self.sim.spawn(
                    _swallow_repro_errors(result, self.monitor),
                    name=f"{dst_id}.{method}",
                )

        self.sim.schedule(delay, deliver)

    def broadcast(
        self,
        src_id: str,
        dst_ids: Iterable[str],
        method: str,
        payload: Any = None,
        size_bytes: int = DEFAULT_MESSAGE_BYTES,
    ) -> int:
        """Send the same message to many destinations; returns count sent."""
        count = 0
        for dst_id in dst_ids:
            if dst_id == src_id:
                continue
            self.send(src_id, dst_id, method, payload, size_bytes)
            count += 1
        return count

    # -- request/response ------------------------------------------------------

    def rpc(
        self,
        src_id: str,
        dst_id: str,
        method: str,
        payload: Any = None,
        size_bytes: int = DEFAULT_MESSAGE_BYTES,
        response_bytes: int = DEFAULT_MESSAGE_BYTES,
        timeout: float = 30.0,
        retries: int = 0,
    ) -> Generator:
        """Request/response; ``yield from`` this inside a process.

        Returns the handler's return value.  A timed-out attempt is
        re-issued up to ``retries`` more times (each attempt is a fresh
        request with its own timeout window).  Raises:

        * :class:`RpcTimeoutError` — every attempt's request or response
          was lost, or the peer was offline at arrival time.
        * :class:`RemoteError` — the remote handler raised a
          :class:`~repro.errors.ReproError`; the original is attached as
          ``remote_exception``.  Remote errors are not retried.
        """
        if retries < 0:
            raise NetworkError(f"retries must be >= 0, got {retries}")
        attempts = int(retries) + 1
        for attempt in range(attempts):
            try:
                value = yield from self._rpc_attempt(
                    src_id, dst_id, method, payload, size_bytes,
                    response_bytes, timeout, attempt,
                )
            except RpcTimeoutError:
                if attempt + 1 < attempts:
                    self.monitor.counters.increment("rpcs_retried")
                    if self._metrics is not None:
                        self._metrics.inc("net.rpc_retries")
                    continue
                raise
            return value
        raise AssertionError("unreachable")  # pragma: no cover

    def _rpc_attempt(
        self,
        src_id: str,
        dst_id: str,
        method: str,
        payload: Any,
        size_bytes: int,
        response_bytes: int,
        timeout: float,
        attempt: int,
    ) -> Generator:
        """One request/response attempt (the pre-retry ``rpc`` body)."""
        src, dst = self.node(src_id), self.node(dst_id)
        self.monitor.counters.increment("rpcs_sent")
        self.monitor.counters.increment(f"bytes_sent.{src_id}", size_bytes)
        if self._metrics is not None:
            self._metrics.inc("net.rpcs_sent")
        start = self.sim.now
        done: Signal = self.sim.signal(f"rpc:{src_id}->{dst_id}:{method}")

        self._flow_sent += 1
        faults = self._faults
        if not ((self.loss_rate > 0
                 and self._loss_rng.random() < self.loss_rate) or (
                faults is not None and faults.drop_prob > 0
                and faults.drop_rng.random() < faults.drop_prob)):
            self._msg_event("msg_send", src_id, dst_id, method, size_bytes,
                            leg="rpc_request")
            request_delay = self.latency.delay(src, dst, size_bytes)
            if faults is not None and faults.latency_factor != 1.0:
                request_delay *= faults.latency_factor
            self._flow_in_flight += 1
            self.sim.schedule(
                request_delay,
                self._rpc_arrive,
                src,
                dst,
                method,
                payload,
                response_bytes,
                done,
            )
        else:
            self.monitor.counters.increment("messages_lost")
            self._flow_dropped += 1
            self._msg_event("msg_drop", src_id, dst_id, method, size_bytes,
                            reason="loss", leg="rpc_request")

        # The AnyOf winner cancels the loser: on response, the timeout's
        # heap entry is invalidated (the queue does not stay hot for
        # ``timeout`` seconds); on timeout, the ``done`` waiter is pruned
        # so a late response fires into an empty signal.
        index, value = yield AnyOf([done, Timeout(timeout)])
        if index == 1:
            self.monitor.counters.increment("rpcs_timed_out")
            self._rpc_span(start, src_id, dst_id, method, "timeout", attempt)
            raise RpcTimeoutError(
                f"rpc {method!r} from {src_id!r} to {dst_id!r} timed out"
            )
        if isinstance(value, _RpcFault):
            self._rpc_span(start, src_id, dst_id, method, "remote_error",
                           attempt)
            raise RemoteError(value.error)
        self.monitor.counters.increment("rpcs_completed")
        self._rpc_span(start, src_id, dst_id, method, "ok", attempt)
        return value

    def _rpc_span(
        self,
        start: float,
        src_id: str,
        dst_id: str,
        method: str,
        outcome: str,
        attempt: int,
    ) -> None:
        """Record one finished RPC attempt into the tracer and metrics."""
        if self._tracer is not None:
            self._tracer.emit(
                "rpc", t=start, end=self.sim.now, src=src_id, dst=dst_id,
                method=method, outcome=outcome, attempt=attempt,
            )
        if self._metrics is not None:
            self._metrics.inc(f"net.rpcs_{outcome}")
            if outcome == "ok":
                self._metrics.observe("net.rpc_latency_s",
                                      self.sim.now - start)

    def _rpc_arrive(
        self,
        src: Node,
        dst: Node,
        method: str,
        payload: Any,
        response_bytes: int,
        done: Signal,
    ) -> None:
        self._flow_in_flight -= 1
        if not dst.online:
            self.monitor.counters.increment("messages_to_offline")
            self._flow_dropped += 1
            return  # caller times out
        if (self._censor is not None
                and self._censored(src.node_id, dst.node_id, method)):
            self._flow_dropped += 1
            self._msg_event("msg_drop", src.node_id, dst.node_id, method,
                            0, reason="censor", leg="rpc_request")
            return  # caller times out
        if not self.can_reach(src.node_id, dst.node_id):
            self.monitor.counters.increment("messages_partitioned")
            self._flow_dropped += 1
            return  # caller times out
        faults = self._faults
        if (faults is not None and faults.corrupt_prob > 0
                and faults.corrupt_rng.random() < faults.corrupt_prob):
            self.monitor.counters.increment("messages_corrupted")
            self._flow_dropped += 1
            self._msg_event("msg_drop", src.node_id, dst.node_id, method,
                            0, reason="corrupt", leg="rpc_request")
            return  # caller times out
        self._flow_delivered += 1
        try:
            result = dst.dispatch(method, payload, src.node_id)
        except ReproError as exc:
            self._rpc_respond(src, dst, _RpcFault(exc), response_bytes, done)
            return
        if _is_generator(result):
            process = self.sim.spawn(
                _faults_to_value(result), name=f"{dst.node_id}.{method}"
            )

            def on_complete(value: Any) -> None:
                self._rpc_respond(src, dst, value, response_bytes, done)

            process.completion._subscribe_callback(self.sim, on_complete)
        else:
            self._rpc_respond(src, dst, result, response_bytes, done)

    def _rpc_respond(
        self, src: Node, dst: Node, value: Any, response_bytes: int, done: Signal
    ) -> None:
        """Send the response back from dst to src."""
        if not dst.online:
            return  # server died before responding
        self.monitor.counters.increment(f"bytes_sent.{dst.node_id}", response_bytes)
        self._flow_sent += 1
        faults = self._faults
        if (self.loss_rate > 0
                and self._loss_rng.random() < self.loss_rate) or (
                faults is not None and faults.drop_prob > 0
                and faults.drop_rng.random() < faults.drop_prob):
            self.monitor.counters.increment("messages_lost")
            self._flow_dropped += 1
            self._msg_event("msg_drop", dst.node_id, src.node_id, "response",
                            response_bytes, reason="loss", leg="rpc_response")
            return
        self._msg_event("msg_send", dst.node_id, src.node_id, "response",
                        response_bytes, leg="rpc_response")
        delay = self.latency.delay(dst, src, response_bytes)
        if faults is not None and faults.latency_factor != 1.0:
            delay *= faults.latency_factor
        self._flow_in_flight += 1

        def deliver() -> None:
            self._flow_in_flight -= 1
            if not src.online:
                self.monitor.counters.increment("messages_to_offline")
                self._flow_dropped += 1
                self._msg_event("msg_drop", dst.node_id, src.node_id,
                                "response", response_bytes, reason="offline",
                                leg="rpc_response")
                return
            if (self._censor is not None
                    and self._censored(dst.node_id, src.node_id, "response")):
                self._flow_dropped += 1
                self._msg_event("msg_drop", dst.node_id, src.node_id,
                                "response", response_bytes,
                                reason="censor", leg="rpc_response")
                return
            if not self.can_reach(dst.node_id, src.node_id):
                self.monitor.counters.increment("messages_partitioned")
                self._flow_dropped += 1
                self._msg_event("msg_drop", dst.node_id, src.node_id,
                                "response", response_bytes,
                                reason="partition", leg="rpc_response")
                return
            arrival_faults = self._faults
            if (arrival_faults is not None
                    and arrival_faults.corrupt_prob > 0
                    and arrival_faults.corrupt_rng.random()
                    < arrival_faults.corrupt_prob):
                self.monitor.counters.increment("messages_corrupted")
                self._flow_dropped += 1
                self._msg_event("msg_drop", dst.node_id, src.node_id,
                                "response", response_bytes,
                                reason="corrupt", leg="rpc_response")
                return
            self._flow_delivered += 1
            self._msg_event("msg_deliver", dst.node_id, src.node_id,
                            "response", response_bytes, leg="rpc_response")
            if not done.fired:
                done.fire(value)

        self.sim.schedule(delay, deliver)

    # -- partitions -------------------------------------------------------------

    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Split the network: messages between different groups are lost.

        Nodes not named in any group form one implicit extra group.
        Models the §3.2 'loss of communication channels' threat; call
        :meth:`heal` to reconnect.
        """
        mapping: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for node_id in group:
                self.node(node_id)  # validate
                if node_id in mapping:
                    raise NetworkError(
                        f"node {node_id!r} appears in two partition groups"
                    )
                mapping[node_id] = index
        self._partition = mapping
        self.monitor.counters.increment("partitions_created")

    def heal(self) -> None:
        """Reconnect all partitions."""
        self._partition = None
        self.monitor.counters.increment("partitions_healed")

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    def can_reach(self, src_id: str, dst_id: str) -> bool:
        """Can a message travel from ``src_id`` to ``dst_id`` right now?

        Partitions are symmetric (same-side check), but a censor
        campaign makes the answer **order-sensitive**: under an
        ``outbound`` campaign an inside node cannot reach a blocklisted
        outside endpoint while the reverse direction merely degrades
        (``can_reach(out, in)`` stays ``True``; the probabilistic
        degrade drop happens at delivery time).  Both legs are consulted
        at *delivery* time by the transport, so faults landing while a
        message is in flight still kill it.
        """
        partition = self._partition
        if partition is not None:
            implicit = -1
            if partition.get(src_id, implicit) != partition.get(
                dst_id, implicit
            ):
                return False
        censor = self._censor
        if censor is not None and censor.hard_blocks(src_id, dst_id):
            return False
        return True

    # -- internals ------------------------------------------------------------

    def _msg_event(
        self,
        kind: str,
        src_id: str,
        dst_id: str,
        method: str,
        size_bytes: int,
        reason: Optional[str] = None,
        leg: Optional[str] = None,
    ) -> None:
        """Record one message leg into the tracer and metrics (no-op
        with observation disabled)."""
        if self._tracer is not None:
            fields: Dict[str, Any] = {
                "t": self.sim.now, "src": src_id, "dst": dst_id,
                "method": method, "bytes": size_bytes,
            }
            if reason is not None:
                fields["reason"] = reason
            if leg is not None:
                fields["leg"] = leg
            self._tracer.emit(kind, **fields)
        if self._metrics is not None:
            if kind == "msg_send":
                self._metrics.inc("net.messages_sent")
                self._metrics.inc("net.bytes_sent", size_bytes)
            elif kind == "msg_deliver":
                self._metrics.inc("net.messages_delivered")
                self._metrics.inc("net.bytes_delivered", size_bytes)
            else:
                self._metrics.inc("net.messages_dropped")
                self._metrics.inc(f"net.messages_dropped.{reason}")

    # The three fault predicates below are the reference implementations
    # (exercised directly by the injector tests).  The message hot paths
    # (send / _rpc_attempt / _rpc_arrive / _rpc_respond) inline the same
    # logic — identical draw order — to keep the quiet-plan cost at one
    # pointer check per hook; keep both in sync.

    def _dropped(self) -> bool:
        if self.loss_rate > 0 and self._loss_rng.random() < self.loss_rate:
            return True
        faults = self._faults
        return (
            faults is not None
            and faults.drop_prob > 0
            and faults.drop_rng.random() < faults.drop_prob
        )

    def _corrupted(self) -> bool:
        """Receiver-side checksum rejection while a Corrupt window is open."""
        faults = self._faults
        return (
            faults is not None
            and faults.corrupt_prob > 0
            and faults.corrupt_rng.random() < faults.corrupt_prob
        )

    def _delay(self, src: Node, dst: Node, size_bytes: int) -> float:
        delay = self.latency.delay(src, dst, size_bytes)
        faults = self._faults
        if faults is not None and faults.latency_factor != 1.0:
            delay *= faults.latency_factor
        return delay

    def _censored(self, src_id: str, dst_id: str, method: str) -> bool:
        """Delivery-time censor verdict for one message leg.

        Checked *before* the partition test so a censor kill is
        attributed (counter, drop reason, cost model) to the campaign
        rather than to whatever partition may also be open.  Callers
        guard on ``self._censor is not None`` inline, keeping the quiet
        path (no campaign) to one attribute load per leg.
        """
        censor = self._censor
        if censor is None:
            return False
        verdict = censor.verdict(src_id, dst_id, method)
        if verdict is None:
            return False
        self.monitor.counters.increment("messages_censored")
        if self._metrics is not None:
            self._metrics.inc(f"faults.censor.{verdict}")
        return True

    def _set_fault_surface(self, surface: Optional[FaultSurface]) -> None:
        """Install (or clear, with ``None``) transport fault injection.

        Internal API for :class:`repro.faults.FaultInjector`; every
        other caller must express faults as a
        :class:`~repro.faults.FaultPlan` (lint rule FLT001).
        """
        self._faults = surface

    @property
    def fault_surface(self) -> Optional[FaultSurface]:
        """The active fault surface (``None`` when no plan window is open)."""
        return self._faults

    def _set_censor_surface(self, surface: Optional["CensorSurface"]) -> None:
        """Install (or clear, with ``None``) a censorship campaign.

        Internal API for :class:`repro.faults.FaultInjector`; every
        other caller must express censorship as a
        :class:`~repro.faults.plan.Censor` plan event (lint rule
        FLT001).
        """
        self._censor = surface

    @property
    def censor_surface(self) -> Optional["CensorSurface"]:
        """The active censor surface (``None`` when no campaign is open)."""
        return self._censor

    def flow_snapshot(self) -> Dict[str, int]:
        """Exact per-leg message accounting (conservation invariant).

        Counts every transport leg — one-way sends, RPC requests, RPC
        responses.  At every instant
        ``sent == delivered + dropped + in_flight``; a run that drains
        its queue ends with ``in_flight == 0``.
        """
        return {
            "sent": self._flow_sent,
            "delivered": self._flow_delivered,
            "dropped": self._flow_dropped,
            "in_flight": self._flow_in_flight,
        }

    def bytes_sent(self, node_id: str) -> int:
        return self.monitor.counters.get(f"bytes_sent.{node_id}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Network(nodes={len(self._nodes)}, loss={self.loss_rate})"


def _is_generator(obj: Any) -> bool:
    return hasattr(obj, "send") and hasattr(obj, "throw")


def _faults_to_value(handler_generator: Generator) -> Generator:
    """Run a handler process, converting :class:`ReproError` raised inside
    it into an RPC fault value (delivered to the caller as RemoteError)."""
    try:
        value = yield from handler_generator
    except ReproError as exc:
        return _RpcFault(exc)
    return value


def _swallow_repro_errors(handler_generator: Generator, monitor: Monitor) -> Generator:
    """Run a fire-and-forget handler process; library errors are counted
    and dropped (one-way messages have nowhere to report failure)."""
    try:
        yield from handler_generator
    except ReproError:
        monitor.counters.increment("handler_errors")
