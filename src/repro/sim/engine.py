"""Deterministic discrete-event simulation engine.

This is the substrate every protocol simulation in the library runs on.  It
is intentionally small: an event queue ordered by ``(time, sequence)``, plus
a generator-based process abstraction similar in spirit to SimPy.

Determinism guarantees
----------------------
* Events scheduled for the same instant fire in scheduling order (FIFO via a
  monotonic sequence number), never in hash or id order.
* All randomness used by simulations must come from
  :class:`repro.sim.rng.RngStreams`, which derives independent seeded
  streams by name.  The engine itself is randomness-free.

Typical usage::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(5.0)
        print("woke at", sim.now)

    sim.spawn(worker(sim))
    sim.run()
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = [
    "Simulator",
    "Process",
    "Signal",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
]


class Interrupt(Exception):
    """Thrown into a process generator when it is interrupted.

    The ``cause`` attribute carries the interrupter-supplied reason.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _Waitable:
    """Base for things a process may ``yield`` on."""

    def _subscribe(self, sim: "Simulator", process: "Process") -> None:
        raise NotImplementedError


class Timeout(_Waitable):
    """Wait for a fixed amount of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay!r}")
        self.delay = float(delay)

    def _subscribe(self, sim: "Simulator", process: "Process") -> None:
        sim.schedule(self.delay, process._resume, None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay})"


class Signal(_Waitable):
    """A one-shot waitable event that processes can block on.

    A signal starts *pending*; calling :meth:`fire` wakes every waiter with
    the supplied value.  Waiting on an already-fired signal resumes the
    waiter immediately (at the current instant) with the stored value.
    """

    __slots__ = ("name", "_fired", "_value", "_waiters")

    def __init__(self, name: str = ""):
        self.name = name
        self._fired = False
        self._value: Any = None
        self._waiters: List[Tuple[Simulator, Process]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError(f"signal {self.name!r} has not fired")
        return self._value

    def fire(self, value: Any = None) -> None:
        if self._fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for sim, process in waiters:
            sim.schedule(0.0, process._resume, value)

    def _subscribe(self, sim: "Simulator", process: "Process") -> None:
        if self._fired:
            sim.schedule(0.0, process._resume, self._value)
        else:
            self._waiters.append((sim, process))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self._fired else "pending"
        return f"Signal({self.name!r}, {state})"


class AllOf(_Waitable):
    """Wait until every child waitable has completed.

    Resumes the waiter with a list of child results in child order.
    Children may be :class:`Signal` or :class:`Process` instances.
    """

    def __init__(self, children: Iterable[_Waitable]):
        self.children = list(children)
        if not self.children:
            raise SimulationError("AllOf requires at least one child")

    def _subscribe(self, sim: "Simulator", process: "Process") -> None:
        remaining = len(self.children)
        results: List[Any] = [None] * remaining
        done = {"n": remaining}

        def make_cb(index: int) -> Callable[[Any], None]:
            def cb(value: Any) -> None:
                results[index] = value
                done["n"] -= 1
                if done["n"] == 0:
                    sim.schedule(0.0, process._resume, list(results))

            return cb

        for i, child in enumerate(self.children):
            _subscribe_callback(sim, child, make_cb(i))


class AnyOf(_Waitable):
    """Wait until the first child waitable completes.

    Resumes the waiter with ``(index, value)`` of the first completion.
    Later completions are ignored.
    """

    def __init__(self, children: Iterable[_Waitable]):
        self.children = list(children)
        if not self.children:
            raise SimulationError("AnyOf requires at least one child")

    def _subscribe(self, sim: "Simulator", process: "Process") -> None:
        state = {"done": False}

        def make_cb(index: int) -> Callable[[Any], None]:
            def cb(value: Any) -> None:
                if not state["done"]:
                    state["done"] = True
                    sim.schedule(0.0, process._resume, (index, value))

            return cb

        for i, child in enumerate(self.children):
            _subscribe_callback(sim, child, make_cb(i))


def _subscribe_callback(
    sim: "Simulator", child: _Waitable, callback: Callable[[Any], None]
) -> None:
    """Attach ``callback`` to a child waitable without a waiting process."""
    if isinstance(child, Signal):
        if child.fired:
            sim.schedule(0.0, callback, child.value)
        else:
            child._waiters.append((sim, _CallbackProcess(callback)))
    elif isinstance(child, Process):
        child.completion._subscribe_callback(sim, callback)
    elif isinstance(child, Timeout):
        sim.schedule(child.delay, callback, None)
    else:
        raise SimulationError(f"cannot combine waitable {child!r}")


class _CallbackProcess:
    """Adapter letting a plain callback sit in a Signal waiter list."""

    __slots__ = ("_callback",)

    def __init__(self, callback: Callable[[Any], None]):
        self._callback = callback

    def _resume(self, value: Any) -> None:
        self._callback(value)


class Process:
    """A generator-based simulated process.

    The generator may yield:

    * a ``float``/``int`` — sleep for that many simulated seconds;
    * a :class:`Timeout`, :class:`Signal`, :class:`AllOf`, :class:`AnyOf`;
    * another :class:`Process` — wait for it to finish (join).

    The value sent back into the generator is the result of the wait (the
    signal's value, the joined process's return value, ``None`` for
    timeouts).  The process's own return value (via ``return x``) becomes
    the value of its completion signal.
    """

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__};"
                " did you forget to call the generator function?"
            )
        self.sim = sim
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.completion = Signal(f"done:{self.name}")
        self._alive = True
        self._interrupt_pending: Optional[Interrupt] = None

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def result(self) -> Any:
        """Return value of the finished process (raises if still running)."""
        return self.completion.value

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resume.

        Interrupting a dead process is a no-op.
        """
        if not self._alive:
            return
        self._interrupt_pending = Interrupt(cause)
        self.sim.schedule(0.0, self._resume, None)

    def _resume(self, value: Any) -> None:
        if not self._alive:
            return
        try:
            if self._interrupt_pending is not None:
                exc, self._interrupt_pending = self._interrupt_pending, None
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self._alive = False
            self.completion.fire(getattr(stop, "value", None))
            return
        except Interrupt:
            self._alive = False
            self.completion.fire(None)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, (int, float)):
            target = Timeout(target)
        if isinstance(target, Process):
            target = target.completion
        if not isinstance(target, _Waitable):
            raise SimulationError(
                f"process {self.name!r} yielded unwaitable {target!r}"
            )
        target._subscribe(self.sim, self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self._alive else "done"
        return f"Process({self.name!r}, {state})"


# Extend Signal with a callback-subscription used by AllOf/AnyOf on processes.
def _signal_subscribe_callback(
    self: Signal, sim: "Simulator", callback: Callable[[Any], None]
) -> None:
    if self._fired:
        sim.schedule(0.0, callback, self._value)
    else:
        self._waiters.append((sim, _CallbackProcess(callback)))


Signal._subscribe_callback = _signal_subscribe_callback  # type: ignore[attr-defined]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    callback: Callable = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """The discrete-event simulation kernel.

    Attributes
    ----------
    now:
        Current simulated time in seconds.  Starts at 0.0.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[_ScheduledEvent] = []
        self._seq = 0
        self._running = False
        self._processed = 0

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for instrumentation)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Events still queued (including cancelled ones not yet popped)."""
        return sum(1 for ev in self._queue if not ev.cancelled)

    def schedule(
        self, delay: float, callback: Callable, *args: Any
    ) -> _ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns a handle whose :meth:`cancel` prevents execution.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        event = _ScheduledEvent(self.now + delay, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self, when: float, callback: Callable, *args: Any
    ) -> _ScheduledEvent:
        """Schedule ``callback`` at absolute simulated time ``when``."""
        return self.schedule(when - self.now, callback, *args)

    def timeout(self, delay: float) -> Timeout:
        """Create a timeout waitable (sugar for ``Timeout(delay)``)."""
        return Timeout(delay)

    def signal(self, name: str = "") -> Signal:
        """Create a fresh one-shot signal."""
        return Signal(name)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from a generator; it runs at the current
        instant (before time advances)."""
        process = Process(self, generator, name)
        self.schedule(0.0, process._resume, None)
        return process

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the queue empties or simulated time passes ``until``.

        Returns the final simulated time.  ``max_events`` guards against
        runaway simulations (raises :class:`SimulationError` when hit).
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        try:
            budget = max_events
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                self.now = event.time
                self._processed += 1
                event.callback(*event.args)
                budget -= 1
                if budget <= 0:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
        return self.now

    def run_process(
        self, generator: Generator, name: str = "", until: Optional[float] = None
    ) -> Any:
        """Spawn a process, run the simulation, and return the process's
        return value.

        With ``until=None`` runs until the event queue drains — only safe
        when no perpetual background processes (miners, gossip loops) are
        scheduled.  Pass a horizon when they are; raises if the process has
        not finished by then.
        """
        process = self.spawn(generator, name)
        if until is None:
            self.run()
        else:
            while process.alive and self.now < until:
                # Advance in slices so we stop soon after completion.
                self.run(until=min(until, self.now + 1000.0))
        if process.alive:
            raise SimulationError(
                f"process {process.name!r} did not finish"
                + (" (deadlock?)" if until is None else f" by t={until}")
            )
        return process.result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self.now}, pending={self.pending_events})"
