"""Tolerance-based comparison of two benchmark reports.

The comparison embodies the harness's two-channel design:

* **Work counters compare exactly.**  Any drift — a counter appearing,
  disappearing, or changing value — is a regression finding, because
  the counters are deterministic functions of the workload.  More
  events fired or cache hits lost means the *algorithm* changed, and no
  amount of timing noise can explain it away.
* **Wall clock compares within a band.**  A benchmark regresses only
  when ``new_best > old_best * (1 + tolerance) + absolute_floor_s``.
  The relative tolerance absorbs machine-speed drift; the absolute
  floor keeps microsecond-scale benchmarks from tripping on scheduler
  jitter.  Improvements are reported informationally, never as
  failures.
* **Coverage must not shrink.**  A benchmark present in the baseline
  but missing from the new report is a finding (a deleted benchmark is
  how a regression hides); new benchmarks are fine.
* **Determinism must hold.**  A new-report benchmark whose repetitions
  disagreed on work counters is a finding regardless of timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

__all__ = [
    "DEFAULT_ABSOLUTE_FLOOR_S",
    "DEFAULT_TOLERANCE",
    "CompareFinding",
    "compare_reports",
    "render_compare_human",
    "restrict_baseline",
]

#: Allowed relative wall-clock growth before a benchmark counts as a
#: regression (0.25 == 25% slower than baseline).
DEFAULT_TOLERANCE = 0.25

#: Absolute slack added on top of the relative band, so sub-millisecond
#: benchmarks do not regress on scheduler jitter alone.
DEFAULT_ABSOLUTE_FLOOR_S = 0.025


@dataclass(frozen=True)
class CompareFinding:
    """One comparison outcome; ``regression`` says whether it fails CI."""

    benchmark: str
    kind: str  # work_drift | wall_clock | missing | nondeterministic | improved
    message: str
    regression: bool


def _work_drift(
    name: str, old_work: Dict[str, Any], new_work: Dict[str, Any]
) -> List[CompareFinding]:
    findings: List[CompareFinding] = []
    for counter in sorted(set(old_work) | set(new_work)):
        old_value = old_work.get(counter)
        new_value = new_work.get(counter)
        if old_value == new_value:
            continue
        findings.append(CompareFinding(
            benchmark=name,
            kind="work_drift",
            message=(
                f"work counter {counter!r} drifted:"
                f" {old_value!r} -> {new_value!r}"
                " (work counters must match exactly)"
            ),
            regression=True,
        ))
    return findings


def restrict_baseline(
    old: Dict[str, Any],
    suite: "str | None" = None,
    name_filter: "str | None" = None,
) -> Dict[str, Any]:
    """The baseline report narrowed to one run-selection.

    When ``--suite``/``--filter`` restrict what the new run executes, a
    full-suite baseline would otherwise flag every unexecuted benchmark
    as "missing" — a false regression.  This keeps the missing-benchmark
    check meaningful by comparing like against like: only baseline
    entries the selection *would have run* survive.
    """
    benchmarks = [
        b for b in old.get("benchmarks", [])
        if (suite is None or b.get("suite") == suite)
        and (name_filter is None or name_filter in b.get("name", ""))
    ]
    restricted = dict(old)
    restricted["benchmarks"] = benchmarks
    return restricted


def compare_reports(
    old: Dict[str, Any],
    new: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    absolute_floor_s: float = DEFAULT_ABSOLUTE_FLOOR_S,
) -> List[CompareFinding]:
    """Compare ``new`` against the ``old`` baseline report.

    Returns findings ordered by benchmark name; a finding with
    ``regression=True`` means the comparison fails (CLI exit 1).
    """
    old_by_name = {b["name"]: b for b in old.get("benchmarks", [])}
    new_by_name = {b["name"]: b for b in new.get("benchmarks", [])}
    findings: List[CompareFinding] = []
    for name in sorted(old_by_name):
        baseline = old_by_name[name]
        candidate = new_by_name.get(name)
        if candidate is None:
            findings.append(CompareFinding(
                benchmark=name,
                kind="missing",
                message="benchmark present in baseline but not in new"
                        " report",
                regression=True,
            ))
            continue
        if not candidate.get("deterministic", True):
            findings.append(CompareFinding(
                benchmark=name,
                kind="nondeterministic",
                message="work counters differed between repetitions of"
                        " the new run",
                regression=True,
            ))
        findings.extend(_work_drift(
            name, baseline.get("work", {}), candidate.get("work", {})
        ))
        old_best = float(baseline["best_s"])
        new_best = float(candidate["best_s"])
        limit = old_best * (1.0 + tolerance) + absolute_floor_s
        if new_best > limit:
            findings.append(CompareFinding(
                benchmark=name,
                kind="wall_clock",
                message=(
                    f"best wall clock regressed: {old_best:.6f}s ->"
                    f" {new_best:.6f}s (limit {limit:.6f}s at"
                    f" tolerance {tolerance:g} + floor"
                    f" {absolute_floor_s:g}s)"
                ),
                regression=True,
            ))
        elif old_best > 0 and new_best < old_best * (1.0 - tolerance):
            findings.append(CompareFinding(
                benchmark=name,
                kind="improved",
                message=(
                    f"best wall clock improved: {old_best:.6f}s ->"
                    f" {new_best:.6f}s"
                ),
                regression=False,
            ))
    return findings


def render_compare_human(findings: List[CompareFinding]) -> str:
    """One line per finding; a PASS line when nothing regressed."""
    regressions = [f for f in findings if f.regression]
    lines = []
    for finding in findings:
        tag = "REGRESSION" if finding.regression else "note"
        lines.append(f"  {tag:<10} {finding.benchmark}: {finding.message}")
    lines.append(
        f"compare: {len(regressions)} regression(s),"
        f" {len(findings) - len(regressions)} note(s)"
    )
    return "\n".join(lines)
