"""Proof-of-work: a real (small) hash puzzle plus an analytic mining race.

Two layers, matching how the blockchain simulator uses PoW:

* :class:`PowPuzzle` — an actual SHA-256 partial-preimage puzzle, ground
  nonce-by-nonce.  Used at low difficulty in tests and wherever a concrete,
  verifiable nonce is wanted (block headers carry one).
* :class:`MiningRace` — the standard analytic model: block discovery is a
  Poisson process with rate ``hashrate / difficulty``; the winner of each
  block is drawn proportionally to hashrate.  This lets the chain simulator
  model years of mining (and 51% attacks, the paper's §3.1 concern) without
  grinding real hashes.

Both agree on the statistics: the puzzle's expected attempts equal the
race's ``difficulty`` parameter when ``difficulty = 2**target_bits``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import CryptoError
from repro.crypto.hashing import sha256_hex
from repro.sim.rng import RngStreams

__all__ = ["PowPuzzle", "MiningRace", "expected_block_time"]


@dataclass(frozen=True)
class PowPuzzle:
    """Find ``nonce`` with ``sha256(f"{data}:{nonce}")`` under the target.

    ``target_bits`` is the number of leading zero bits required; expected
    work is ``2**target_bits`` attempts.
    """

    data: str
    target_bits: int

    def __post_init__(self) -> None:
        if not 0 <= self.target_bits <= 64:
            raise CryptoError(
                f"target_bits {self.target_bits} outside sane range [0, 64]"
            )

    @property
    def target(self) -> int:
        """Digests strictly below this value satisfy the puzzle."""
        return 1 << (256 - self.target_bits)

    def attempt_hash(self, nonce: int) -> int:
        return int(sha256_hex(f"{self.data}:{nonce}".encode("utf-8")), 16)

    def verify(self, nonce: int) -> bool:
        return self.attempt_hash(nonce) < self.target

    def solve(self, max_attempts: int = 1_000_000, start_nonce: int = 0) -> int:
        """Grind until a satisfying nonce is found.

        Raises :class:`CryptoError` if the budget is exhausted — callers at
        realistic difficulty should be using :class:`MiningRace` instead.
        """
        for nonce in range(start_nonce, start_nonce + max_attempts):
            if self.verify(nonce):
                return nonce
        raise CryptoError(
            f"no solution within {max_attempts} attempts at"
            f" {self.target_bits} bits; use MiningRace for high difficulty"
        )


def expected_block_time(total_hashrate: float, difficulty: float) -> float:
    """Expected seconds per block for a Poisson mining process."""
    if total_hashrate <= 0:
        raise CryptoError(f"hashrate must be positive: {total_hashrate}")
    if difficulty <= 0:
        raise CryptoError(f"difficulty must be positive: {difficulty}")
    return difficulty / total_hashrate


class MiningRace:
    """Samples (winner, time-to-block) for a set of miners.

    ``difficulty`` is expressed as expected hash attempts per block, so a
    miner with hashrate H (attempts/second) finds blocks at rate
    ``H / difficulty``.
    """

    def __init__(self, streams: RngStreams, stream_name: str = "pow.race"):
        self._rng = streams.stream(stream_name)

    def sample_block(
        self, hashrates: Dict[str, float], difficulty: float
    ) -> Tuple[str, float]:
        """Return ``(winner_id, seconds_until_block)``.

        The time is exponential with the aggregate rate; the winner is
        chosen proportionally to hashrate — the exact competition model
        used throughout the Bitcoin literature.
        """
        active = {m: h for m, h in hashrates.items() if h > 0}
        if not active:
            raise CryptoError("no miner has positive hashrate")
        if difficulty <= 0:
            raise CryptoError(f"difficulty must be positive: {difficulty}")
        total = sum(active.values())
        dt = self._rng.expovariate(total / difficulty)
        pick = self._rng.random() * total
        cumulative = 0.0
        winner: Optional[str] = None
        for miner_id in sorted(active):  # sorted => deterministic tie-walk
            cumulative += active[miner_id]
            if pick < cumulative:
                winner = miner_id
                break
        if winner is None:  # float edge: pick == total
            winner = max(sorted(active), key=lambda m: active[m])
        return winner, dt
