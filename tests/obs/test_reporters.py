"""Tests for obs report rendering and JSONL trace validation."""

import json

from repro.obs import (
    Metrics,
    Tracer,
    render_report_human,
    render_report_json,
    validate_trace_file,
    validate_trace_line,
)
from repro.obs.reporters import JSON_SCHEMA_VERSION


def _sample_metrics():
    metrics = Metrics()
    metrics.inc("net.rpcs_sent", 3)
    metrics.set_gauge("sweep.workers", 2.0)
    metrics.observe("net.rpc_latency_s", 0.1)
    metrics.observe("net.rpc_latency_s", 0.3)
    return metrics


class TestJsonReport:
    def test_schema_and_sections(self):
        tracer = Tracer()
        tracer.emit("rpc", t=0.0)
        payload = json.loads(
            render_report_json(_sample_metrics(), tracer, experiment="E4")
        )
        assert payload["schema"] == JSON_SCHEMA_VERSION
        assert payload["experiment"] == "E4"
        assert payload["trace"] == {
            "events": 1, "dropped": 0, "by_kind": {"rpc": 1},
        }
        assert payload["metrics"]["counters"]["net.rpcs_sent"] == 3
        assert payload["metrics"]["histograms"]["net.rpc_latency_s"]["count"] == 2

    def test_sections_optional(self):
        payload = json.loads(render_report_json())
        assert payload == {"schema": JSON_SCHEMA_VERSION}


class TestHumanReport:
    def test_sections_rendered(self):
        tracer = Tracer()
        tracer.emit("msg_send", t=0.0)
        text = render_report_human(_sample_metrics(), tracer, experiment="E4")
        assert "experiment: E4" in text
        assert "trace: 1 event(s)" in text
        assert "msg_send" in text
        assert "counters:" in text
        assert "net.rpcs_sent" in text
        assert "gauges:" in text
        assert "histograms:" in text
        assert "count=2" in text

    def test_empty_report_is_empty(self):
        assert render_report_human() == ""

    def test_dropped_records_surfaced(self):
        tracer = Tracer(capacity=1)
        tracer.emit("a")
        tracer.emit("b")
        assert "1 dropped" in render_report_human(tracer=tracer)


class TestValidateLine:
    def test_clean_line(self):
        line = {"schema": 1, "seq": 0, "kind": "rpc", "t": 1.5, "extra": "ok"}
        assert validate_trace_line(line) == []

    def test_non_object(self):
        assert validate_trace_line([1, 2]) == [
            "record is list, expected object"
        ]

    def test_bad_schema(self):
        errors = validate_trace_line({"schema": 2, "seq": 0, "kind": "x"})
        assert any("schema" in e for e in errors)

    def test_bad_seq(self):
        for seq in (None, -1, "0", True):
            errors = validate_trace_line({"schema": 1, "seq": seq, "kind": "x"})
            assert any("seq" in e for e in errors), seq

    def test_seq_regression_detected(self):
        errors = validate_trace_line(
            {"schema": 1, "seq": 3, "kind": "x"}, expected_seq=5
        )
        assert any("not increasing" in e for e in errors)

    def test_bad_kind(self):
        for kind in (None, "", 7):
            errors = validate_trace_line({"schema": 1, "seq": 0, "kind": kind})
            assert any("kind" in e for e in errors), kind

    def test_bad_timestamp(self):
        for t in (-1.0, float("nan"), float("inf"), "0", True):
            errors = validate_trace_line(
                {"schema": 1, "seq": 0, "kind": "x", "t": t}
            )
            assert any("t is" in e for e in errors), t

    def test_timestamp_optional(self):
        assert validate_trace_line({"schema": 1, "seq": 0, "kind": "x"}) == []


class TestValidateFile:
    def test_valid_file(self, tmp_path):
        tracer = Tracer()
        tracer.emit("a", t=0.0)
        tracer.emit("b", t=1.0)
        path = tmp_path / "ok.jsonl"
        tracer.write_jsonl(str(path))
        assert validate_trace_file(str(path)) == []

    def test_errors_carry_line_numbers(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"schema":1,"seq":0,"kind":"a"}\n'
            "not json at all\n"
            '{"schema":1,"seq":0,"kind":"a"}\n'  # seq regression
            '{"schema":9,"seq":3,"kind":""}\n'
        )
        errors = validate_trace_file(str(path))
        assert any(e.startswith("line 2: not JSON") for e in errors)
        assert any(e.startswith("line 3: seq 0 not increasing") for e in errors)
        assert any(e.startswith("line 4:") and "schema" in e for e in errors)
        assert any(e.startswith("line 4:") and "kind" in e for e in errors)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"schema":1,"seq":0,"kind":"a"}\n\n\n')
        assert validate_trace_file(str(path)) == []
