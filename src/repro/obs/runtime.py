"""Ambient observation: the context instrumented layers pick up.

Experiments construct their own :class:`~repro.sim.engine.Simulator`,
:class:`~repro.net.transport.Network`, and
:class:`~repro.analysis.runner.SweepRunner` internally, so a caller who
wants telemetry cannot pass a tracer down every constructor.  Instead::

    tracer, metrics = Tracer(), Metrics()
    with observe(tracer=tracer, metrics=metrics):
        run_federation_availability(seed=7)
    tracer.write_jsonl("trace.jsonl")

Instrumented constructors call :func:`active` exactly once (at build
time) and keep plain attribute references; with no observation active
they hold ``None`` and every hook site is a single ``is not None``
check — the zero-cost-when-disabled contract.

The active observation is process-global, not thread-local: the whole
library is single-threaded by design (parallelism happens across
*processes* in the sweep runner, which do not inherit the parent's
observation — worker tasks run untraced).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.obs.metrics import Metrics
from repro.obs.tracer import Tracer

__all__ = ["Observation", "active", "observe"]


@dataclass(frozen=True)
class Observation:
    """What an ``observe()`` block makes ambient."""

    tracer: Optional[Tracer] = None
    metrics: Optional[Metrics] = None


_ACTIVE: Optional[Observation] = None


def active() -> Optional[Observation]:
    """The current ambient observation, or ``None`` (the common case)."""
    return _ACTIVE


@contextmanager
def observe(
    tracer: Optional[Tracer] = None, metrics: Optional[Metrics] = None
) -> Iterator[Observation]:
    """Make a tracer and/or metrics registry ambient for the block.

    Nesting replaces the outer observation for the inner block and
    restores it on exit.  Objects built *before* the block keep their
    (un)instrumented state — observation is sampled at construction.
    """
    global _ACTIVE
    observation = Observation(tracer=tracer, metrics=metrics)
    previous = _ACTIVE
    _ACTIVE = observation
    try:
        yield observation
    finally:
        _ACTIVE = previous
