"""Trust-gated partial federation: the middle of the §3.2 spectrum.

:class:`SingleHomeFederation` and :class:`ReplicatedFederation` model the
two extremes of the paper's availability-vs-control asymmetry: push-once
with no repair, and full replication everywhere.  Real federations
(Matrix, ActivityPub) sit between.  :class:`PartialFederation` models
that middle ground:

* **Per-peer trust levels and federation policies.**  Each server runs a
  :class:`FederationHub` holding a :class:`FederationPeer` record per
  remote server: a trust level in [0, 1], a :class:`FederationPolicy`
  (``full`` / ``filtered`` / ``none``), and an active flag (deactivated
  peers — defederation — exchange nothing).  ``full`` shares every
  entry; ``filtered`` shares public entries with anyone but private
  entries only with peers at or above the federation's
  ``trust_threshold``; ``none`` shares nothing.
* **Propagation via the existing substrate.**  A post is stored on the
  author's home hub, eagerly pushed (fire-and-forget transport sends, in
  sorted peer order) to every peer the policy admits, and repaired by a
  per-hub anti-entropy gossip loop that reconciles policy-filtered
  digests over RPC — the same mechanism as
  :class:`~repro.gossip.antientropy.AntiEntropyNode`, made trust-aware.
* **Pluggable conflict resolution.**  Replicated *state* registers
  (room topic et al.) are mutable, so divergent replicas appear after
  partitions.  Merges fast-forward along recorded ``prev`` stamps; a
  non-fast-forward merge is a conflict handed to the federation's
  :class:`ConflictStrategy`: :class:`LastWriterWins` (Lamport stamp
  order), :class:`TrustWeighted` (shared writer reputation, then stamp),
  or :class:`ManualQueue` (keep the current value, park the conflict for
  an operator; :meth:`PartialFederation.resolve_manual_queues` applies a
  deterministic resolution).  The automatic strategies are total orders
  over versions, so replicas provably converge once gossip quiesces —
  the invariant the chaos harness checks (see
  :func:`repro.faults.scenarios.run_chaos_partial`).

Observability: federation decisions (shares, withholdings, rejections)
and conflict resolutions count into the ambient metrics and emit
``federation_conflict`` trace events, all zero-cost when observation is
disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.errors import (
    GroupCommError,
    NetworkError,
    RemoteError,
    RpcTimeoutError,
)
from repro.gossip.antientropy import Versioned
from repro.groupcomm.federated import FederationBase
from repro.groupcomm.messages import Message
from repro.net.node import Node
from repro.net.transport import Network
from repro.sim.rng import RngStreams

__all__ = [
    "ConflictRecord",
    "ConflictStrategy",
    "FederationHub",
    "FederationPeer",
    "FederationPolicy",
    "LastWriterWins",
    "ManualQueue",
    "PartialFederation",
    "PartialReplicaStore",
    "TrustWeighted",
    "make_strategy",
]

Stamp = Tuple[int, str, str]


class FederationPolicy:
    """How much a hub federates with one peer (per-peer setting)."""

    FULL = "full"          # share and accept everything
    FILTERED = "filtered"  # public entries always; private only if trusted
    NONE = "none"          # no exchange (but the peer stays registered)

    ALL = (FULL, FILTERED, NONE)


@dataclass
class FederationPeer:
    """One hub's view of one remote server."""

    peer_id: str
    name: str
    trust_level: float = 0.5
    policy: str = FederationPolicy.FULL
    active: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.trust_level <= 1.0:
            raise GroupCommError(
                f"trust level must be in [0, 1], got {self.trust_level}"
            )
        if self.policy not in FederationPolicy.ALL:
            raise GroupCommError(
                f"unknown federation policy {self.policy!r}; expected one"
                f" of {FederationPolicy.ALL}"
            )


@dataclass(frozen=True)
class ConflictRecord:
    """A divergent-replica pair parked for operator review."""

    key: str
    current: Versioned
    incoming: Versioned
    at: float


class ConflictStrategy:
    """Resolves two concurrent versions of one replicated register.

    ``resolve`` must be a pure function of its arguments: every hub that
    sees the same version pair must pick the same winner, or replicas
    cannot converge.  Returning ``None`` defers to an operator (the
    manual queue).
    """

    name = "abstract"

    def resolve(
        self,
        key: str,
        current: Versioned,
        incoming: Versioned,
        reputation: Callable[[str], float],
    ) -> Optional[Versioned]:
        raise NotImplementedError


class LastWriterWins(ConflictStrategy):
    """Highest Lamport stamp wins (counter, writer, value hash)."""

    name = "lww"

    def resolve(
        self,
        key: str,
        current: Versioned,
        incoming: Versioned,
        reputation: Callable[[str], float],
    ) -> Optional[Versioned]:
        return incoming if incoming.stamp > current.stamp else current


class TrustWeighted(ConflictStrategy):
    """Most-reputable writer wins; Lamport stamp breaks reputation ties.

    Reputation comes from the federation-wide table
    (:meth:`PartialFederation.set_reputation`) — shared by construction,
    so every hub resolves the same pair identically and replicas
    converge.  Per-peer ``trust_level`` values gate *propagation* and
    may differ per hub; they are deliberately not used here.
    """

    name = "trust_weighted"

    def resolve(
        self,
        key: str,
        current: Versioned,
        incoming: Versioned,
        reputation: Callable[[str], float],
    ) -> Optional[Versioned]:
        def rank(item: Versioned) -> Tuple[float, int, str, str]:
            return (reputation(item.writer),) + item.stamp

        return incoming if rank(incoming) > rank(current) else current


class ManualQueue(ConflictStrategy):
    """Never auto-resolve: keep the current value, park the conflict.

    Divergence persists until an operator applies
    :meth:`PartialFederation.resolve_manual_queues`, whose default
    chooser is deterministic — so replicas still converge once the
    operator acts on every hub.
    """

    name = "manual"

    def resolve(
        self,
        key: str,
        current: Versioned,
        incoming: Versioned,
        reputation: Callable[[str], float],
    ) -> Optional[Versioned]:
        return None


_STRATEGIES: Dict[str, Callable[[], ConflictStrategy]] = {
    "lww": LastWriterWins,
    "trust_weighted": TrustWeighted,
    "manual": ManualQueue,
}


def make_strategy(name: str) -> ConflictStrategy:
    """Instantiate a conflict strategy by registry name."""
    factory = _STRATEGIES.get(name)
    if factory is None:
        raise GroupCommError(
            f"unknown conflict strategy {name!r}; available:"
            f" {', '.join(sorted(_STRATEGIES))}"
        )
    return factory()


class PartialReplicaStore:
    """Key -> versioned register with causal fast-forward and pluggable
    conflict resolution.

    Every write records the stamp it replaced in ``value['prev']``; a
    merge whose incoming ``prev`` equals the current stamp is a causal
    fast-forward (adopted without consulting the strategy), and the
    mirror case is stale (ignored).  Anything else is a genuine
    divergence handed to the :class:`ConflictStrategy`.
    """

    def __init__(self) -> None:
        self._items: Dict[str, Versioned] = {}
        self._clock = 0

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def keys(self) -> List[str]:
        return list(self._items)

    def get(self, key: str) -> Optional[Any]:
        item = self._items.get(key)
        return item.value if item is not None else None

    def item(self, key: str) -> Versioned:
        return self._items[key]

    def digest(self) -> Dict[str, Stamp]:
        return {key: item.stamp for key, item in self._items.items()}

    def write(self, key: str, value: Dict[str, Any], writer: str) -> Versioned:
        """A local write: bumps the clock, records the replaced stamp."""
        current = self._items.get(key)
        value = dict(value)
        value["prev"] = list(current.stamp) if current is not None else None
        self._clock += 1
        item = Versioned(value, self._clock, writer)
        self._items[key] = item
        return item

    def adopt(self, key: str, item: Versioned) -> None:
        """Install ``item`` verbatim (conflict winner / fast-forward)."""
        self._clock = max(self._clock, item.counter)
        self._items[key] = item

    def merge(
        self,
        key: str,
        incoming: Versioned,
        strategy: ConflictStrategy,
        reputation: Callable[[str], float],
    ) -> str:
        """Merge one replicated item; returns the outcome kind.

        Outcomes: ``adopted`` (new key), ``duplicate`` (same stamp),
        ``fast_forward`` (causal descendant adopted), ``stale``
        (causal ancestor ignored), ``resolved_adopted`` /
        ``resolved_kept`` (strategy decided), ``queued`` (strategy
        deferred to the manual queue; current value kept).
        """
        self._clock = max(self._clock, incoming.counter)
        current = self._items.get(key)
        if current is None:
            self._items[key] = incoming
            return "adopted"
        if incoming.stamp == current.stamp:
            return "duplicate"
        if _prev_stamp(incoming) == current.stamp:
            self._items[key] = incoming
            return "fast_forward"
        if _prev_stamp(current) == incoming.stamp:
            return "stale"
        winner = strategy.resolve(key, current, incoming, reputation)
        if winner is None:
            return "queued"
        if winner.stamp == current.stamp:
            return "resolved_kept"
        self._items[key] = winner
        return "resolved_adopted"


def _prev_stamp(item: Versioned) -> Optional[Stamp]:
    prev = item.value.get("prev") if isinstance(item.value, dict) else None
    if prev is None:
        return None
    counter, writer, value_hash = prev
    return (int(counter), str(writer), str(value_hash))


class FederationHub:
    """One server's federation state: peers, replicas, conflict queue."""

    def __init__(self, federation: "PartialFederation", server_id: str):
        self.federation = federation
        self.server_id = server_id
        self.peers: Dict[str, FederationPeer] = {}
        self.store = PartialReplicaStore()
        self.conflict_queue: List[ConflictRecord] = []
        self._queued_stamps: Set[Tuple[str, Stamp]] = set()
        self.conflicts_detected = 0
        self.conflicts_resolved = 0
        self.rounds = 0
        self.items_transferred = 0

    # -- peer management --------------------------------------------------

    def register_peer(
        self,
        peer_id: str,
        name: Optional[str] = None,
        trust_level: float = 0.5,
        policy: str = FederationPolicy.FULL,
    ) -> FederationPeer:
        if peer_id == self.server_id:
            raise GroupCommError(
                f"hub {self.server_id!r} cannot register itself as a peer"
            )
        if peer_id in self.peers:
            raise GroupCommError(
                f"peer {peer_id!r} already registered on {self.server_id!r}"
            )
        peer = FederationPeer(
            peer_id=peer_id, name=name or peer_id,
            trust_level=trust_level, policy=policy,
        )
        self.peers[peer_id] = peer
        return peer

    def get_peer(self, peer_id: str) -> FederationPeer:
        peer = self.peers.get(peer_id)
        if peer is None:
            raise GroupCommError(
                f"no peer {peer_id!r} registered on {self.server_id!r}"
            )
        return peer

    def deactivate_peer(self, peer_id: str) -> bool:
        """Defederate: stop all exchange but keep the record.  Returns
        False when the peer was never registered."""
        peer = self.peers.get(peer_id)
        if peer is None:
            return False
        peer.active = False
        return True

    def reactivate_peer(self, peer_id: str) -> None:
        self.get_peer(peer_id).active = True

    def set_trust(self, peer_id: str, trust_level: float) -> None:
        if not 0.0 <= trust_level <= 1.0:
            raise GroupCommError(
                f"trust level must be in [0, 1], got {trust_level}"
            )
        self.get_peer(peer_id).trust_level = trust_level

    def set_policy(self, peer_id: str, policy: str) -> None:
        if policy not in FederationPolicy.ALL:
            raise GroupCommError(
                f"unknown federation policy {policy!r}; expected one of"
                f" {FederationPolicy.ALL}"
            )
        self.get_peer(peer_id).policy = policy

    def active_peers(self) -> List[FederationPeer]:
        """Active, federating peers in deterministic (sorted-id) order."""
        return [
            self.peers[peer_id]
            for peer_id in sorted(self.peers)
            if self.peers[peer_id].active
            and self.peers[peer_id].policy != FederationPolicy.NONE
        ]

    def federates_with(self, peer_id: str) -> bool:
        peer = self.peers.get(peer_id)
        return (
            peer is not None
            and peer.active
            and peer.policy != FederationPolicy.NONE
        )

    # -- policy gates ------------------------------------------------------

    def shares_with(self, peer: FederationPeer, value: Dict[str, Any]) -> bool:
        """Would this hub send ``value`` to ``peer``?"""
        if not peer.active or peer.policy == FederationPolicy.NONE:
            return False
        if peer.policy == FederationPolicy.FULL:
            return True
        # FILTERED: public entries flow freely; private entries only to
        # peers trusted at or above the federation threshold.
        if value.get("public", False):
            return True
        return peer.trust_level >= self.federation.trust_threshold

    def accepts_from(self, sender: str, value: Dict[str, Any]) -> bool:
        """Would this hub adopt ``value`` arriving from ``sender``?
        The mirror of :meth:`shares_with`, applied on receive."""
        peer = self.peers.get(sender)
        if peer is None:
            return False
        return self.shares_with(peer, value)

    # -- merging -----------------------------------------------------------

    def merge(self, key: str, incoming: Versioned) -> str:
        federation = self.federation
        outcome = self.store.merge(
            key, incoming, federation.strategy, federation.reputation
        )
        if outcome in ("resolved_adopted", "resolved_kept", "queued"):
            self.conflicts_detected += 1
            federation._record_conflict(self.server_id, key, outcome)
        if outcome in ("resolved_adopted", "resolved_kept"):
            self.conflicts_resolved += 1
        elif outcome == "queued":
            mark = (key, incoming.stamp)
            if mark not in self._queued_stamps:
                self._queued_stamps.add(mark)
                self.conflict_queue.append(ConflictRecord(
                    key=key,
                    current=self.store.item(key),
                    incoming=incoming,
                    at=federation.network.sim.now,
                ))
        return outcome


class PartialFederation(FederationBase):
    """Trust-gated partial federation with pluggable conflict handling.

    Parameters
    ----------
    network / server_ids / streams:
        The simulation fabric; one :class:`FederationHub` per server.
    gossip_interval:
        Mean seconds between one hub's anti-entropy rounds.
    conflict_strategy:
        A :class:`ConflictStrategy` instance or registry name
        (``lww`` / ``trust_weighted`` / ``manual``).
    default_policy / default_trust:
        Applied to every hub pair when ``auto_peer`` (the default) wires
        the full peer mesh; tune per pair afterwards with
        :meth:`set_policy` / :meth:`set_trust`.
    trust_threshold:
        The ``filtered``-policy gate: private entries reach only peers
        whose trust level is at or above this value.
    """

    kind = "federated_partial"

    def __init__(
        self,
        network: Network,
        server_ids: List[str],
        streams: RngStreams,
        gossip_interval: float = 5.0,
        conflict_strategy: Any = "lww",
        default_policy: str = FederationPolicy.FULL,
        default_trust: float = 0.5,
        trust_threshold: float = 0.75,
        auto_peer: bool = True,
        rpc_timeout: float = 5.0,
        **kwargs: Any,
    ):
        super().__init__(network, server_ids, **kwargs)
        if gossip_interval <= 0:
            raise GroupCommError(
                f"gossip interval must be positive: {gossip_interval}"
            )
        if isinstance(conflict_strategy, str):
            conflict_strategy = make_strategy(conflict_strategy)
        self.strategy: ConflictStrategy = conflict_strategy
        self.gossip_interval = gossip_interval
        self.trust_threshold = trust_threshold
        self.rpc_timeout = rpc_timeout
        self.default_trust = default_trust
        self._reputations: Dict[str, float] = {}
        self.hubs: Dict[str, FederationHub] = {
            server_id: FederationHub(self, server_id)
            for server_id in self.server_ids
        }
        if auto_peer:
            for server_id in self.server_ids:
                for other in self.server_ids:
                    if other != server_id:
                        self.hubs[server_id].register_peer(
                            other, trust_level=default_trust,
                            policy=default_policy,
                        )
        self._running = False
        self._rngs = {
            server_id: streams.stream(f"groupcomm.partial.{server_id}")
            for server_id in self.server_ids
        }
        for server_id in self.server_ids:
            node = network.node(server_id)
            node.register_handler("pfed.post", self._make_post_handler(server_id))
            node.register_handler("pfed.fetch", self._make_fetch_handler(server_id))
            node.register_handler("pfed.state_set", self._make_state_set_handler(server_id))
            node.register_handler("pfed.state_get", self._make_state_get_handler(server_id))
            node.register_handler("pfed.push", self._make_push_handler(server_id))
            node.register_handler("pfed.digest", self._make_digest_handler(server_id))
            node.register_handler("pfed.pull", self._make_pull_handler(server_id))
            node.register_handler("pfed.push_items", self._make_push_items_handler(server_id))

    # -- configuration -----------------------------------------------------

    def hub(self, server_id: str) -> FederationHub:
        hub = self.hubs.get(server_id)
        if hub is None:
            raise GroupCommError(f"unknown server {server_id!r}")
        return hub

    def set_policy(self, server_id: str, peer_id: str, policy: str) -> None:
        """Set one hub's federation policy toward one peer."""
        self.hub(server_id).set_policy(peer_id, policy)

    def set_trust(self, server_id: str, peer_id: str, trust: float) -> None:
        """Set one hub's trust level for one peer (gates propagation)."""
        self.hub(server_id).set_trust(peer_id, trust)

    def deactivate_peer(self, server_id: str, peer_id: str) -> bool:
        return self.hub(server_id).deactivate_peer(peer_id)

    def set_reputation(self, server_id: str, reputation: float) -> None:
        """Set a server's federation-wide reputation (shared by every
        hub; the :class:`TrustWeighted` resolution input)."""
        if not 0.0 <= reputation <= 1.0:
            raise GroupCommError(
                f"reputation must be in [0, 1], got {reputation}"
            )
        self._reputations[server_id] = reputation

    def reputation(self, server_id: str) -> float:
        return self._reputations.get(server_id, self.default_trust)

    # -- handlers ----------------------------------------------------------

    def _make_post_handler(self, server_id: str) -> Callable:
        def handler(node: Node, payload: dict, sender: str) -> dict:
            user, room_id, body = payload["user"], payload["room"], payload["body"]
            encrypted = payload.get("encrypted", False)
            if self.home_of(user) != server_id:
                raise GroupCommError(f"{user!r} is not homed on {server_id!r}")
            room = self.room(room_id)
            room.require_member(user)
            hub = self.hubs[server_id]
            message = Message(
                author=user, room=room_id, body=body,
                sent_at=self.network.sim.now, encrypted=encrypted,
                seq=len(hub.store),
            )
            value = {
                "entry": "message",
                "author": message.author,
                "room": message.room,
                "body": message.body,
                "sent_at": message.sent_at,
                "encrypted": message.encrypted,
                "seq": message.seq,
                "public": room.public,
                "origin": server_id,
                "written_at": self.network.sim.now,
            }
            key = f"msg/{room_id}/{message.msg_id}"
            item = hub.store.write(key, value, server_id)
            self._eager_push(server_id, key, item)
            return {"msg_id": message.msg_id}

        return handler

    def _make_state_set_handler(self, server_id: str) -> Callable:
        def handler(node: Node, payload: dict, sender: str) -> dict:
            user, room_id = payload["user"], payload["room"]
            field_name, field_value = payload["field"], payload["value"]
            if self.home_of(user) != server_id:
                raise GroupCommError(f"{user!r} is not homed on {server_id!r}")
            room = self.room(room_id)
            room.require_member(user)
            hub = self.hubs[server_id]
            value = {
                "entry": "state",
                "room": room_id,
                "field": field_name,
                "value": field_value,
                "author": user,
                "public": room.public,
                "origin": server_id,
                "written_at": self.network.sim.now,
            }
            key = f"state/{room_id}/{field_name}"
            item = hub.store.write(key, value, server_id)
            self._eager_push(server_id, key, item)
            return {"stamp": list(item.stamp)}

        return handler

    def _make_state_get_handler(self, server_id: str) -> Callable:
        def handler(node: Node, payload: dict, sender: str) -> Any:
            user, room_id = payload["user"], payload["room"]
            field_name = payload["field"]
            self.room(room_id).require_member(user)
            value = self.hubs[server_id].store.get(
                f"state/{room_id}/{field_name}"
            )
            return None if value is None else value["value"]

        return handler

    def _make_fetch_handler(self, server_id: str) -> Callable:
        def handler(node: Node, payload: dict, sender: str) -> List[Message]:
            user, room_id = payload["user"], payload["room"]
            self.room(room_id).require_member(user)
            return self._room_messages(server_id, room_id)

        return handler

    def _make_push_handler(self, server_id: str) -> Callable:
        def handler(node: Node, payload: dict, sender: str) -> None:
            key, raw = payload["key"], payload["item"]
            hub = self.hubs[server_id]
            if not hub.accepts_from(sender, raw["value"]):
                self._count("fed.push_rejected")
                return
            hub.merge(key, _versioned_from_wire(raw))

        return handler

    def _make_digest_handler(self, server_id: str) -> Callable:
        def handler(node: Node, payload: dict, sender: str) -> Dict[str, list]:
            # Only advertise what policy would let this hub share with
            # the requesting peer — a `none`/untrusted peer learns
            # nothing from digests (the metadata-leak gate).
            hub = self.hubs[server_id]
            peer = hub.peers.get(sender)
            if peer is None or not hub.federates_with(sender):
                return {}
            return {
                key: list(item.stamp)
                for key, item in (
                    (key, hub.store.item(key))
                    for key in sorted(hub.store.keys())
                )
                if hub.shares_with(peer, item.value)
            }

        return handler

    def _make_pull_handler(self, server_id: str) -> Callable:
        def handler(node: Node, payload: dict, sender: str) -> Dict[str, dict]:
            hub = self.hubs[server_id]
            peer = hub.peers.get(sender)
            if peer is None or not hub.federates_with(sender):
                return {}
            out = {}
            for key in payload["keys"]:
                if key in hub.store:
                    item = hub.store.item(key)
                    if hub.shares_with(peer, item.value):
                        out[key] = _versioned_to_wire(item)
            return out

        return handler

    def _make_push_items_handler(self, server_id: str) -> Callable:
        def handler(node: Node, payload: dict, sender: str) -> int:
            hub = self.hubs[server_id]
            merged = 0
            for key in sorted(payload["items"]):
                raw = payload["items"][key]
                if not hub.accepts_from(sender, raw["value"]):
                    self._count("fed.push_rejected")
                    continue
                outcome = hub.merge(key, _versioned_from_wire(raw))
                if outcome in ("adopted", "fast_forward", "resolved_adopted"):
                    merged += 1
            return merged

        return handler

    # -- propagation -------------------------------------------------------

    def _eager_push(self, server_id: str, key: str, item: Versioned) -> None:
        """Push a fresh write to every policy-admitted peer, in sorted
        peer order (deterministic fan-out), fire-and-forget."""
        hub = self.hubs[server_id]
        wire = _versioned_to_wire(item)
        for peer in hub.active_peers():
            if hub.shares_with(peer, item.value):
                self._count("fed.push_shared")
                self.network.send(
                    server_id, peer.peer_id, "pfed.push",
                    {"key": key, "item": wire},
                )
            else:
                self._count("fed.push_withheld")

    def start_federation(self) -> None:
        """Begin every hub's anti-entropy reconciliation loop."""
        if self._running:
            return
        self._running = True
        for server_id in self.server_ids:
            self.network.sim.spawn(
                self._loop(server_id), name=f"pfed:{server_id}"
            )

    def stop_federation(self) -> None:
        self._running = False

    def _loop(self, server_id: str) -> Generator:
        rng = self._rngs[server_id]
        hub = self.hubs[server_id]
        interval = self.gossip_interval
        while self._running:
            yield rng.uniform(0.5 * interval, 1.5 * interval)
            if not self._running:
                return
            if not self.network.node(server_id).online:
                continue
            candidates = [peer.peer_id for peer in hub.active_peers()]
            if not candidates:
                continue
            peer_id = rng.choice(candidates)
            yield from self.reconcile_with(server_id, peer_id)

    def reconcile_with(self, server_id: str, peer_id: str) -> Generator:
        """One policy-filtered pull+push exchange (yieldable)."""
        hub = self.hubs[server_id]
        peer = hub.get_peer(peer_id)
        try:
            their_digest = yield from self.network.rpc(
                server_id, peer_id, "pfed.digest", {},
                timeout=self.rpc_timeout,
            )
        except (RpcTimeoutError, RemoteError, NetworkError):
            return False
        mine = hub.store.digest()
        to_pull = [
            key for key, stamp in their_digest.items()
            if key not in mine or tuple(stamp) != mine[key]
        ]
        to_push = {
            key: _versioned_to_wire(hub.store.item(key))
            for key, stamp in mine.items()
            if (key not in their_digest
                or tuple(their_digest[key]) != stamp)
            and hub.shares_with(peer, hub.store.item(key).value)
        }
        try:
            if to_pull:
                items = yield from self.network.rpc(
                    server_id, peer_id, "pfed.pull", {"keys": sorted(to_pull)},
                    timeout=self.rpc_timeout,
                )
                for key in sorted(items):
                    raw = items[key]
                    if not hub.accepts_from(peer_id, raw["value"]):
                        self._count("fed.push_rejected")
                        continue
                    outcome = hub.merge(key, _versioned_from_wire(raw))
                    if outcome in ("adopted", "fast_forward",
                                   "resolved_adopted"):
                        hub.items_transferred += 1
            if to_push:
                merged = yield from self.network.rpc(
                    server_id, peer_id, "pfed.push_items",
                    {"items": to_push}, timeout=self.rpc_timeout,
                )
                hub.items_transferred += merged
        except (RpcTimeoutError, RemoteError, NetworkError):
            return False
        hub.rounds += 1
        self._count("fed.gossip_rounds")
        return True

    # -- client operations -------------------------------------------------

    def post(
        self, user: str, room_id: str, body: Any, encrypted: bool = False
    ) -> Generator:
        """Post via the user's home hub; the home stores, pushes, and
        gossips the message onward as policy allows."""
        home = self.home_of(user)
        try:
            answer = yield from self.network.rpc(
                user, home, "pfed.post",
                {"user": user, "room": room_id, "body": body,
                 "encrypted": encrypted},
            )
        except RemoteError as exc:
            raise exc.remote_exception
        return answer["msg_id"]

    def set_room_state(
        self, user: str, room_id: str, field: str, value: Any
    ) -> Generator:
        """Write a mutable room register (topic, rules, ...) — the entry
        class that diverges under partitions and exercises the
        federation's conflict strategy."""
        home = self.home_of(user)
        try:
            answer = yield from self.network.rpc(
                user, home, "pfed.state_set",
                {"user": user, "room": room_id, "field": field,
                 "value": value},
            )
        except RemoteError as exc:
            raise exc.remote_exception
        return tuple(answer["stamp"])

    def get_room_state(
        self, user: str, room_id: str, field: str
    ) -> Generator:
        home = self.home_of(user)
        try:
            value = yield from self.network.rpc(
                user, home, "pfed.state_get",
                {"user": user, "room": room_id, "field": field},
            )
        except RemoteError as exc:
            raise exc.remote_exception
        return value

    def fetch(self, user: str, room_id: str) -> Generator:
        """Read from the home hub, failing over — in deterministic
        sorted order — to servers the home actively federates with.

        With every target timing out the *last* timeout is re-raised;
        a ``none``-policy federation has no failover targets, so a dead
        home is a total outage (the single-home behaviour recovered)."""
        home = self.home_of(user)
        targets = [home] + [
            peer.peer_id for peer in self.hubs[home].active_peers()
        ]
        last_error: Optional[Exception] = None
        for target in targets:
            try:
                messages = yield from self.network.rpc(
                    user, target, "pfed.fetch",
                    {"user": user, "room": room_id},
                )
                return messages
            except RemoteError as exc:
                raise exc.remote_exception
            except RpcTimeoutError as exc:
                last_error = exc
                continue
        raise last_error if last_error else GroupCommError("no servers")

    # -- operator & audit surface -----------------------------------------

    def pending_conflicts(self, server_id: str) -> List[ConflictRecord]:
        return list(self.hub(server_id).conflict_queue)

    def resolve_manual_queues(
        self,
        chooser: Optional[
            Callable[[ConflictRecord], Versioned]
        ] = None,
    ) -> int:
        """Drain every hub's manual conflict queue.

        The default chooser is deterministic last-writer-wins over the
        parked pair, so every hub resolves the same divergence to the
        same winner and replicas converge; pass a custom ``chooser``
        to model a human moderator (it must be deterministic across
        hubs for convergence to hold).
        """
        resolved = 0
        for server_id in sorted(self.hubs):
            hub = self.hubs[server_id]
            queue, hub.conflict_queue = hub.conflict_queue, []
            for record in queue:
                # Resolve against the *live* store value: the recorded
                # current may have been superseded by later writes, and
                # adopting against a stale snapshot could roll them back.
                if record.key in hub.store:
                    live = ConflictRecord(
                        key=record.key,
                        current=hub.store.item(record.key),
                        incoming=record.incoming,
                        at=record.at,
                    )
                else:
                    live = record
                if live.current.stamp == live.incoming.stamp:
                    winner = live.current  # already settled by gossip
                else:
                    winner = (
                        chooser(live) if chooser is not None
                        else self._default_choice(live)
                    )
                if record.key not in hub.store or (
                    winner.stamp != hub.store.item(record.key).stamp
                ):
                    hub.store.adopt(record.key, winner)
                hub.conflicts_resolved += 1
                resolved += 1
                self._record_conflict(server_id, record.key, "manual_resolved")
        return resolved

    @staticmethod
    def _default_choice(record: ConflictRecord) -> Versioned:
        return (
            record.incoming
            if record.incoming.stamp > record.current.stamp
            else record.current
        )

    def _room_messages(self, server_id: str, room_id: str) -> List[Message]:
        store = self.hubs[server_id].store
        messages = []
        prefix = f"msg/{room_id}/"
        for key in store.keys():
            if key.startswith(prefix):
                raw = store.get(key)
                messages.append(Message(
                    author=raw["author"], room=raw["room"], body=raw["body"],
                    sent_at=raw["sent_at"], encrypted=raw["encrypted"],
                    seq=raw["seq"],
                ))
        return sorted(messages, key=lambda m: (m.sent_at, m.msg_id))

    def server_metadata_view(self, server_id: str) -> List[Dict[str, Any]]:
        """What one hub's operator observes: metadata of every message
        replica it holds, bodies unless end-to-end encrypted."""
        out = []
        store = self.hubs[server_id].store
        for key in sorted(store.keys()):
            if not key.startswith("msg/"):
                continue
            raw = store.get(key)
            entry: Dict[str, Any] = {
                "author": raw["author"],
                "room": raw["room"],
                "sent_at": raw["sent_at"],
            }
            if not raw["encrypted"]:
                entry["body"] = raw["body"]
            out.append(entry)
        return out

    def divergence(self, online_only: bool = False) -> Dict[str, int]:
        """Keys on which hubs that hold a replica disagree.

        Returns ``{key: distinct_value_count}`` for every key where at
        least two (optionally online) hubs hold different versions —
        zero entries means the federation has converged on everything
        it shares.  Missing replicas are not divergence: a ``filtered``
        peer legitimately never receives private entries.
        """
        out: Dict[str, int] = {}
        holders: Dict[str, Set[Stamp]] = {}
        for server_id in sorted(self.hubs):
            if online_only and not self.network.node(server_id).online:
                continue
            store = self.hubs[server_id].store
            for key in store.keys():
                holders.setdefault(key, set()).add(store.item(key).stamp)
        for key in sorted(holders):
            if len(holders[key]) > 1:
                out[key] = len(holders[key])
        return out

    # -- observability -----------------------------------------------------

    def _count(self, counter: str) -> None:
        metrics = self.network.sim.metrics
        if metrics is not None:
            metrics.inc(counter)

    def _record_conflict(self, server_id: str, key: str, outcome: str) -> None:
        self._count(f"fed.conflict_{outcome}")
        tracer = self.network.sim.tracer
        if tracer is not None:
            tracer.emit(
                "federation_conflict", t=self.network.sim.now,
                server=server_id, key=key, outcome=outcome,
                strategy=self.strategy.name,
            )


def _versioned_to_wire(item: Versioned) -> Dict[str, Any]:
    return {
        "value": item.value,
        "counter": item.counter,
        "writer": item.writer,
    }


def _versioned_from_wire(raw: Dict[str, Any]) -> Versioned:
    return Versioned(raw["value"], raw["counter"], raw["writer"])
