"""A Web of Trust: decentralized endorsement-based naming.

The second classical PKI design §3.1 mentions, with its cited weakness —
Sybil attacks — implemented as a first-class operation.  Identities endorse
(name, public key) bindings; a verifier accepts a binding if enough
*distinct endorsement paths* lead from its trust anchors to endorsers of
the binding within a trust horizon.

A Sybil attacker manufactures identities that endorse a fraudulent
binding.  The attack succeeds exactly when the attacker gets at least one
edge from inside the honest region (a social-engineering event the model
parameterizes), because Sybil identities are free — the quantitative point
of the E6-adjacent WoT experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.crypto.keys import KeyPair, generate_keypair
from repro.errors import NamingError

__all__ = ["WebOfTrust", "SybilAttackResult"]


@dataclass(frozen=True)
class _Binding:
    name: str
    public_key: str


class WebOfTrust:
    """Endorsement graph over identities (public keys)."""

    kind = "web_of_trust"

    def __init__(self, trust_horizon: int = 3, endorsements_required: int = 2):
        if trust_horizon < 1:
            raise NamingError(f"trust horizon must be >= 1: {trust_horizon}")
        if endorsements_required < 1:
            raise NamingError(
                f"endorsements_required must be >= 1: {endorsements_required}"
            )
        self.trust_horizon = trust_horizon
        self.endorsements_required = endorsements_required
        self._graph = nx.DiGraph()  # identity -> identity ("I vouch for you")
        self._endorsements: Dict[Tuple[str, str], Set[str]] = {}
        self._identities: Dict[str, KeyPair] = {}

    # -- identity and endorsement management ------------------------------------

    def create_identity(self, seed: str) -> KeyPair:
        pair = generate_keypair(f"wot:{seed}")
        self._identities[pair.public_key] = pair
        self._graph.add_node(pair.public_key)
        return pair

    def vouch(self, endorser: KeyPair, subject_public_key: str) -> None:
        """``endorser`` asserts that ``subject`` is a real, distinct person."""
        self._require_known(endorser.public_key)
        if subject_public_key not in self._graph:
            raise NamingError("cannot vouch for an unknown identity")
        if endorser.public_key == subject_public_key:
            raise NamingError("self-vouching is meaningless")
        self._graph.add_edge(endorser.public_key, subject_public_key)

    def endorse_binding(self, endorser: KeyPair, name: str, public_key: str) -> None:
        """``endorser`` signs the claim that ``name`` belongs to ``public_key``."""
        self._require_known(endorser.public_key)
        key = (name, public_key)
        self._endorsements.setdefault(key, set()).add(endorser.public_key)

    def _require_known(self, public_key: str) -> None:
        if public_key not in self._identities:
            raise NamingError(f"unknown identity {public_key[:12]}...")

    # -- verification --------------------------------------------------------------

    def reachable_from(self, anchors: List[str]) -> Set[str]:
        """Identities within ``trust_horizon`` hops of any anchor."""
        reachable: Set[str] = set()
        for anchor in anchors:
            if anchor not in self._graph:
                continue
            lengths = nx.single_source_shortest_path_length(
                self._graph, anchor, cutoff=self.trust_horizon
            )
            reachable.update(lengths)
        return reachable

    def trusted_endorsers(
        self, anchors: List[str], name: str, public_key: str
    ) -> Set[str]:
        endorsers = self._endorsements.get((name, public_key), set())
        return endorsers & self.reachable_from(anchors)

    def accepts(self, anchors: List[str], name: str, public_key: str) -> bool:
        """Does a verifier with these anchors accept the binding?"""
        if not anchors:
            raise NamingError("a verifier needs at least one trust anchor")
        return (
            len(self.trusted_endorsers(anchors, name, public_key))
            >= self.endorsements_required
        )

    def resolve(self, anchors: List[str], name: str) -> Optional[str]:
        """The accepted public key for ``name`` from this verifier's view,
        or None.  Conflicting accepted bindings resolve to the one with the
        most trusted endorsers (ties: lexicographic, deterministic)."""
        candidates = [
            (len(self.trusted_endorsers(anchors, n, pk)), pk)
            for (n, pk) in self._endorsements
            if n == name and self.accepts(anchors, n, pk)
        ]
        if not candidates:
            return None
        candidates.sort(key=lambda t: (-t[0], t[1]))
        return candidates[0][1]

    # -- the Sybil attack -------------------------------------------------------------

    def sybil_attack(
        self,
        name: str,
        sybil_count: int,
        infiltration_edges: int,
        honest_victims: List[str],
        seed: str = "sybil",
    ) -> "SybilAttackResult":
        """Manufacture ``sybil_count`` identities endorsing a fraudulent
        binding of ``name``, with ``infiltration_edges`` honest identities
        socially engineered into vouching for one Sybil each.

        Returns the attack apparatus; callers then test ``accepts`` from
        any verifier's anchors to see whether that verifier is fooled.
        """
        if sybil_count < 1:
            raise NamingError("need at least one Sybil identity")
        if infiltration_edges > len(honest_victims):
            raise NamingError("more infiltration edges than victims available")
        attacker = self.create_identity(f"{seed}:attacker")
        sybils = [
            self.create_identity(f"{seed}:{i}") for i in range(sybil_count)
        ]
        # Sybils vouch for each other in a dense ring (free to create).
        ring = [attacker] + sybils
        for i, identity in enumerate(ring):
            for offset in (1, 2):
                target = ring[(i + offset) % len(ring)]
                if identity.public_key != target.public_key:
                    self.vouch(identity, target.public_key)
        # Social engineering: some honest identities vouch for a Sybil.
        for i in range(infiltration_edges):
            victim_pk = honest_victims[i]
            victim_pair = self._identities[victim_pk]
            self.vouch(victim_pair, ring[i % len(ring)].public_key)
        # Every Sybil endorses the fraudulent binding.
        for identity in ring:
            self.endorse_binding(identity, name, attacker.public_key)
        return SybilAttackResult(
            attacker_public_key=attacker.public_key,
            sybil_public_keys=[s.public_key for s in sybils],
            fraudulent_name=name,
        )


@dataclass(frozen=True)
class SybilAttackResult:
    attacker_public_key: str
    sybil_public_keys: List[str]
    fraudulent_name: str
