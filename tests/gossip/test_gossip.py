"""Tests for anti-entropy replication and flooding pub/sub."""

import pytest

from repro.errors import GroupCommError
from repro.gossip import (
    AntiEntropyNode,
    PubSubNode,
    ReplicaStore,
    Versioned,
    build_pubsub_overlay,
)
from repro.net import ConstantLatency, Network
from repro.net.topology import random_graph, ring_lattice, star
from repro.sim import RngStreams, Simulator


def make_network(seed=1):
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams, latency=ConstantLatency(0.01))
    return sim, streams, network


class TestReplicaStore:
    def test_write_then_get(self):
        store = ReplicaStore()
        store.write("k", "v", "me")
        assert store.get("k") == "v"
        assert "k" in store

    def test_merge_newer_wins(self):
        store = ReplicaStore()
        store.write("k", "old", "me")
        assert store.merge("k", Versioned("new", 99, "other"))
        assert store.get("k") == "new"

    def test_merge_older_ignored(self):
        store = ReplicaStore()
        store.write("k", "current", "me")
        store.write("k", "newer", "me")
        assert not store.merge("k", Versioned("stale", 1, "aaa"))
        assert store.get("k") == "newer"

    def test_tie_broken_by_writer(self):
        a, b = ReplicaStore(), ReplicaStore()
        a.write("k", "from-a", "a")
        b.write("k", "from-b", "b")
        # Same counter (1); higher writer id wins deterministically.
        item_a, item_b = a.item("k"), b.item("k")
        a.merge("k", item_b)
        b.merge("k", item_a)
        assert a.get("k") == b.get("k")

    def test_local_write_after_merge_wins(self):
        store = ReplicaStore()
        store.merge("k", Versioned("remote", 50, "other"))
        store.write("k", "local", "me")
        assert store.item("k").counter > 50


class TestAntiEntropy:
    def build_cluster(self, count=5, seed=2, interval=5.0):
        sim, streams, network = make_network(seed)
        names = [f"s{i}" for i in range(count)]
        for name in names:
            network.create_node(name)
        replicas = {
            name: AntiEntropyNode(
                network, network.node(name), names, streams, interval=interval
            )
            for name in names
        }
        return sim, network, replicas

    def test_write_propagates_everywhere(self):
        sim, network, replicas = self.build_cluster()
        for r in replicas.values():
            r.start()
        replicas["s0"].write("msg:1", {"text": "hello"})
        sim.run(until=300.0)
        for r in replicas.values():
            r.stop()
        assert all(r.store.get("msg:1") == {"text": "hello"} for r in replicas.values())

    def test_concurrent_writes_converge(self):
        sim, network, replicas = self.build_cluster()
        for r in replicas.values():
            r.start()
        replicas["s0"].write("k", "a")
        replicas["s3"].write("k", "b")
        sim.run(until=500.0)
        for r in replicas.values():
            r.stop()
        values = {r.store.get("k") for r in replicas.values()}
        assert len(values) == 1  # converged to a single winner

    def test_offline_node_catches_up_after_return(self):
        sim, network, replicas = self.build_cluster(interval=5.0)
        for r in replicas.values():
            r.start()
        network.node("s4").set_online(False, 0.0)
        replicas["s0"].write("k", "v")
        sim.run(until=100.0)
        assert replicas["s4"].store.get("k") is None
        network.node("s4").set_online(True, sim.now)
        sim.run(until=300.0)
        for r in replicas.values():
            r.stop()
        assert replicas["s4"].store.get("k") == "v"

    def test_direct_reconcile(self):
        sim, network, replicas = self.build_cluster()
        replicas["s0"].write("k", "v")

        def scenario():
            ok = yield from replicas["s1"].reconcile_with("s0")
            return ok

        assert sim.run_process(scenario()) is True
        assert replicas["s1"].store.get("k") == "v"

    def test_reconcile_with_offline_peer_fails_gracefully(self):
        sim, network, replicas = self.build_cluster()
        network.node("s0").set_online(False, 0.0)

        def scenario():
            return (yield from replicas["s1"].reconcile_with("s0"))

        assert sim.run_process(scenario()) is False

    def test_on_change_callback_fires(self):
        sim, network, replicas = self.build_cluster()
        changes = []
        replicas["s1"].on_change = lambda key, item: changes.append((key, item.value))
        replicas["s0"].write("k", "v")

        def scenario():
            yield from replicas["s1"].reconcile_with("s0")

        sim.run_process(scenario())
        assert changes == [("k", "v")]


class TestPubSub:
    def test_flood_reaches_all_subscribers(self):
        sim, streams, network = make_network(3)
        graph = random_graph(20, 0.3, seed=1)
        overlay = build_pubsub_overlay(network, graph)
        for node in overlay.values():
            node.subscribe("news")
        overlay["n0"].publish("news", "hello")
        sim.run()
        assert all(node.received_payloads("news") == ["hello"] for node in overlay.values())

    def test_duplicate_suppression(self):
        sim, streams, network = make_network(4)
        graph = random_graph(15, 0.5, seed=2)  # dense: many duplicate paths
        overlay = build_pubsub_overlay(network, graph)
        for node in overlay.values():
            node.subscribe("t")
        overlay["n0"].publish("t", "once")
        sim.run()
        for node in overlay.values():
            assert len(node.received_payloads("t")) == 1

    def test_unsubscribed_topic_not_delivered_but_forwarded(self):
        sim, streams, network = make_network(5)
        graph = ring_lattice(5, k=2)
        overlay = build_pubsub_overlay(network, graph)
        overlay["n0"].subscribe("t")
        overlay["n3"].subscribe("t")
        overlay["n0"].publish("t", "x")
        sim.run()
        # n3 is not adjacent to n0 on the ring; delivery proves forwarding.
        assert overlay["n3"].received_payloads("t") == ["x"]
        assert overlay["n1"].received_payloads("t") == []

    def test_partition_blocks_delivery(self):
        sim, streams, network = make_network(6)
        graph = star("hub", [f"u{i}" for i in range(4)])
        overlay = build_pubsub_overlay(network, graph)
        for node in overlay.values():
            node.subscribe("t")
        network.node("hub").set_online(False, 0.0)
        overlay["u0"].publish("t", "m")
        sim.run()
        # Hub down: no other leaf receives the message.
        for leaf in ("u1", "u2", "u3"):
            assert overlay[leaf].received_payloads("t") == []

    def test_offline_publisher_rejected(self):
        sim, streams, network = make_network(7)
        graph = ring_lattice(3, k=2)
        overlay = build_pubsub_overlay(network, graph)
        network.node("n0").set_online(False, 0.0)
        with pytest.raises(GroupCommError):
            overlay["n0"].publish("t", "m")

    def test_callback_subscription(self):
        sim, streams, network = make_network(8)
        graph = ring_lattice(4, k=2)
        overlay = build_pubsub_overlay(network, graph)
        seen = []
        overlay["n2"].subscribe("t", lambda msg: seen.append(msg.payload))
        overlay["n0"].publish("t", 123)
        sim.run()
        assert seen == [123]


class TestPubSubUnderFailure:
    def test_offline_node_breaks_ring_flood(self):
        sim, streams, network = make_network(53)
        graph = ring_lattice(6, k=2)  # pure ring: n3 is a cut vertex set
        overlay = build_pubsub_overlay(network, graph)
        for node in overlay.values():
            node.subscribe("t")
        # Cut the ring in two places: n1 and n4 offline.
        network.node("n1").set_online(False, 0.0)
        network.node("n4").set_online(False, 0.0)
        overlay["n0"].publish("t", "m")
        sim.run()
        # n0's remaining neighbour n5 gets it; n2/n3 are cut off.
        assert overlay["n5"].received_payloads("t") == ["m"]
        assert overlay["n2"].received_payloads("t") == []
        assert overlay["n3"].received_payloads("t") == []

    def test_returning_node_missed_messages_forever(self):
        # Flooding has no repair: §3.2's connectedness threat under churn.
        sim, streams, network = make_network(54)
        graph = ring_lattice(4, k=2)
        overlay = build_pubsub_overlay(network, graph)
        for node in overlay.values():
            node.subscribe("t")
        network.node("n2").set_online(False, 0.0)
        overlay["n0"].publish("t", "missed")
        sim.run()
        network.node("n2").set_online(True, sim.now)
        sim.run(until=sim.now + 100.0)
        assert overlay["n2"].received_payloads("t") == []
