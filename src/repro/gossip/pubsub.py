"""Flooding publish/subscribe over a peer graph.

The real-time dissemination layer federated social applications use
(OStatus "real-time exchange of messages between nodes", §3.2): a message
published at one node floods along topology edges with duplicate
suppression, reaching every connected, online node.

Coverage under failures is exactly the "connectedness" property the paper
asks of group communication systems, and is what E4/E5 measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

import networkx as nx

from repro.crypto.hashing import hash_obj
from repro.errors import GroupCommError
from repro.net.transport import Network

__all__ = ["PubSubMessage", "PubSubNode", "build_pubsub_overlay"]


@dataclass(frozen=True)
class PubSubMessage:
    """A flooded message: topic, payload, origin, and a unique id."""

    msg_id: str
    topic: str
    payload: Any
    origin: str


class PubSubNode:
    """One participant in the flooding overlay."""

    def __init__(self, network: Network, node_id: str, neighbors: List[str]):
        self.network = network
        self.node = network.node(node_id)
        self.neighbors = [n for n in neighbors if n != node_id]
        self._seen: Set[str] = set()
        self._subscriptions: Dict[str, List[Callable[[PubSubMessage], None]]] = {}
        self.delivered: List[PubSubMessage] = []
        self.forwarded = 0
        self.node.register_handler("pubsub.msg", self._on_message)

    def subscribe(self, topic: str, callback: Optional[Callable[[PubSubMessage], None]] = None) -> None:
        """Deliver future messages on ``topic`` to ``callback`` (and always
        to the :attr:`delivered` log)."""
        self._subscriptions.setdefault(topic, [])
        if callback is not None:
            self._subscriptions[topic].append(callback)

    def subscribed_topics(self) -> List[str]:
        return sorted(self._subscriptions)

    def publish(self, topic: str, payload: Any, size_bytes: int = 512) -> PubSubMessage:
        """Publish locally and flood to neighbours."""
        if not self.node.online:
            raise GroupCommError(
                f"node {self.node.node_id!r} is offline and cannot publish"
            )
        msg = PubSubMessage(
            msg_id=hash_obj(
                {
                    "topic": topic,
                    "payload": payload,
                    "origin": self.node.node_id,
                    "seq": len(self._seen) + len(self.delivered),
                    "t": self.network.sim.now,
                }
            ),
            topic=topic,
            payload=payload,
            origin=self.node.node_id,
        )
        self._seen.add(msg.msg_id)
        self._deliver(msg)
        self._forward(msg, exclude=None, size_bytes=size_bytes)
        return msg

    def _on_message(self, node, payload: Any, sender: str) -> None:
        msg: PubSubMessage = payload["msg"]
        if msg.msg_id in self._seen:
            return
        self._seen.add(msg.msg_id)
        self._deliver(msg)
        self._forward(msg, exclude=sender, size_bytes=payload["size"])

    def _deliver(self, msg: PubSubMessage) -> None:
        if msg.topic in self._subscriptions:
            self.delivered.append(msg)
            for callback in self._subscriptions[msg.topic]:
                callback(msg)

    def _forward(self, msg: PubSubMessage, exclude: Optional[str], size_bytes: int) -> None:
        for neighbor in self.neighbors:
            if neighbor == exclude:
                continue
            self.forwarded += 1
            self.network.send(
                self.node.node_id,
                neighbor,
                "pubsub.msg",
                {"msg": msg, "size": size_bytes},
                size_bytes=size_bytes,
            )

    def received_payloads(self, topic: str) -> List[Any]:
        return [m.payload for m in self.delivered if m.topic == topic]


def build_pubsub_overlay(
    network: Network, graph: nx.Graph, node_class: str = "datacenter"
) -> Dict[str, PubSubNode]:
    """Create network nodes for every graph vertex and wire a
    :class:`PubSubNode` per vertex with graph edges as gossip links."""
    overlay: Dict[str, PubSubNode] = {}
    for name in graph.nodes:
        if not network.has_node(name):
            network.create_node(name, node_class=node_class)
    for name in graph.nodes:
        overlay[name] = PubSubNode(network, name, list(graph.neighbors(name)))
    return overlay
