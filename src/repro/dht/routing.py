"""Kademlia routing table: 160 k-buckets with least-recently-seen eviction.

Buckets keep the oldest live contacts (Kademlia's anti-churn bias: nodes
that have been up longest are most likely to stay up), so a full bucket
only admits a new contact when a stale old one is explicitly evicted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dht.nodeid import ID_BITS, bucket_index, xor_distance
from repro.errors import DHTError

__all__ = ["Contact", "RoutingTable"]


@dataclass(frozen=True)
class Contact:
    """A known peer: its network name and DHT id."""

    name: str
    dht_id: int


class RoutingTable:
    """Per-node routing state."""

    def __init__(self, own_id: int, k: int = 20):
        if k < 1:
            raise DHTError(f"bucket size k must be >= 1, got {k}")
        self.own_id = own_id
        self.k = k
        # bucket[i] holds contacts whose distance has highest bit i,
        # ordered oldest-first (Kademlia keeps long-lived nodes).
        self._buckets: List[List[Contact]] = [[] for _ in range(ID_BITS)]
        self._by_name: Dict[str, Contact] = {}

    def __len__(self) -> int:
        return len(self._by_name)

    def contacts(self) -> List[Contact]:
        return list(self._by_name.values())

    def knows(self, name: str) -> bool:
        return name in self._by_name

    def observe(self, contact: Contact) -> Optional[Contact]:
        """Record fresh evidence that ``contact`` is alive.

        Returns the least-recently-seen occupant when the bucket is full
        (the caller should ping it and call :meth:`evict` if dead);
        returns None when the contact was admitted or refreshed.
        """
        if contact.dht_id == self.own_id:
            return None  # never track self
        index = bucket_index(self.own_id, contact.dht_id)
        bucket = self._buckets[index]
        existing = self._by_name.get(contact.name)
        if existing is not None:
            bucket.remove(existing)
            bucket.append(contact)  # move to tail: most recently seen
            self._by_name[contact.name] = contact
            return None
        if len(bucket) < self.k:
            bucket.append(contact)
            self._by_name[contact.name] = contact
            return None
        return bucket[0]  # full: candidate for liveness check

    def evict(self, name: str) -> bool:
        """Drop a dead contact; returns True if it was present."""
        contact = self._by_name.pop(name, None)
        if contact is None:
            return False
        index = bucket_index(self.own_id, contact.dht_id)
        self._buckets[index].remove(contact)
        return True

    def closest(self, target_id: int, count: Optional[int] = None) -> List[Contact]:
        """The ``count`` known contacts closest to ``target_id`` by XOR."""
        limit = count if count is not None else self.k
        return sorted(
            self._by_name.values(),
            key=lambda c: xor_distance(c.dht_id, target_id),
        )[:limit]

    def bucket_sizes(self) -> List[int]:
        """Occupancy per bucket (diagnostics)."""
        return [len(b) for b in self._buckets]
