"""Extension bench — selfish mining profitability (§5.1).

The paper's easy-problem list asks for real security analysis of
blockchain systems; the canonical example beyond the 51% attack is
Eyal-Sirer selfish mining.  The bench sweeps attacker hashrate and
reproduces the known profitability thresholds (1/3 at gamma=0, 0 at
gamma=1).
"""

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.chain import selfish_mining_revenue

ALPHAS = (0.10, 0.20, 0.30, 0.35, 0.40, 0.45)


def test_bench_selfish_mining_thresholds(benchmark):
    def sweep():
        rows = []
        for alpha in ALPHAS:
            row = {"alpha": alpha}
            for gamma in (0.0, 0.5, 1.0):
                revenue = selfish_mining_revenue(
                    alpha, gamma=gamma, blocks=300_000, seed=5
                )
                row[f"revenue(gamma={gamma})"] = round(revenue, 4)
            row["honest_revenue"] = alpha
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Selfish mining — revenue share vs hashrate share", render_table(rows))
    by_alpha = {row["alpha"]: row for row in rows}
    # gamma=0: profitable strictly above 1/3.
    assert by_alpha[0.30]["revenue(gamma=0.0)"] < 0.30
    assert by_alpha[0.35]["revenue(gamma=0.0)"] > 0.35
    # gamma=1: profitable everywhere.
    for alpha in ALPHAS:
        assert by_alpha[alpha]["revenue(gamma=1.0)"] > alpha
    # Revenue monotone in gamma at fixed alpha.
    for alpha in ALPHAS:
        row = by_alpha[alpha]
        assert (
            row["revenue(gamma=0.0)"]
            <= row["revenue(gamma=0.5)"]
            <= row["revenue(gamma=1.0)"]
        )
