"""Tests for the re-feudalization market model (§5.3)."""

import pytest

from repro.core.economics import (
    MarketParams,
    ProviderMarket,
    herfindahl_index,
    unit_cost,
)
from repro.errors import FeasibilityError
from repro.sim import RngStreams


class TestUnitCost:
    def test_decreasing_in_volume(self):
        costs = [unit_cost(v) for v in (0, 10, 100, 1000)]
        assert costs == sorted(costs, reverse=True)

    def test_floor_is_asymptote(self):
        assert unit_cost(1e12, floor_cost=0.2) == pytest.approx(0.2, abs=1e-3)

    def test_flat_when_no_advantage(self):
        assert unit_cost(1.0, scale_advantage=0.0) == unit_cost(
            1e6, scale_advantage=0.0
        )

    def test_validation(self):
        with pytest.raises(FeasibilityError):
            unit_cost(-1.0)
        with pytest.raises(FeasibilityError):
            unit_cost(1.0, scale_advantage=2.0)
        with pytest.raises(FeasibilityError):
            unit_cost(1.0, base_cost=0.1, floor_cost=0.5)


class TestHHI:
    def test_symmetric_market(self):
        assert herfindahl_index([1.0] * 10) == pytest.approx(0.1)

    def test_monopoly(self):
        assert herfindahl_index([5.0]) == 1.0

    def test_unnormalized_shares_ok(self):
        assert herfindahl_index([2.0, 2.0]) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(FeasibilityError):
            herfindahl_index([0.0])


class TestMarketDynamics:
    def run_market(self, scale_advantage, rounds=300, n=20, seed=1):
        market = ProviderMarket(
            n, MarketParams(scale_advantage=scale_advantage), RngStreams(seed)
        )
        return market, market.run(rounds)

    def test_flat_costs_stay_fragmented(self):
        market, history = self.run_market(scale_advantage=0.0)
        final = history[-1]
        assert final["providers_alive"] == 20
        assert final["hhi"] == pytest.approx(1 / 20, abs=0.01)

    def test_scale_economies_concentrate(self):
        market, history = self.run_market(scale_advantage=0.25)
        final = history[-1]
        # Most providers exit; concentration several times the symmetric
        # baseline — the paper's re-feudalization pressure.
        assert final["providers_alive"] < 10
        assert final["hhi"] > 3 * (1 / 20)

    def test_concentration_is_monotone_over_time_under_scale(self):
        market, history = self.run_market(scale_advantage=0.25)
        early = history[10]["hhi"]
        late = history[-1]["hhi"]
        assert late >= early

    def test_shares_sum_to_one(self):
        market, _ = self.run_market(scale_advantage=0.25, rounds=50)
        assert sum(market.demand_shares().values()) == pytest.approx(1.0)

    def test_last_provider_never_exits(self):
        market = ProviderMarket(
            2,
            MarketParams(scale_advantage=0.9, price_sensitivity=20.0,
                         exit_share=0.45),
            RngStreams(3),
        )
        market.run(200)
        assert len(market.alive()) >= 1

    def test_single_provider_market(self):
        market = ProviderMarket(1, MarketParams(), RngStreams(4))
        market.run(10)
        assert market.concentration() == 1.0

    def test_validation(self):
        with pytest.raises(FeasibilityError):
            ProviderMarket(0)
        with pytest.raises(FeasibilityError):
            MarketParams(scale_advantage=1.5)
        with pytest.raises(FeasibilityError):
            MarketParams(volume_inertia=1.0)

    def test_deterministic_given_seed(self):
        _, h1 = self.run_market(0.25, rounds=100, seed=9)
        _, h2 = self.run_market(0.25, rounds=100, seed=9)
        assert h1 == h2
