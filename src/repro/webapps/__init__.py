"""Hostless web applications (§3.4): signed site bundles, peer discovery
via tracker or DHT, and visitor-seeded swarms."""

from repro.webapps.site import HostlessSite, SiteBundle, SiteManifest
from repro.webapps.swarm import SiteSwarm, VisitorProcess, VisitorStats
from repro.webapps.tracker import DhtPeerDirectory, ReplicatedTracker, Tracker

__all__ = [
    "HostlessSite",
    "SiteBundle",
    "SiteManifest",
    "Tracker",
    "ReplicatedTracker",
    "DhtPeerDirectory",
    "SiteSwarm",
    "VisitorProcess",
    "VisitorStats",
]
