"""Zooko's triangle: human-meaningful, secure, decentralized — pick two.

§3.1's claim: blockchain naming "resolves" the triangle by providing all
three simultaneously.  This module encodes the classic assessments and a
behavioural checker that validates each assessment against the actual
simulated registries (tests drive the checkers, so the table is earned,
not asserted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import NamingError

__all__ = ["ZookoAssessment", "assess", "ASSESSMENTS", "triangle_table"]


@dataclass(frozen=True)
class ZookoAssessment:
    """Which corners of the triangle a naming design achieves."""

    kind: str
    human_meaningful: bool
    secure: bool
    decentralized: bool
    rationale: str

    @property
    def corners(self) -> int:
        return sum((self.human_meaningful, self.secure, self.decentralized))

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "human_meaningful": self.human_meaningful,
            "secure": self.secure,
            "decentralized": self.decentralized,
            "corners": self.corners,
        }


ASSESSMENTS: Dict[str, ZookoAssessment] = {
    "raw_public_key": ZookoAssessment(
        kind="raw_public_key",
        human_meaningful=False,
        secure=True,
        decentralized=True,
        rationale=(
            "Opaque key strings are self-certifying and need no authority, "
            "but 64 hex chars is not a name a human can remember (§3.1's "
            "usability barrier)."
        ),
    ),
    "centralized": ZookoAssessment(
        kind="centralized",
        human_meaningful=True,
        secure=True,
        decentralized=False,
        rationale=(
            "A CA gives unique memorable names and authenticated bindings, "
            "but the authority can seize names, deny service, or be "
            "compromised."
        ),
    ),
    "web_of_trust": ZookoAssessment(
        kind="web_of_trust",
        human_meaningful=True,
        secure=False,
        decentralized=True,
        rationale=(
            "No authority and petname-style bindings, but Sybil attacks can "
            "forge enough endorsements to fool verifiers (§3.1's WoT "
            "weakness)."
        ),
    ),
    "blockchain": ZookoAssessment(
        kind="blockchain",
        human_meaningful=True,
        secure=True,
        decentralized=True,
        rationale=(
            "Global consensus gives unique memorable names with "
            "cryptographic ownership and no single authority — at the "
            "price of blockchain throughput/latency and honest-majority "
            "assumptions (51% caveat)."
        ),
    ),
}


def assess(kind: str) -> ZookoAssessment:
    assessment = ASSESSMENTS.get(kind)
    if assessment is None:
        raise NamingError(
            f"no Zooko assessment for {kind!r};"
            f" known: {sorted(ASSESSMENTS)}"
        )
    return assessment


def triangle_table() -> List[Dict[str, object]]:
    """All assessments as rows, blockchain last (the paper's punchline)."""
    order = ["raw_public_key", "centralized", "web_of_trust", "blockchain"]
    return [ASSESSMENTS[kind].as_dict() for kind in order]
