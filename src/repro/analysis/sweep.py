"""Generic parameter-sweep helpers used by benches and examples.

Both helpers route through :mod:`repro.analysis.runner`: ``sweep``
executes via a :class:`~repro.analysis.runner.SweepRunner` (serial and
uncached by default, parallel/cached when the caller passes one), and
``cross_product`` builds the config grids the runner consumes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.analysis.runner import SweepRunner

__all__ = ["sweep", "cross_product"]


def sweep(
    run: Callable[..., Any],
    parameter: str,
    values: Iterable[Any],
    *,
    runner: Optional[SweepRunner] = None,
    experiment: Optional[str] = None,
    **fixed: Any,
) -> List[Dict[str, Any]]:
    """Run ``run(**fixed, parameter=value)`` per value.

    Returns rows of ``{parameter: value, "result": result}``, in the
    order of ``values`` regardless of how the runner schedules them.
    Pass ``runner=SweepRunner(workers=N, cache=...)`` to parallelize or
    memoize; the default is the exact serial loop this helper always was.
    """
    values = list(values)
    runner = runner or SweepRunner()
    name = experiment or getattr(run, "__name__", "sweep")
    configs = [dict(fixed, **{parameter: value}) for value in values]
    results = runner.run(name, run, configs)
    return [
        {parameter: value, "result": result}
        for value, result in zip(values, results)
    ]


def cross_product(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """All combinations of named axes, as kwargs dicts.

    Axes expand in **caller order** (keyword/dict insertion order), so
    sweep rows come out in the order the caller named the axes — the
    last-named axis varies fastest.  Cache identity is unaffected by
    axis order: :func:`repro.analysis.runner.canonical_config_hash`
    serializes configs with sorted keys, so reordering axes reorders
    rows without invalidating any cached result.
    """
    combos: List[Dict[str, Any]] = [{}]
    for name, values in axes.items():
        combos = [
            {**combo, name: value} for combo in combos for value in values
        ]
    return combos
