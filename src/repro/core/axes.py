"""The paper's two-axis model of Internet structure (§2).

Changes to the Internet happened along two *orthogonal* axes the paper
insists are usually conflated:

* **distribution** — where the physical resources are: a single machine
  (centralized) vs dispersed across many machines (distributed);
* **control** — who holds authority over the service: many individuals or
  organizations (democratic) vs a few (feudal).

The paper's one-sentence history: the Internet went from
partially-centralized + democratic to distributed + feudal, and the goal
of the surveyed systems is distributed + democratic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ReproError

__all__ = ["Distribution", "Control", "SystemProfile", "ERA_PROFILES", "classify", "trajectory"]


class Distribution:
    """The physical-resources axis."""

    CENTRALIZED = "centralized"
    PARTIALLY_CENTRALIZED = "partially_centralized"
    DISTRIBUTED = "distributed"

    ORDER = (CENTRALIZED, PARTIALLY_CENTRALIZED, DISTRIBUTED)


class Control:
    """The authority axis."""

    FEUDAL = "feudal"
    SEMI_DEMOCRATIC = "semi_democratic"
    DEMOCRATIC = "democratic"

    ORDER = (FEUDAL, SEMI_DEMOCRATIC, DEMOCRATIC)


@dataclass(frozen=True)
class SystemProfile:
    """Where a system sits on the two axes.

    ``operators`` and ``resource_sites`` are order-of-magnitude counts used
    by :func:`classify`; the axis labels are derived, so a profile can
    never claim an inconsistent position.
    """

    name: str
    operators: int       # distinct parties holding authority
    resource_sites: int  # distinct physical locations serving requests

    def __post_init__(self) -> None:
        if self.operators < 1 or self.resource_sites < 1:
            raise ReproError(
                f"profile {self.name!r} needs >=1 operator and site"
            )

    @property
    def distribution(self) -> str:
        if self.resource_sites <= 10:
            return Distribution.CENTRALIZED
        if self.resource_sites <= 10_000:
            return Distribution.PARTIALLY_CENTRALIZED
        return Distribution.DISTRIBUTED

    @property
    def control(self) -> str:
        if self.operators <= 10:
            return Control.FEUDAL
        if self.operators <= 10_000:
            return Control.SEMI_DEMOCRATIC
        return Control.DEMOCRATIC

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "operators": self.operators,
            "resource_sites": self.resource_sites,
            "distribution": self.distribution,
            "control": self.control,
        }


def classify(profile: SystemProfile) -> str:
    """The quadrant label the paper's §2 narrative uses."""
    return f"{profile.distribution}/{profile.control}"


# The historical trajectory the paper describes, as data: the 1990s web
# (ISP-hosted servers: hundreds-to-thousands of providers), today's cloud
# (five feudal lords, planet-wide datacenters), and the goal state.
ERA_PROFILES: Dict[str, SystemProfile] = {
    "internet_1990s": SystemProfile(
        name="internet_1990s", operators=2_000, resource_sites=2_000
    ),
    "internet_today": SystemProfile(
        name="internet_today", operators=5, resource_sites=1_000_000
    ),
    "democratized_goal": SystemProfile(
        name="democratized_goal", operators=1_000_000, resource_sites=1_000_000
    ),
}


def trajectory() -> List[Dict[str, object]]:
    """The §2 story as rows: where each era sits on both axes."""
    return [
        ERA_PROFILES["internet_1990s"].as_dict(),
        ERA_PROFILES["internet_today"].as_dict(),
        ERA_PROFILES["democratized_goal"].as_dict(),
    ]
