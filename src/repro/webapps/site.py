"""Hostless web application bundles (ZeroNet / Beaker / Freedom.js, §3.4).

A site is a signed bundle: the site *address is a public key* (ZeroNet),
every file is hashed into a signed manifest, so any visitor can verify any
copy fetched from any peer — hosting needs no trusted server.  Beaker's
fork-and-merge model is first-class: :meth:`HostlessSite.fork` derives a
new site (new key) recording its parent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.crypto.hashing import sha256_hex
from repro.crypto.keys import KeyPair, Signature, generate_keypair, verify
from repro.errors import WebAppError

__all__ = ["SiteManifest", "HostlessSite", "SiteBundle"]


@dataclass(frozen=True)
class SiteManifest:
    """The signed description of one site version."""

    site_address: str  # the owner public key == the site address
    version: int
    file_hashes: Dict[str, str]
    parent_address: Optional[str]
    signature: Signature

    def body(self) -> dict:
        return {
            "site_address": self.site_address,
            "version": self.version,
            "file_hashes": self.file_hashes,
            "parent_address": self.parent_address,
        }

    def verify(self) -> bool:
        """The manifest must be signed by the site address itself."""
        if self.signature.public_key != self.site_address:
            return False
        return verify(self.signature, self.body())


@dataclass(frozen=True)
class SiteBundle:
    """A complete, transferable copy of a site: manifest + file bytes."""

    manifest: SiteManifest
    files: Dict[str, bytes]

    @property
    def size_bytes(self) -> int:
        return sum(len(data) for data in self.files.values())

    def verify(self) -> bool:
        """Full integrity check: signature + per-file hashes + exact set."""
        if not self.manifest.verify():
            return False
        if set(self.files) != set(self.manifest.file_hashes):
            return False
        return all(
            sha256_hex(data) == self.manifest.file_hashes[path]
            for path, data in self.files.items()
        )


class HostlessSite:
    """Developer-side site object: holds the key, edits files, signs
    versions, and produces verified bundles for the swarm."""

    def __init__(self, seed: str, parent_address: Optional[str] = None):
        self._keypair: KeyPair = generate_keypair(f"site:{seed}")
        self.parent_address = parent_address
        self._files: Dict[str, bytes] = {}
        self.version = 0

    @property
    def address(self) -> str:
        """The site address — also a payment address, as in ZeroNet."""
        return self._keypair.public_key

    def write_file(self, path: str, data: bytes) -> None:
        if not path:
            raise WebAppError("file path must be non-empty")
        if not isinstance(data, (bytes, bytearray)):
            raise WebAppError(f"file data must be bytes, got {type(data).__name__}")
        self._files[path] = bytes(data)

    def delete_file(self, path: str) -> None:
        if path not in self._files:
            raise WebAppError(f"no file {path!r} in site")
        del self._files[path]

    def files(self) -> List[str]:
        return sorted(self._files)

    def publish(self) -> SiteBundle:
        """Sign the current file set as a new version."""
        if not self._files:
            raise WebAppError("cannot publish an empty site")
        self.version += 1
        file_hashes = {
            path: sha256_hex(data) for path, data in self._files.items()
        }
        body = {
            "site_address": self.address,
            "version": self.version,
            "file_hashes": file_hashes,
            "parent_address": self.parent_address,
        }
        manifest = SiteManifest(
            site_address=self.address,
            version=self.version,
            file_hashes=file_hashes,
            parent_address=self.parent_address,
            signature=self._keypair.sign(body),
        )
        return SiteBundle(manifest=manifest, files=dict(self._files))

    def fork(self, new_seed: str) -> "HostlessSite":
        """Beaker-style fork: copy the files under a new key, recording
        this site as the parent."""
        child = HostlessSite(new_seed, parent_address=self.address)
        for path, data in self._files.items():
            child.write_file(path, data)
        return child
