"""Golden scale regressions for the cohort-engine drivers.

Exact pins follow the chaos-golden convention: integer aggregates
(online ticks, ping counts, flips, departures) are pinned exactly — the
churn path draws only from ``Generator.random``, the uniform double
stream numpy keeps stable across versions.  The E5 latency percentiles
ride on ``standard_normal`` (ziggurat, no such guarantee), so they are
pinned approximately.
"""

import pytest

from repro.analysis import SweepCache, SweepRunner
from repro.analysis.cohort import (
    run_feasibility_cohort,
    run_federation_availability_cohort,
    run_social_tradeoff_cohort,
)

# E4 at N=10^4: federation read availability under the three models.
GOLDEN_E4 = {
    "single_home": {
        "readable_user_ticks": 249472, "read_availability": 0.31184,
        "flips": 14566, "departed": 53,
    },
    "replicated": {
        "readable_user_ticks": 356899, "read_availability": 0.446124,
        "flips": 14614, "departed": 64,
    },
    "replicated_failover": {
        "readable_user_ticks": 389924, "read_availability": 0.487405,
        "flips": 14459, "departed": 46,
    },
}

# E5 at N=10^4: ping success by replication factor.
GOLDEN_E5 = {
    1: {"pings_ok": 7464, "ping_availability": 0.4665, "flips": 87962,
        "latency_p50_ms": 51.842, "latency_p99_ms": 211.81},
    2: {"pings_ok": 9786, "ping_availability": 0.611625, "flips": 87753,
        "latency_p50_ms": 52.381, "latency_p99_ms": 216.632},
    3: {"pings_ok": 10656, "ping_availability": 0.666, "flips": 87573,
        "latency_p50_ms": 51.962, "latency_p99_ms": 214.34},
}

# E3 at N=10^6: Table 3 re-derived from *measured* cohort availability.
GOLDEN_E3_AVAILABILITY = {
    "personal_computer": 0.934263,
    "smartphone": 0.485428,
    "tablet": 0.637463,
}

GOLDEN_E3_TABLE3 = [
    {"resource": "Bandwidth", "cloud": "200 Tbps", "devices": "3476.8 Tbps"},
    {"resource": "Cores", "cloud": "400 M", "devices": "467.1 M"},
    {"resource": "Storage", "cloud": "80 EB", "devices": "193.2 EB"},
]

GOLDEN_E3_RATIOS = {"bandwidth": 17.3842, "cores": 1.1678, "storage": 2.4153}


class TestE4FederationGolden:
    def test_exact_aggregates_at_ten_thousand_devices(self):
        rows = run_federation_availability_cohort()
        assert [r["model"] for r in rows] == list(GOLDEN_E4)
        for row in rows:
            golden = GOLDEN_E4[row["model"]]
            assert row["user_ticks"] == 800_000
            assert row["devices"] == 10_000
            for key, value in golden.items():
                assert row[key] == value, (row["model"], key)

    def test_failover_dominates_replication_dominates_single_home(self):
        rows = {r["model"]: r for r in run_federation_availability_cohort()}
        assert (
            rows["single_home"]["read_availability"]
            < rows["replicated"]["read_availability"]
            < rows["replicated_failover"]["read_availability"]
        )

    def test_cached_replay_preserves_goldens(self, tmp_path):
        cold_runner = SweepRunner(cache=SweepCache(tmp_path))
        cold = run_federation_availability_cohort(runner=cold_runner)
        assert cold_runner.stats.misses == 3
        warm_runner = SweepRunner(cache=SweepCache(tmp_path))
        warm = run_federation_availability_cohort(runner=warm_runner)
        assert warm == cold
        assert warm_runner.stats.misses == 0
        assert warm_runner.stats.hits == 3


class TestE5SocialGolden:
    def test_exact_ping_counts_at_ten_thousand_devices(self):
        rows = run_social_tradeoff_cohort()
        assert [r["replication"] for r in rows] == list(GOLDEN_E5)
        for row in rows:
            golden = GOLDEN_E5[row["replication"]]
            assert row["pings_attempted"] == 16_000
            assert row["latency_source"] == "buckets"
            assert row["pings_ok"] == golden["pings_ok"]
            assert row["ping_availability"] == golden["ping_availability"]
            assert row["flips"] == golden["flips"]

    def test_latency_percentiles_near_goldens(self):
        for row in run_social_tradeoff_cohort():
            golden = GOLDEN_E5[row["replication"]]
            assert row["latency_p50_ms"] == pytest.approx(
                golden["latency_p50_ms"], rel=0.05
            )
            assert row["latency_p99_ms"] == pytest.approx(
                golden["latency_p99_ms"], rel=0.05
            )

    def test_replication_monotonically_raises_availability(self):
        rows = run_social_tradeoff_cohort()
        availability = [r["ping_availability"] for r in rows]
        assert availability == sorted(availability)


class TestE3FeasibilityGolden:
    """Table 3 re-evaluated at one million simulated devices."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_feasibility_cohort()

    def test_scale_and_shape(self, report):
        assert report["engine"] == "cohort"
        assert report["devices"] == 1_000_000
        assert report["ticks"] == 80

    def test_measured_availability_pins(self, report):
        assert report["availability"] == GOLDEN_E3_AVAILABILITY

    def test_table3_cells_and_verdict(self, report):
        assert report["table3"] == GOLDEN_E3_TABLE3
        assert report["sufficient"] == {
            "bandwidth": True, "cores": True, "storage": True,
        }
        assert report["ratios"] == GOLDEN_E3_RATIOS

    def test_measured_fleet_is_leaner_than_paper_nameplate(self, report):
        # The paper's Table 3 assumes every device is always on; churned
        # availability derates each resource but leaves the verdict.
        from repro.analysis.experiments import run_feasibility

        nameplate = run_feasibility()["ratios"]
        for resource, ratio in report["ratios"].items():
            assert ratio < nameplate[resource]
