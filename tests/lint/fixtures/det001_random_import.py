"""DET001 positive fixture: ad-hoc stdlib randomness."""

import random


def biased_coin() -> bool:
    return random.Random(0).random() < 0.5
