"""E3 — regenerate Table 3 (cloud vs user-device capacity), exactly.

This is the paper's only quantitative artifact; the bench must reproduce
every formatted cell, the 'sufficient capacity' verdict, and the
sensitivity behaviour around the thin compute margin.
"""

from benchmarks.conftest import emit
from repro.analysis import SweepCache, SweepRunner, render_table, run_feasibility
from repro.core import paper_model
from repro.core.units import MBPS


def test_bench_table3(benchmark, tmp_path):
    """E3 through the sweep runner: a cold run computes and fills the
    cache; the warm re-run must replay with zero recomputations."""
    cache_dir = str(tmp_path)

    def cold_then_warm():
        cold_runner = SweepRunner(cache=SweepCache(cache_dir))
        cold = run_feasibility(runner=cold_runner)
        warm_runner = SweepRunner(cache=SweepCache(cache_dir))
        warm = run_feasibility(runner=warm_runner)
        return cold, cold_runner, warm, warm_runner

    cold, cold_runner, result, warm_runner = benchmark.pedantic(
        cold_then_warm, rounds=1, iterations=1
    )
    emit("Table 3 — Estimated capacity of global cloud infrastructure and"
         " unused user resources", render_table(result["table3"]))
    emit("Table 3 sweep-runner cache (cold, then warm)",
         render_table(cold_runner.stats.summary_rows()
                      + warm_runner.stats.summary_rows()))
    # Warm-cache re-run performed zero experiment recomputations...
    assert cold_runner.stats.misses >= 1
    assert warm_runner.stats.misses == 0
    assert warm_runner.stats.hits == 1
    # ...and replayed the exact same artifact.
    assert result == cold
    assert result["table3"] == [
        {"resource": "Bandwidth", "cloud": "200 Tbps", "devices": "5000 Tbps"},
        {"resource": "Cores", "cloud": "400 M", "devices": "500 M"},
        {"resource": "Storage", "cloud": "80 EB", "devices": "210 EB"},
    ]
    # "Roughly speaking, there appears to be sufficient capacity."
    assert all(result["sufficient"].values())
    # Margins: bandwidth 25x, storage ~2.6x, compute only 1.25x.
    assert result["ratios"]["bandwidth"] == 25.0
    assert 2.5 < result["ratios"]["storage"] < 2.7
    assert 1.2 < result["ratios"]["cores"] < 1.3


def test_bench_table3_sensitivity(benchmark):
    model = paper_model()

    def sensitivity():
        return {
            "upstream": model.sweep(
                lambda v: model.with_upstream_bps(v * MBPS),
                [0.1, 0.5, 1.0, 10.0],
            ),
            "core_discount": model.sweep(
                model.with_core_discount, [4.0, 8.0, 10.0, 16.0]
            ),
        }

    result = benchmark(sensitivity)
    emit("Table 3 sensitivity — device/cloud ratio vs upstream Mbps",
         render_table([
             {"upstream_mbps": row["value"],
              "bandwidth_ratio": round(row["bandwidth"], 2)}
             for row in result["upstream"]
         ]))
    emit("Table 3 sensitivity — compute ratio vs core discount",
         render_table([
             {"core_discount": row["value"],
              "cores_ratio": round(row["cores"], 3)}
             for row in result["core_discount"]
         ]))
    # Bandwidth sufficiency survives down to 0.1 Mbps upstream (2.5x).
    assert result["upstream"][0]["bandwidth"] == 2.5
    # Compute crosses below parity exactly past the breakeven discount 10.
    ratios = {row["value"]: row["cores"] for row in result["core_discount"]}
    assert ratios[8.0] > 1.0 > ratios[16.0]
    assert abs(ratios[10.0] - 1.0) < 1e-9


def test_bench_table3_demand_extension(benchmark):
    """Demand-side extension: what could the device fleet actually host?

    Table 3 is a supply comparison; this bench asks the question it
    implies — per service, does the idle fleet cover the Internet's user
    base once decentralization overheads (E9's replication, overlay
    stretch) are paid?
    """
    from repro.core import demand_table

    rows = benchmark(demand_table)
    emit("Table 3 extension — serveable users per service (device fleet,"
         " with decentralization overheads)", render_table(rows))
    by_service = {row["service"]: row for row in rows}
    # The fleet hosts everyone's email, photos, feeds, and sites...
    for covered in ("email", "social_feed", "photo_sharing", "web_hosting"):
        assert by_service[covered]["covers_internet"] is True
    # ...but global video streaming breaks on 1 Mbps uplinks.
    assert by_service["video_streaming"]["covers_internet"] is False
    assert by_service["video_streaming"]["binding_resource"] == "bandwidth"
