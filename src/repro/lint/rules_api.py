"""API001: ``__all__`` must agree with the module's public surface.

Both directions are bugs: a name in ``__all__`` that does not exist
breaks ``from module import *`` and misdocuments the API; a public
``def``/``class`` missing from ``__all__`` is an accidental export that
drifts out of the package ``__init__`` re-export lists.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.engine import LintContext, Rule, register
from repro.lint.findings import Finding

__all__ = ["DunderAllConsistency"]


def _find_all(tree: ast.Module) -> Optional[Tuple[ast.Assign, List[str]]]:
    """The module's ``__all__ = [...]`` assignment and its names."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    try:
                        names = list(ast.literal_eval(node.value))
                    except (ValueError, TypeError):
                        return None
                    if all(isinstance(n, str) for n in names):
                        return node, names
    return None


def _top_level_bindings(tree: ast.Module) -> Set[str]:
    """Names bound at module top level, descending into top-level
    ``if``/``try`` blocks (conditional definitions still count)."""
    bound: Set[str] = set()

    def visit(body) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for name in ast.walk(target):
                        if isinstance(name, ast.Name):
                            bound.add(name.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    bound.add(node.target.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.If):
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.Try):
                visit(node.body)
                for handler in node.handlers:
                    visit(handler.body)
                visit(node.orelse)
                visit(node.finalbody)

    visit(tree.body)
    return bound


def _public_defs(tree: ast.Module) -> Iterator[ast.stmt]:
    """Top-level public function/class definitions (incl. conditional)."""

    def visit(body) -> Iterator[ast.stmt]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                if not node.name.startswith("_"):
                    yield node
            elif isinstance(node, ast.If):
                yield from visit(node.body)
                yield from visit(node.orelse)
            elif isinstance(node, ast.Try):
                yield from visit(node.body)
                for handler in node.handlers:
                    yield from visit(handler.body)
                yield from visit(node.orelse)
                yield from visit(node.finalbody)

    return visit(tree.body)


@register
class DunderAllConsistency(Rule):
    rule_id = "API001"
    title = "__all__ out of sync with the module's public definitions"
    rationale = (
        "A phantom __all__ entry breaks star-imports and misdocuments"
        " the API; a public def/class missing from __all__ is an"
        " accidental export the package __init__ re-export lists will"
        " miss. Modules without __all__ are exempt."
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        found = _find_all(ctx.tree)
        if found is None:
            return
        all_node, exported = found
        bound = _top_level_bindings(ctx.tree)
        for name in exported:
            if name not in bound:
                yield ctx.finding(
                    self.rule_id, all_node,
                    f"__all__ exports {name!r} but the module does not"
                    " define it",
                )
        exported_set = set(exported)
        for node in _public_defs(ctx.tree):
            name = getattr(node, "name", "")
            if name not in exported_set:
                yield ctx.finding(
                    self.rule_id, node,
                    f"public definition {name!r} is missing from __all__"
                    " (export it or prefix with an underscore)",
                )
