"""Tests for all three naming backends and the Zooko assessment."""

import pytest

from repro.chain import BlockchainNetwork, ConsensusParams
from repro.crypto import generate_keypair
from repro.errors import (
    AccessDeniedError,
    NameNotFoundError,
    NameTakenError,
    NamingError,
    NotNameOwnerError,
)
from repro.naming import (
    BlockchainNameRegistry,
    CentralizedPKI,
    NameBinding,
    WebOfTrust,
    ZoneFile,
    assess,
    triangle_table,
    validate_name,
)
from repro.net import ConstantLatency, Network
from repro.sim import RngStreams, Simulator

FAST = ConsensusParams(
    target_block_interval=10.0, retarget_interval=50, initial_difficulty=100.0
)


def chain_setup(seed=1, premine=None, confirmations=3):
    sim = Simulator()
    streams = RngStreams(seed)
    chain_net = BlockchainNetwork(
        sim, streams, params=FAST, propagation_delay=0.5, premine=premine or {}
    )
    chain_net.add_participant("m1", hashrate=10.0)
    chain_net.add_participant("m2", hashrate=10.0)
    chain_net.start()
    registry = BlockchainNameRegistry(
        chain_net, chain_net.participant("m1"), confirmations=confirmations
    )
    return sim, chain_net, registry


class TestRecords:
    def test_validate_name_accepts_dns_labels(self):
        assert validate_name("alice.id") == "alice.id"
        assert validate_name("bob-2_x") == "bob-2_x"

    def test_validate_name_rejects_bad(self):
        for bad in ("", "UPPER", "has space", ".dot", "dash-", "x" * 65):
            with pytest.raises(NamingError):
                validate_name(bad)

    def test_zone_file_commitment(self):
        zf = ZoneFile({"web": "https://example.org", "storage": "dht://key"})
        binding = NameBinding("alice.id", "pk123", zf.digest)
        assert binding.verify_zone_file(zf)
        assert not binding.verify_zone_file(ZoneFile({"web": "https://evil"}))

    def test_binding_roundtrip_through_value(self):
        binding = NameBinding("alice.id", "pk123", "zf456")
        restored = NameBinding.from_value("alice.id", binding.as_value())
        assert restored == binding

    def test_malformed_value_rejected(self):
        with pytest.raises(NamingError):
            NameBinding.from_value("x", {"nope": 1})


class TestBlockchainRegistry:
    def test_register_and_resolve(self):
        alice = generate_keypair("bn-alice")
        sim, chain_net, registry = chain_setup(premine={alice.public_key: 100.0})

        def scenario():
            receipt = yield from registry.register(alice, "alice.id", {"pk": "x"})
            resolution = yield from registry.resolve("alice.id")
            return receipt, resolution

        receipt, resolution = sim.run_process(scenario(), until=50_000.0)
        assert receipt.owner_public_key == alice.public_key
        # Latency ~ confirmations x block interval (3 x ~5s here, wide band).
        assert receipt.latency > 2 * FAST.target_block_interval / 2
        assert resolution.value == {"pk": "x"}
        assert resolution.authoritative

    def test_registration_latency_scales_with_confirmations(self):
        alice = generate_keypair("bn-alice2")
        latencies = {}
        for confirmations in (1, 6):
            sim, chain_net, registry = chain_setup(
                seed=7, premine={alice.public_key: 100.0}, confirmations=confirmations
            )

            def scenario():
                receipt = yield from registry.register(alice, "a.id", {})
                return receipt.latency

            latencies[confirmations] = sim.run_process(scenario(), until=50_000.0)
        assert latencies[6] > latencies[1]

    def test_conflicting_registration_first_wins(self):
        alice = generate_keypair("bn-alice3")
        bob = generate_keypair("bn-bob3")
        sim, chain_net, registry = chain_setup(
            seed=3, premine={alice.public_key: 100.0, bob.public_key: 100.0}
        )
        outcomes = {}

        def register(keypair, who):
            try:
                receipt = yield from registry.register(keypair, "contested", {})
                outcomes[who] = "won"
            except NameTakenError:
                outcomes[who] = "lost"

        sim.spawn(register(alice, "alice"))
        sim.spawn(register(bob, "bob"))
        sim.run(until=3000.0)
        assert sorted(outcomes.values()) == ["lost", "won"]

    def test_resolve_unknown_raises(self):
        sim, chain_net, registry = chain_setup(seed=4)

        def scenario():
            try:
                yield from registry.resolve("ghost")
            except NameNotFoundError:
                return "missing"

        assert sim.run_process(scenario(), until=1000.0) == "missing"

    def test_update_by_owner(self):
        alice = generate_keypair("bn-alice5")
        sim, chain_net, registry = chain_setup(seed=5, premine={alice.public_key: 100.0})

        def scenario():
            yield from registry.register(alice, "alice.id", {"v": 1})
            yield from registry.update(alice, "alice.id", {"v": 2})
            resolution = yield from registry.resolve("alice.id")
            return resolution.value

        assert sim.run_process(scenario(), until=50_000.0) == {"v": 2}

    def test_transfer_changes_owner(self):
        alice = generate_keypair("bn-alice6")
        bob = generate_keypair("bn-bob6")
        sim, chain_net, registry = chain_setup(seed=6, premine={alice.public_key: 100.0})

        def scenario():
            yield from registry.register(alice, "alice.id", {})
            yield from registry.transfer(alice, "alice.id", bob.public_key)
            resolution = yield from registry.resolve("alice.id")
            return resolution.owner_public_key

        assert sim.run_process(scenario(), until=50_000.0) == bob.public_key

    def test_bad_confirmations_rejected(self):
        sim, chain_net, _ = chain_setup(seed=8)
        with pytest.raises(NamingError):
            BlockchainNameRegistry(chain_net, chain_net.participant("m1"), confirmations=0)


class TestCentralizedPKI:
    def make_pki(self, seed=1):
        sim = Simulator()
        network = Network(sim, RngStreams(seed), latency=ConstantLatency(0.05))
        network.create_node("client")
        pki = CentralizedPKI(network)
        return sim, network, pki

    def test_register_resolve_fast(self):
        sim, network, pki = self.make_pki()
        alice = generate_keypair("pki-alice")

        def scenario():
            receipt = yield from pki.register(alice, "alice.id", {"pk": "x"}, client="client")
            resolution = yield from pki.resolve("alice.id", client="client")
            return receipt, resolution

        receipt, resolution = sim.run_process(scenario())
        assert receipt.latency < 1.0  # one RTT, vs minutes for blockchain
        assert resolution.owner_public_key == alice.public_key

    def test_duplicate_name_rejected(self):
        sim, network, pki = self.make_pki()
        alice = generate_keypair("pki-alice2")
        bob = generate_keypair("pki-bob2")

        def scenario():
            yield from pki.register(alice, "n", {}, client="client")
            try:
                yield from pki.register(bob, "n", {}, client="client")
            except NameTakenError:
                return "taken"

        assert sim.run_process(scenario()) == "taken"

    def test_update_requires_ownership(self):
        sim, network, pki = self.make_pki()
        alice = generate_keypair("pki-alice3")
        eve = generate_keypair("pki-eve3")

        def scenario():
            yield from pki.register(alice, "n", {"v": 1}, client="client")
            try:
                yield from pki.update(eve, "n", {"v": 666}, client="client")
            except NotNameOwnerError:
                return "denied"

        assert sim.run_process(scenario()) == "denied"

    def test_feudal_revocation(self):
        sim, network, pki = self.make_pki()
        alice = generate_keypair("pki-alice4")

        def scenario():
            yield from pki.register(alice, "n", {}, client="client")
            pki.revoke_user(alice.public_key)
            try:
                yield from pki.update(alice, "n", {"v": 2}, client="client")
            except AccessDeniedError:
                return "revoked"

        assert sim.run_process(scenario()) == "revoked"

    def test_authority_can_seize_names(self):
        sim, network, pki = self.make_pki()
        alice = generate_keypair("pki-alice5")

        def scenario():
            yield from pki.register(alice, "n", {}, client="client")
            pki.seize_name("n", "the-government")
            resolution = yield from pki.resolve("n", client="client")
            return resolution.owner_public_key

        assert sim.run_process(scenario()) == "the-government"

    def test_ca_compromise_rebinds(self):
        sim, network, pki = self.make_pki()
        alice = generate_keypair("pki-alice6")
        mallory = generate_keypair("pki-mallory6")

        def scenario():
            yield from pki.register(alice, "bank", {"endpoint": "real"}, client="client")
            capability = pki.compromise()
            capability.fraudulently_rebind("bank", mallory.public_key, {"endpoint": "phish"})
            resolution = yield from pki.resolve("bank", client="client")
            return resolution

        resolution = sim.run_process(scenario())
        assert resolution.owner_public_key == mallory.public_key
        assert resolution.value == {"endpoint": "phish"}

    def test_server_offline_means_no_resolution(self):
        sim, network, pki = self.make_pki()
        alice = generate_keypair("pki-alice7")

        def scenario():
            yield from pki.register(alice, "n", {}, client="client")
            network.node(pki.server_id).set_online(False, sim.now)
            from repro.errors import RpcTimeoutError

            try:
                yield from pki.resolve("n", client="client")
            except RpcTimeoutError:
                return "unavailable"

        assert sim.run_process(scenario()) == "unavailable"


class TestWebOfTrust:
    def build_honest_community(self, wot, size=10):
        members = [wot.create_identity(f"member{i}") for i in range(size)]
        # Ring of vouches plus a chord, so everyone is reachable.
        for i, member in enumerate(members):
            wot.vouch(member, members[(i + 1) % size].public_key)
            wot.vouch(member, members[(i + 3) % size].public_key)
        return members

    def test_legit_binding_accepted(self):
        wot = WebOfTrust(trust_horizon=4, endorsements_required=2)
        members = self.build_honest_community(wot)
        alice = members[0]
        for endorser in members[1:4]:
            wot.endorse_binding(endorser, "alice.id", alice.public_key)
        anchors = [members[5].public_key]
        assert wot.accepts(anchors, "alice.id", alice.public_key)
        assert wot.resolve(anchors, "alice.id") == alice.public_key

    def test_insufficient_endorsements_rejected(self):
        wot = WebOfTrust(trust_horizon=4, endorsements_required=3)
        members = self.build_honest_community(wot)
        alice = members[0]
        wot.endorse_binding(members[1], "alice.id", alice.public_key)
        assert not wot.accepts([members[5].public_key], "alice.id", alice.public_key)

    def test_endorsers_outside_horizon_dont_count(self):
        wot = WebOfTrust(trust_horizon=1, endorsements_required=1)
        members = self.build_honest_community(wot)
        alice = members[0]
        # Endorser is 5 hops away from the anchor.
        wot.endorse_binding(members[6], "alice.id", alice.public_key)
        anchors = [members[0].public_key]
        assert not wot.accepts(anchors, "alice.id", alice.public_key)

    def test_sybil_attack_fails_without_infiltration(self):
        wot = WebOfTrust(trust_horizon=4, endorsements_required=2)
        members = self.build_honest_community(wot)
        result = wot.sybil_attack(
            "victim.id", sybil_count=50, infiltration_edges=0,
            honest_victims=[m.public_key for m in members],
        )
        anchors = [members[0].public_key]
        assert not wot.accepts(anchors, "victim.id", result.attacker_public_key)

    def test_sybil_attack_succeeds_with_infiltration(self):
        wot = WebOfTrust(trust_horizon=4, endorsements_required=2)
        members = self.build_honest_community(wot)
        result = wot.sybil_attack(
            "victim.id", sybil_count=50, infiltration_edges=2,
            honest_victims=[m.public_key for m in members],
        )
        anchors = [members[0].public_key]
        assert wot.accepts(anchors, "victim.id", result.attacker_public_key)

    def test_self_vouch_rejected(self):
        wot = WebOfTrust()
        alice = wot.create_identity("a")
        with pytest.raises(NamingError):
            wot.vouch(alice, alice.public_key)

    def test_verifier_needs_anchors(self):
        wot = WebOfTrust()
        with pytest.raises(NamingError):
            wot.accepts([], "x", "pk")


class TestZooko:
    def test_blockchain_claims_all_three(self):
        assert assess("blockchain").corners == 3

    def test_classic_designs_pick_two(self):
        for kind in ("raw_public_key", "centralized", "web_of_trust"):
            assert assess(kind).corners == 2

    def test_table_has_blockchain_last(self):
        table = triangle_table()
        assert table[-1]["kind"] == "blockchain"
        assert len(table) == 4

    def test_unknown_kind_rejected(self):
        with pytest.raises(NamingError):
            assess("quantum")


class TestZookoBehavioural:
    """The Zooko table is earned: each assessment's 'secure'/'decentralized'
    bit corresponds to an attack that does or does not exist."""

    def test_centralized_not_decentralized_bit(self):
        # Backed by: CentralizedPKI.seize_name works (TestCentralizedPKI).
        assert assess("centralized").decentralized is False

    def test_wot_not_secure_bit(self):
        # Backed by: WebOfTrust.sybil_attack succeeds with infiltration.
        assert assess("web_of_trust").secure is False

    def test_blockchain_rationale_mentions_caveat(self):
        assert "51" in assess("blockchain").rationale
