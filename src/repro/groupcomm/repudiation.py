"""OTR-style repudiable authentication (§3.2).

The paper credits OTR [9] with introducing *repudiability* and
*forgeability* to the messaging discussion.  The mechanism: authenticate
messages with MACs (not signatures), and **publish each MAC key once it
is no longer needed**.  During the conversation the recipient knows the
counterparty wrote the message (only the two of them held the key); after
key disclosure *anyone* can forge a message that verifies identically, so
a transcript proves nothing to a third party.

The contrast object, :class:`SignedConversation`, uses signatures: every
message remains provably attributable forever — exactly what OTR set out
to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto.hashing import hash_obj, sha256_hex
from repro.crypto.keys import KeyPair, Signature, verify
from repro.errors import CryptoError, GroupCommError

__all__ = ["OtrMessage", "OtrConversation", "SignedConversation"]


def _mac(key: str, body: object) -> str:
    return sha256_hex(f"otr-mac:{key}:{hash_obj(body)}".encode("utf-8"))


@dataclass(frozen=True)
class OtrMessage:
    """One MAC-authenticated message.

    ``revealed_keys`` carries MAC keys from *earlier* messages, disclosed
    now that their authentication window has passed.
    """

    index: int
    author: str
    body: object
    mac: str
    revealed_keys: Tuple[Tuple[int, str], ...] = ()


class OtrConversation:
    """A two-party repudiable channel.

    Both ends construct it from the same shared secret (stand-in for the
    authenticated DH handshake).  Each message uses a fresh MAC key
    derived from the secret and the message index; sending message ``i``
    automatically discloses the key for message ``i - 1``.
    """

    def __init__(self, shared_secret: str):
        if not shared_secret:
            raise CryptoError("conversation requires a shared secret")
        self._secret = shared_secret
        self._next_index = 0
        self.disclosed: Dict[int, str] = {}

    def _key_for(self, index: int) -> str:
        return sha256_hex(f"otr-key:{self._secret}:{index}".encode("utf-8"))

    # -- sending -------------------------------------------------------------

    def send(self, author: str, body: object) -> OtrMessage:
        index = self._next_index
        self._next_index += 1
        reveals: Tuple[Tuple[int, str], ...] = ()
        if index > 0:
            previous = index - 1
            key = self._key_for(previous)
            self.disclosed[previous] = key
            reveals = ((previous, key),)
        return OtrMessage(
            index=index,
            author=author,
            body=body,
            mac=_mac(self._key_for(index), body),
            revealed_keys=reveals,
        )

    def end_conversation(self) -> Dict[int, str]:
        """Close the session: disclose every remaining MAC key (OTR
        publishes them so the whole transcript becomes deniable)."""
        for index in range(self._next_index):
            self.disclosed[index] = self._key_for(index)
        return dict(self.disclosed)

    # -- verification -----------------------------------------------------------

    def authenticate(self, message: OtrMessage) -> bool:
        """Real-time check by the *peer* (who also holds the secret)."""
        return message.mac == _mac(self._key_for(message.index), message.body)

    @staticmethod
    def third_party_can_attribute(message: OtrMessage, disclosed: Dict[int, str]) -> bool:
        """Can an outsider holding the disclosed keys prove authorship?

        Once the MAC key for a message is public, a verifying MAC proves
        nothing — anyone could have computed it.  Returns True only while
        the key is still private (and even then the outsider cannot check
        it, so attribution is never possible — this returns whether the
        *transcript* retains evidentiary value).
        """
        return message.index not in disclosed

    @staticmethod
    def forge(message_index: int, author: str, body: object,
              disclosed: Dict[int, str]) -> OtrMessage:
        """Any third party forges a message once the key is disclosed.

        The forgery is *indistinguishable* from a real message: same index,
        any author string, valid MAC.
        """
        key = disclosed.get(message_index)
        if key is None:
            raise GroupCommError(
                f"key for message {message_index} not disclosed; cannot forge"
            )
        return OtrMessage(
            index=message_index,
            author=author,
            body=body,
            mac=_mac(key, body),
            revealed_keys=(),
        )

    def mac_matches_disclosed_key(self, message: OtrMessage) -> bool:
        """Verification an outsider CAN do after disclosure (and exactly
        why it proves nothing)."""
        key = self.disclosed.get(message.index)
        if key is None:
            return False
        return message.mac == _mac(key, message.body)


class SignedConversation:
    """The non-repudiable baseline: signature-authenticated messages.

    "Why not to use PGP" (the OTR paper's subtitle): every message is
    forever provably attributable to its signer.
    """

    def __init__(self) -> None:
        self._log: List[Tuple[object, Signature]] = []

    def send(self, keypair: KeyPair, body: object) -> Tuple[object, Signature]:
        entry = (body, keypair.sign(body))
        self._log.append(entry)
        return entry

    @staticmethod
    def third_party_can_attribute(body: object, signature: Signature) -> bool:
        """Anyone, at any time, can verify authorship — non-repudiation."""
        return verify(signature, body)
