"""Plain-text table rendering for experiment output.

Benches print the same rows the paper reports; these helpers format them
readably without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["render_table", "render_kv"]


def render_table(rows: Sequence[Dict[str, object]], columns: Sequence[str] = ()) -> str:
    """Render dict-rows as an aligned ASCII table.

    Column order defaults to first-row key order; values are str()'d.
    """
    if not rows:
        return "(empty table)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[str(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(cols)
    ]
    def line(parts: Sequence[str]) -> str:
        return "  ".join(part.ljust(width) for part, width in zip(parts, widths))

    header = line(cols)
    rule = "  ".join("-" * width for width in widths)
    body = "\n".join(line(row) for row in cells)
    return f"{header}\n{rule}\n{body}"


def render_kv(pairs: Dict[str, object], title: str = "") -> str:
    """Render a flat key/value mapping, one per line."""
    width = max((len(k) for k in pairs), default=0)
    lines = [f"{k.ljust(width)} : {v}" for k, v in pairs.items()]
    if title:
        lines.insert(0, title)
        lines.insert(1, "=" * len(title))
    return "\n".join(lines)
