"""E5 — the privacy/availability trade across communication models (§3.2).

The paper: socially-aware P2P systems buy privacy "at a price of reduced
availability since nodes accept connections only from socially-trusted
peers"; centralized platforms are the reverse; Matrix's E2E encryption
still "reveal[s] the identities of the participants" to servers.
"""

from benchmarks.conftest import emit
from repro.analysis import render_table, run_social_tradeoff


def test_bench_social_tradeoff(benchmark):
    rows = benchmark.pedantic(
        run_social_tradeoff, kwargs={"seed": 3}, rounds=1, iterations=1
    )
    emit("E5 — availability vs operator exposure", render_table(rows))
    by_system = {row["system"]: row for row in rows}

    central = by_system["centralized"]
    p2p = by_system["socially_aware_p2p"]
    e2e = by_system["federated_replicated_e2e"]

    # Centralized: best availability, total exposure.
    assert central["availability"] >= p2p["availability"]
    assert central["operator_exposure"] == 1.0
    # Socially-aware P2P: zero operator exposure, the availability cost.
    assert p2p["operator_exposure"] == 0.0
    assert p2p["availability"] <= central["availability"]
    # E2E federation sits strictly between: metadata still leaks.
    assert 0.0 < e2e["operator_exposure"] < 1.0
    # The exposure ordering the paper describes.
    assert (
        central["operator_exposure"]
        >= e2e["operator_exposure"]
        > p2p["operator_exposure"]
    )


def test_bench_social_tradeoff_churn_sweep(benchmark):
    from repro.net import ChurnProfile

    def churn_sweep():
        out = []
        for label, downtime in (("mild", 50.0), ("heavy", 400.0)):
            rows = run_social_tradeoff(
                seed=5,
                device_profile=ChurnProfile(
                    mean_uptime=400.0, mean_downtime=downtime
                ),
            )
            for row in rows:
                row["churn"] = label
                out.append(row)
        return out

    rows = benchmark.pedantic(churn_sweep, rounds=1, iterations=1)
    emit("E5 — availability under mild vs heavy device churn",
         render_table(rows, columns=["churn", "system", "availability",
                                     "operator_exposure"]))
    p2p = {
        row["churn"]: row["availability"]
        for row in rows if row["system"] == "socially_aware_p2p"
    }
    central = {
        row["churn"]: row["availability"]
        for row in rows if row["system"] == "centralized"
    }
    # Heavier device churn hurts the P2P design more than the
    # server-backed one (which only needs the reader online).
    assert p2p["heavy"] <= p2p["mild"]
    assert central["heavy"] >= p2p["heavy"]
