"""ERR001 positive fixture: a swallowed broad except."""


def swallow(fn):
    try:
        return fn()
    except Exception:
        return None
