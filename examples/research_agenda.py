#!/usr/bin/env python3
"""The paper's research agenda (§5), cross-referenced with this library.

Prints the easy/moderate/hard problem tiers and, for each item an
experiment informs, the measured evidence this reproduction provides.

Run:  python examples/research_agenda.py
"""

from repro.analysis import render_table
from repro.core import AGENDA, Difficulty, items_by_difficulty
from repro.core.agenda import experiments_informing

EXPERIMENT_SUMMARIES = {
    "E3": "Table 3 reproduced exactly; compute margin is only 1.25x",
    "E4": "single-home availability = 1 - k/N; replication+failover = 1.0",
    "E5": "P2P: exposure 0 at availability ~0.8; central: exposure 1 at 1.0",
    "E6": "chain registration ~350x slower than PKI; rewrite crossover at 50%",
    "E7": "unaudited cheating pays in full; every audited attack slashed",
    "E8": "swarms self-sustain only above a popularity threshold",
    "E9": "device-grade infra needs R>=3 plus continuous repair bandwidth",
}


def main() -> None:
    for difficulty in (Difficulty.EASY, Difficulty.MODERATE, Difficulty.HARD):
        items = items_by_difficulty(difficulty)
        print(f"\n### {difficulty.upper()} problems (§5)")
        rows = []
        for item in items:
            evidence = "; ".join(
                f"{e}: {EXPERIMENT_SUMMARIES.get(e, '?')}"
                for e in item.informed_by_experiments
            ) or ("(not a technical problem)" if not item.technical
                  else "(no experiment yet)")
            rows.append({
                "problem": item.title[:58],
                "informed by": evidence[:80],
            })
        print(render_table(rows))

    print("\nExperiment -> agenda coverage:")
    for experiment, keys in sorted(experiments_informing().items()):
        print(f"  {experiment}: informs {', '.join(keys)}")

    technical = sum(1 for item in AGENDA if item.technical)
    print(f"\n{technical}/{len(AGENDA)} agenda items are technical;"
          " the paper's point is that the hard tier mostly is not.")


if __name__ == "__main__":
    main()
