"""Demand-side extension of the §4 feasibility model.

Table 3 compares raw *supply*: cloud capacity vs idle device capacity.
The natural next question — how many users of which services could that
device capacity actually serve? — needs per-service demand profiles and
the overheads decentralization itself introduces (replication for
device-grade durability, path stretch for overlay routing; both measured
in E9 and the DHT benches).  This module supplies both, so statements
like "the device fleet could host everyone's email but not everyone's
video" become computations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.core.feasibility import Capacity, FeasibilityModel, paper_model
from repro.core.units import GB, KBPS, MB, MBPS
from repro.errors import FeasibilityError

__all__ = [
    "ServiceDemand",
    "DecentralizationOverhead",
    "SERVICES",
    "serveable_users",
    "demand_table",
    "service",
]


@dataclass(frozen=True)
class ServiceDemand:
    """Average per-user resource demand for one Internet service.

    Values are order-of-magnitude engineering estimates in the same
    spirit as the paper's §4 numbers (documented per service below).
    ``cores_per_million_users`` is server-side compute.
    """

    name: str
    storage_bytes_per_user: float
    bandwidth_bps_per_user: float  # average serving bandwidth, not peak
    cores_per_million_users: float
    rationale: str = ""

    def __post_init__(self) -> None:
        if min(self.storage_bytes_per_user, self.bandwidth_bps_per_user,
               self.cores_per_million_users) < 0:
            raise FeasibilityError(f"negative demand in {self.name!r}")


@dataclass(frozen=True)
class DecentralizationOverhead:
    """Multipliers decentralized serving adds over centralized serving.

    * ``storage_replication`` — copies needed for device-grade durability
      (E9: 2-4 on device churn vs ~1 in a datacenter);
    * ``bandwidth_stretch`` — overlay routing/duplicate-transfer factor
      (DHT hops, gossip duplicates; the E11 flooding factor is the
      worst case);
    * ``compute_overhead`` — crypto + coordination tax.
    """

    storage_replication: float = 3.0
    bandwidth_stretch: float = 2.0
    compute_overhead: float = 1.5

    def __post_init__(self) -> None:
        if min(self.storage_replication, self.bandwidth_stretch,
               self.compute_overhead) < 1.0:
            raise FeasibilityError("overheads cannot be below 1x")


# Order-of-magnitude per-user demand profiles, 2017-era services.
SERVICES: Tuple[ServiceDemand, ...] = (
    ServiceDemand(
        name="email",
        storage_bytes_per_user=5 * GB,
        bandwidth_bps_per_user=2 * KBPS,
        cores_per_million_users=50,
        rationale="Gmail-era quota ~15 GB, typical usage far lower;"
                  " tens of messages/day",
    ),
    ServiceDemand(
        name="social_feed",
        storage_bytes_per_user=1 * GB,
        bandwidth_bps_per_user=20 * KBPS,
        cores_per_million_users=300,
        rationale="text/image timeline; continuous polling",
    ),
    ServiceDemand(
        name="photo_sharing",
        storage_bytes_per_user=20 * GB,
        bandwidth_bps_per_user=30 * KBPS,
        cores_per_million_users=200,
        rationale="photo libraries dominate consumer cloud storage",
    ),
    ServiceDemand(
        name="video_streaming",
        storage_bytes_per_user=1 * GB,  # shared catalog amortizes
        bandwidth_bps_per_user=1 * MBPS,
        cores_per_million_users=500,
        rationale="1 hour/day at ~3 Mbps averages to ~1 Mbps sustained"
                  " per active-ish user",
    ),
    ServiceDemand(
        name="web_hosting",
        storage_bytes_per_user=100 * MB,
        bandwidth_bps_per_user=5 * KBPS,
        cores_per_million_users=100,
        rationale="personal sites: small and rarely hot",
    ),
)


def service(name: str) -> ServiceDemand:
    for candidate in SERVICES:
        if candidate.name == name:
            return candidate
    raise FeasibilityError(
        f"unknown service {name!r}; known: {[s.name for s in SERVICES]}"
    )


def serveable_users(
    demand: ServiceDemand,
    supply: Optional[Capacity] = None,
    overhead: Optional[DecentralizationOverhead] = None,
) -> Dict[str, float]:
    """How many users the supply could serve, per resource and overall.

    Returns per-resource user counts and ``overall`` (the minimum —
    the binding constraint).
    """
    supply = supply if supply is not None else paper_model().device_capacity()
    overhead = overhead if overhead is not None else DecentralizationOverhead()

    def _users(available: float, per_user: float, factor: float) -> float:
        if per_user == 0:
            return float("inf")
        return available / (per_user * factor)

    by_resource = {
        "storage": _users(
            supply.storage_bytes, demand.storage_bytes_per_user,
            overhead.storage_replication,
        ),
        "bandwidth": _users(
            supply.bandwidth_bps, demand.bandwidth_bps_per_user,
            overhead.bandwidth_stretch,
        ),
        "cores": _users(
            supply.cores, demand.cores_per_million_users / 1e6,
            overhead.compute_overhead,
        ),
    }
    binding = min(by_resource, key=lambda k: by_resource[k])
    return {
        **by_resource,
        "overall": by_resource[binding],
        "binding_resource": binding,
    }


def demand_table(
    user_base: float = 3.5e9,
    model: Optional[FeasibilityModel] = None,
    overhead: Optional[DecentralizationOverhead] = None,
) -> List[Dict[str, object]]:
    """Per-service: can the device fleet serve ``user_base`` users?

    ``user_base`` defaults to roughly the 2017 Internet population.
    """
    supply = (model or paper_model()).device_capacity()
    rows = []
    for demand in SERVICES:
        result = serveable_users(demand, supply, overhead)
        rows.append(
            {
                "service": demand.name,
                "serveable_users_billions": round(result["overall"] / 1e9, 2),
                "binding_resource": result["binding_resource"],
                "covers_internet": result["overall"] >= user_base,
            }
        )
    return rows
