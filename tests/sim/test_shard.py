"""Unit tests for the sharded engine's building blocks.

Partitioner stability, lookahead derivation, envelope ordering, router
conservation, the cross-shard RPC guard, coordinator validation, the
process-mode pickling guard, and the worker protocol (driven in-process
through a fake pipe so the loop is exercised under coverage).
"""

import pickle

import pytest

from repro.errors import NetworkError, SimulationError
from repro.net.latency import (
    ConstantLatency,
    LogNormalLatency,
    PlanetLatency,
    UniformLatency,
)
from repro.net.node import Node
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.shard import (
    Envelope,
    Shard,
    ShardNetwork,
    ShardRouter,
    ShardWorkload,
    ShardedSimulator,
    _shard_worker,
    assign_shards,
    derive_lookahead,
    run_single_process,
)


def _envelope(arrival=1.0, origin_shard=0, seq=0, dst="b", method="m"):
    return Envelope(
        arrival=arrival, src_id="a", dst_id=dst, method=method,
        payload=None, size_bytes=0, origin_shard=origin_shard, seq=seq,
        sent_at=arrival - 0.5,
    )


class TestAssignShards:
    def test_deterministic_and_order_independent(self):
        labels = [f"n{i}" for i in range(50)]
        first = assign_shards(labels, 4)
        second = assign_shards(reversed(labels), 4)
        assert first == second

    def test_values_in_range(self):
        assignment = assign_shards((f"n{i}" for i in range(200)), 7)
        assert set(assignment.values()) <= set(range(7))
        # SHA-256 over 200 labels hits every one of 7 buckets.
        assert set(assignment.values()) == set(range(7))

    def test_single_shard_maps_everything_to_zero(self):
        assert set(assign_shards(["a", "b", "c"], 1).values()) == {0}

    def test_nonstring_labels_are_coerced(self):
        assert assign_shards([0, 1], 2) == assign_shards(["0", "1"], 2)

    def test_rejects_nonpositive_count(self):
        with pytest.raises(SimulationError):
            assign_shards(["a"], 0)

    def test_pinned_mapping_is_stable_across_releases(self):
        # The digest-based mapping is part of the determinism contract:
        # if these move, every pinned shard golden silently re-shards.
        assert assign_shards(["srv0", "u0", "ca"], 2) == {
            "srv0": 1, "u0": 0, "ca": 1,
        }


class TestDeriveLookahead:
    def test_constant_latency_gives_its_delay(self):
        assert derive_lookahead(ConstantLatency(0.05)) == 0.05

    def test_uniform_latency_gives_lower_bound(self):
        assert derive_lookahead(UniformLatency(lo=0.01, hi=0.2)) == 0.01

    def test_planet_latency_gives_access_hops(self):
        model = PlanetLatency(RngStreams(1))
        lo, _hi = model.propagation_bounds()
        assert derive_lookahead(model) == lo > 0

    def test_lognormal_latency_is_rejected(self):
        with pytest.raises(SimulationError):
            derive_lookahead(LogNormalLatency())


class TestEnvelopeOrdering:
    def test_sorts_by_arrival_then_origin_then_seq(self):
        envelopes = [
            _envelope(arrival=2.0, origin_shard=0, seq=0),
            _envelope(arrival=1.0, origin_shard=1, seq=0),
            _envelope(arrival=1.0, origin_shard=0, seq=1),
            _envelope(arrival=1.0, origin_shard=0, seq=0),
        ]
        ordered = sorted(envelopes, key=Envelope.sort_key)
        assert [e.sort_key() for e in ordered] == [
            (1.0, 0, 0), (1.0, 0, 1), (1.0, 1, 0), (2.0, 0, 0),
        ]

    def test_envelopes_are_frozen(self):
        with pytest.raises(AttributeError):
            _envelope().arrival = 9.0


class TestShardRouter:
    def test_drain_orders_and_counts(self):
        router = ShardRouter()
        router.collect([_envelope(arrival=2.0), _envelope(arrival=1.0)])
        assert router.in_transit == 2
        assert router.peek_min_arrival() == 1.0
        batch = router.drain()
        assert [e.arrival for e in batch] == [1.0, 2.0]
        assert router.in_transit == 0
        assert router.peek_min_arrival() is None
        assert router.messages_crossed == 2

    def test_combined_flow_counts_carried_envelopes_in_flight(self):
        router = ShardRouter()
        router.collect([_envelope()])
        flow = router.combined_flow([
            {"sent": 3, "delivered": 1, "dropped": 1, "in_flight": 0},
            {"sent": 2, "delivered": 2, "dropped": 0, "in_flight": 0},
        ])
        assert flow == {
            "sent": 5, "delivered": 3, "dropped": 1, "in_flight": 1,
        }
        assert flow["sent"] == (
            flow["delivered"] + flow["dropped"] + flow["in_flight"]
        )


def _two_node_network(shard_index=0):
    sim = Simulator()
    streams = RngStreams(11)
    assignment = {"a": 0, "b": 1}
    network = ShardNetwork(
        sim, streams, assignment, shard_index,
        latency=ConstantLatency(0.05),
    )
    network.add_node(Node("a"))
    network.add_node(Node("b"))
    return sim, network


class TestShardNetwork:
    def test_remote_send_freezes_an_envelope(self):
        sim, network = _two_node_network(shard_index=0)
        network.send("a", "b", "ping", {"i": 1})
        outbox = network._take_outbox()
        assert len(outbox) == 1
        envelope = outbox[0]
        assert (envelope.src_id, envelope.dst_id) == ("a", "b")
        # Propagation (0.05) plus the 512-byte serialization leg.
        assert envelope.arrival == pytest.approx(0.05, abs=1e-3)
        assert network.flow_snapshot()["sent"] == 1
        # Second take is empty: the outbox drains.
        assert network._take_outbox() == []

    def test_local_send_delivers_without_envelopes(self):
        sim, network = _two_node_network(shard_index=0)
        got = []
        network.node("a").register_handler(
            "ping", lambda node, payload, sender_id: got.append(payload)
        )
        network.send("b", "a", "ping", 7)
        sim.run()
        assert got == [7]
        assert network._take_outbox() == []

    def test_cross_shard_rpc_is_rejected(self):
        sim, network = _two_node_network(shard_index=0)
        with pytest.raises(NetworkError):
            next(network.rpc("a", "b", "echo", payload=1))

    def test_injected_envelope_delivers_on_owner(self):
        sim, network = _two_node_network(shard_index=1)
        got = []
        network.node("b").register_handler(
            "ping", lambda node, payload, sender_id: got.append(payload)
        )
        network._inject_envelope(
            _envelope(arrival=1.5, dst="b", method="ping")
        )
        assert network.flow_snapshot()["in_flight"] == 1
        sim.run()
        assert got == [None]
        assert sim.now == 1.5
        assert network.flow_snapshot()["delivered"] == 1


def _echo_workload(hops=3):
    """Module-level (picklable) two-node ping-pong workload.

    ``left``/``right`` hash to different shards at K=2, so every hop
    crosses the barrier."""
    ids = ("left", "right")

    def build(shard):
        network, sim = shard.network, shard.sim
        seen = {"count": 0}
        shard.state["seen"] = seen

        def on_ping(node, payload, sender_id):
            seen["count"] += 1
            if payload > 0:
                network.send(node.node_id, sender_id, "ping", payload - 1)

        for node_id in ids:
            network.add_node(Node(node_id)).register_handler("ping", on_ping)
        if shard.owns("left"):
            sim.schedule_at(
                1.0, network.send, "left", "right", "ping", hops
            )

    return ShardWorkload(
        name="echo",
        node_ids=ids,
        build=build,
        collect=lambda shard: {"seen": shard.state["seen"]["count"]},
        latency_factory=lambda streams: ConstantLatency(0.1),
        horizon=20.0,
    )


class TestShardedSimulator:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(SimulationError):
            ShardedSimulator(_echo_workload, shards=0, seed=1)

    def test_rejects_unknown_mode(self):
        with pytest.raises(SimulationError):
            ShardedSimulator(_echo_workload, shards=2, seed=1, mode="thread")

    def test_two_shard_run_matches_single_process(self):
        reference = run_single_process(_echo_workload(), seed=1)
        coordinator = ShardedSimulator(_echo_workload, shards=2, seed=1)
        results = coordinator.run()
        assert sum(r["seen"] for r in results) == reference["seen"] == 4
        assert coordinator.flow == reference["flow"]
        assert coordinator.router.messages_crossed == 4
        assert coordinator.sync_rounds > 0

    def test_k1_is_exactly_single_process(self):
        reference = run_single_process(_echo_workload(), seed=1)
        coordinator = ShardedSimulator(_echo_workload, shards=1, seed=1)
        results = coordinator.run()
        assert results[0]["seen"] == reference["seen"]
        assert coordinator.flow == reference["flow"]
        # One shard owns everything: nothing ever crosses.
        assert coordinator.router.messages_crossed == 0

    def test_on_sync_sees_monotone_barriers_and_conserved_flow(self):
        coordinator = ShardedSimulator(_echo_workload, shards=2, seed=1)
        barriers = []

        def on_sync(round_no, barrier_time):
            barriers.append((round_no, barrier_time))
            flow = coordinator.live_flow()
            assert flow is not None
            assert flow["sent"] == (
                flow["delivered"] + flow["dropped"] + flow["in_flight"]
            )

        coordinator.run(on_sync=on_sync)
        rounds = [r for r, _t in barriers]
        times = [t for _r, t in barriers]
        assert rounds == list(range(1, len(barriers) + 1))
        assert times == sorted(times)

    def test_live_flow_is_none_outside_a_run(self):
        coordinator = ShardedSimulator(_echo_workload, shards=2, seed=1)
        assert coordinator.live_flow() is None

    def test_unpicklable_spec_falls_back_to_inline(self):
        coordinator = ShardedSimulator(
            lambda: _echo_workload(), shards=2, seed=1, mode="process"
        )
        assert not coordinator._spec_picklable()
        results = coordinator.run()
        assert coordinator.serial_fallback
        assert sum(r["seen"] for r in results) == 4

    def test_process_mode_matches_inline_exactly(self):
        inline = ShardedSimulator(_echo_workload, shards=2, seed=1)
        inline_results = inline.run()
        process = ShardedSimulator(
            _echo_workload, shards=2, seed=1, mode="process"
        )
        process_results = process.run()
        assert not process.serial_fallback
        assert process_results == inline_results
        assert process.flow == inline.flow
        assert process.sync_rounds == inline.sync_rounds
        assert (
            process.router.messages_crossed
            == inline.router.messages_crossed
        )

    def test_spec_picklable_accepts_module_level_factory(self):
        coordinator = ShardedSimulator(_echo_workload, shards=2, seed=1)
        assert coordinator._spec_picklable()
        pickle.dumps((coordinator.factory, coordinator.kwargs))


def _lossy_workload():
    workload = _echo_workload()
    return ShardWorkload(
        name="lossy_echo",
        node_ids=workload.node_ids,
        build=workload.build,
        collect=workload.collect,
        latency_factory=workload.latency_factory,
        horizon=workload.horizon,
        loss_rate=0.9,
    )


def _default_latency_workload():
    workload = _echo_workload()
    return ShardWorkload(
        name="default_latency_echo",
        node_ids=workload.node_ids,
        build=workload.build,
        collect=workload.collect,
        latency_factory=None,
        horizon=workload.horizon,
    )


def _late_start_workload():
    """First event at t=1.0 with a lookahead too small to advance."""
    workload = _echo_workload()
    from repro.net.latency import ConstantLatency as _CL

    return ShardWorkload(
        name="vanishing_lookahead",
        node_ids=workload.node_ids,
        build=workload.build,
        collect=workload.collect,
        latency_factory=lambda streams: _CL(1e-300),
        horizon=workload.horizon,
    )


class TestObservationAndFaults:
    def test_traced_metered_run_emits_shard_events(self):
        from repro.obs import Metrics, Tracer, observe

        tracer, metrics = Tracer(), Metrics()
        with observe(tracer=tracer, metrics=metrics):
            coordinator = ShardedSimulator(_echo_workload, shards=2, seed=1)
        coordinator.run()
        syncs = list(tracer.iter_kind("shard_sync"))
        envelopes = list(tracer.iter_kind("shard_envelope"))
        assert len(syncs) == coordinator.sync_rounds
        assert len(envelopes) == coordinator.router.messages_crossed == 4
        assert metrics.counter("shard.sync_rounds") == (
            coordinator.sync_rounds
        )
        assert metrics.counter("shard.messages_crossed") == 4
        assert metrics.counter("shard.horizon_stalls") == (
            coordinator.horizon_stalls
        )

    def test_double_traced_run_is_byte_identical(self, tmp_path):
        from repro.obs import Tracer

        paths = []
        for name in ("a.jsonl", "b.jsonl"):
            tracer = Tracer()
            ShardedSimulator(
                _echo_workload, shards=2, seed=1, tracer=tracer
            ).run()
            path = tmp_path / name
            tracer.write_jsonl(str(path))
            paths.append(path.read_bytes())
        assert paths[0] == paths[1]

    def test_remote_send_respects_loss_rate(self):
        coordinator = ShardedSimulator(_lossy_workload, shards=2, seed=1)
        coordinator.run()
        flow = coordinator.flow
        assert flow["dropped"] > 0
        assert flow["sent"] == (
            flow["delivered"] + flow["dropped"] + flow["in_flight"]
        )

    def test_offline_destination_drops_on_arrival(self):
        sim, network = _two_node_network(shard_index=1)
        network.node("b").set_online(False, 0.0)
        network._inject_envelope(
            _envelope(arrival=1.5, dst="b", method="ping")
        )
        sim.run()
        flow = network.flow_snapshot()
        assert flow["dropped"] == 1 and flow["delivered"] == 0

    def test_default_latency_model_when_factory_is_none(self):
        coordinator = ShardedSimulator(
            _default_latency_workload, shards=2, seed=1
        )
        results = coordinator.run()
        assert sum(r["seen"] for r in results) == 4

    def test_vanishing_lookahead_raises_instead_of_spinning(self):
        coordinator = ShardedSimulator(_late_start_workload, shards=2, seed=1)
        with pytest.raises(SimulationError, match="lookahead"):
            coordinator.run()

    def test_live_flow_is_none_for_process_shards(self):
        coordinator = ShardedSimulator(
            _echo_workload, shards=2, seed=1, mode="process"
        )
        observed = []
        coordinator.run(
            on_sync=lambda r, t: observed.append(coordinator.live_flow())
        )
        assert observed and all(flow is None for flow in observed)


class _FakePipe:
    """In-process stand-in for one end of a multiprocessing.Pipe."""

    def __init__(self, commands):
        self.commands = list(commands)
        self.sent = []

    def recv(self):
        return self.commands.pop(0)

    def send(self, message):
        self.sent.append(message)


class TestWorkerProtocol:
    def test_worker_serves_windows_then_finishes(self):
        conn = _FakePipe([
            ("window", 1.05, False, []),
            ("window", 2.0, False, []),
            ("finish", 20.0),
        ])
        _shard_worker(conn, _echo_workload, {}, 2, 1, 0, None)
        tags = [message[0] for message in conn.sent]
        assert tags == ["ready", "window_done", "window_done", "result"]
        # Shard 0 owns "left": the first window fires the 1.0 send and
        # exports it as one envelope; nothing local remains after.
        _tag, _next_time, outbox = conn.sent[1]
        assert len(outbox) == 1
        _tag, collected, flow = conn.sent[-1]
        assert set(flow) == {"sent", "delivered", "dropped", "in_flight"}
        assert collected == {"seen": 0}

    def test_worker_relays_crashes_as_error(self):
        def broken_factory():
            raise RuntimeError("boom")

        conn = _FakePipe([])
        with pytest.raises(RuntimeError):
            _shard_worker(conn, broken_factory, {}, 2, 1, 0, None)
        assert conn.sent == [("error", "RuntimeError: boom")]


class TestRunSingleProcess:
    def test_attaches_flow_snapshot(self):
        result = run_single_process(_echo_workload(), seed=5)
        assert result["flow"]["sent"] == 4
        assert result["flow"]["delivered"] == 4

    def test_shard_with_no_assignment_owns_everything(self):
        sim = Simulator()
        streams = RngStreams(3)
        from repro.net.transport import Network

        shard = Shard(0, sim, streams, Network(sim, streams), assignment=None)
        assert shard.owns("anything")
