"""Named metrics: counters, histograms, and last-value gauges.

One :class:`Metrics` registry is threaded through all three hot layers
(simulation engine, network transport, sweep runner) so a single run —
or a whole sweep — lands in one mergeable, JSON-able snapshot.

Design constraints, in priority order:

* **Zero cost when disabled** — instrumented code holds ``None`` instead
  of a registry and guards every record with one ``is not None`` check;
  nothing here runs at all.
* **Bounded memory when enabled** — :class:`Histogram` keeps streaming
  aggregates (count/sum/min/max) plus power-of-two bucket counts, and
  retains raw samples only up to a fixed cap, so tracing a
  multi-million-event simulation cannot exhaust memory.
* **Deterministic output** — snapshots sort every name; nothing reads
  the host clock or ``id()``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["Histogram", "Metrics", "RAW_SAMPLE_CAP"]

#: Raw observations a histogram retains verbatim (streaming aggregates
#: keep counting past the cap; ``truncated`` flags the overflow).
RAW_SAMPLE_CAP = 4096


class Histogram:
    """Streaming distribution of observed values.

    Exact count/sum/min/max always; raw values up to
    :data:`RAW_SAMPLE_CAP` for percentile queries on small samples;
    power-of-two magnitude buckets for a shape sketch at any scale.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "_raw", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._raw: List[float] = []
        self._buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self._raw) < RAW_SAMPLE_CAP:
            self._raw.append(value)
        bucket = _bucket_of(value)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("mean of an empty histogram")
        # Clamp: float summation can drift a few ULPs outside [min, max].
        return min(max(self.total / self.count, self.minimum), self.maximum)

    @property
    def truncated(self) -> bool:
        """True when raw retention overflowed (aggregates stay exact)."""
        return self.count > len(self._raw)

    def values(self) -> List[float]:
        """Retained raw observations (all of them unless ``truncated``)."""
        return list(self._raw)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the *retained* raw sample."""
        if not self._raw:
            raise ValueError("percentile of an empty histogram")
        ordered = sorted(self._raw)
        rank = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        room = RAW_SAMPLE_CAP - len(self._raw)
        if room > 0:
            self._raw.extend(other._raw[:room])
        for bucket, n in other._buckets.items():
            self._buckets[bucket] = self._buckets.get(bucket, 0) + n

    def summary(self) -> Dict[str, Any]:
        if self.count == 0:
            return {"count": 0}
        out: Dict[str, Any] = {
            "count": self.count,
            "sum": round(self.total, 9),
            "mean": round(self.mean, 9),
            "min": self.minimum,
            "max": self.maximum,
        }
        if self._raw:
            out["p50"] = self.percentile(0.50)
            out["p90"] = self.percentile(0.90)
            out["p99"] = self.percentile(0.99)
        if self.truncated:
            out["truncated"] = True
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram(count={self.count})"


def _bucket_of(value: float) -> int:
    """Power-of-two magnitude bucket index; 0 holds [0, 1), negatives
    and non-finite values get sentinel buckets."""
    if value != value or value in (math.inf, -math.inf):
        return -(10 ** 6)
    if value < 0:
        return -1 - _bucket_of(-value)
    if value < 1.0:
        return 0
    return 1 + int(math.log2(value))


class Metrics:
    """The registry: flat ``inc``/``observe``/``set_gauge`` interface.

    Names are dotted strings, conventionally ``<layer>.<metric>``
    (``sim.events_fired``, ``net.rpc_latency_s``, ``sweep.cache_hits``).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, float] = {}

    # -- recording -------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge for deltas")
        self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = float(value)

    # -- reading ---------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def histogram(self, name: str) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        return hist

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    def names(self) -> Iterator[Tuple[str, str]]:
        """All registered ``(kind, name)`` pairs, sorted."""
        for name in sorted(self._counters):
            yield "counter", name
        for name in sorted(self._gauges):
            yield "gauge", name
        for name in sorted(self._histograms):
            yield "histogram", name

    def merge(self, other: "Metrics") -> None:
        """Fold another registry into this one (sweep fan-in)."""
        for name, amount in other._counters.items():
            self._counters[name] = self._counters.get(name, 0) + amount
        for name, value in other._gauges.items():
            self._gauges[name] = value
        for name, hist in other._histograms.items():
            self.histogram(name).merge(hist)

    def snapshot(self) -> Dict[str, Any]:
        """A sorted, JSON-able dump of everything recorded."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].summary()
                for k in sorted(self._histograms)
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Metrics(counters={len(self._counters)},"
            f" histograms={len(self._histograms)},"
            f" gauges={len(self._gauges)})"
        )
