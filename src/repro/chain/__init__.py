"""Blockchain substrate: proof-of-work chain with names and contracts.

Built from scratch for the naming (§3.1) and storage (§3.3) experiments:
transactions and blocks, a ledger state machine (balances, names,
contracts), per-node chain views with heaviest-chain fork choice, a mining
network with Poisson miners and propagation delay, and 51%-attack tooling.
"""

from repro.chain.attacks import (
    AttackOutcome,
    MajorityAttack,
    catch_up_probability,
    double_spend_success_probability,
    selfish_mining_revenue,
)
from repro.chain.block import GENESIS_PARENT, Block, make_block, make_genesis
from repro.chain.chainstate import ChainState
from repro.chain.consensus import ConsensusParams, required_difficulty
from repro.chain.ledger import (
    ContractEntry,
    LedgerRules,
    LedgerState,
    NameEntry,
    apply_transaction,
)
from repro.chain.mempool import Mempool
from repro.chain.network import BlockchainNetwork, Participant
from repro.chain.transaction import (
    COINBASE_SENDER,
    Transaction,
    TxKind,
    make_coinbase,
    make_transaction,
)

__all__ = [
    "Block",
    "GENESIS_PARENT",
    "make_block",
    "make_genesis",
    "ChainState",
    "ConsensusParams",
    "required_difficulty",
    "LedgerState",
    "LedgerRules",
    "NameEntry",
    "ContractEntry",
    "apply_transaction",
    "Mempool",
    "BlockchainNetwork",
    "Participant",
    "Transaction",
    "TxKind",
    "make_transaction",
    "make_coinbase",
    "COINBASE_SENDER",
    "MajorityAttack",
    "AttackOutcome",
    "catch_up_probability",
    "double_spend_success_probability",
    "selfish_mining_revenue",
]
