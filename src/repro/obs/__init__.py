"""Observability: zero-cost-when-disabled tracing and metrics.

The paper's feasibility argument (§4, §5.2) is quantitative — whether
device-grade infrastructure can stand in for datacenters depends on
per-message drops, RPC latency under churn, and queue behavior, none of
which terminal summaries expose.  This package makes every layer of the
library observable without slowing the uninstrumented hot paths:

* :class:`Tracer` — append-only deterministic JSONL spans (engine
  events, process lifecycle, message legs, RPC attempts, sweep tasks).
* :class:`Metrics` — named counters, bounded-memory histograms, and
  gauges shared across engine, transport, and the sweep runner.
* :func:`observe` — context manager making a tracer/metrics pair
  ambient, picked up by ``Simulator``/``Network``/``SweepRunner``
  constructors inside the block.
* :mod:`repro.obs.reporters` — human and JSON reports plus the JSONL
  trace-schema validator CI runs.

See ``docs/OBSERVABILITY.md`` for the full API and schema reference.
"""

from repro.obs.metrics import Histogram, Metrics
from repro.obs.reporters import (
    render_report_human,
    render_report_json,
    validate_trace_file,
    validate_trace_line,
)
from repro.obs.runtime import Observation, active, observe
from repro.obs.tracer import TRACE_SCHEMA_VERSION, Tracer

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Histogram",
    "Metrics",
    "Observation",
    "Tracer",
    "active",
    "observe",
    "render_report_human",
    "render_report_json",
    "validate_trace_file",
    "validate_trace_line",
]
