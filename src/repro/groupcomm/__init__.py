"""Group communication (§3.2): centralized, federated (single-home,
replicated, and trust-gated partial), and socially-aware P2P models, plus
privacy auditing, moderation policies, and double-ratchet-style session
encryption."""

from repro.groupcomm.centralized import CentralizedPlatform
from repro.groupcomm.encryption import Ciphertext, RatchetSession, SessionCompromise
from repro.groupcomm.federated import (
    FederationBase,
    ReplicatedFederation,
    SingleHomeFederation,
)
from repro.groupcomm.messages import Audience, Message, Room
from repro.groupcomm.partial import (
    ConflictRecord,
    ConflictStrategy,
    FederationHub,
    FederationPeer,
    FederationPolicy,
    LastWriterWins,
    ManualQueue,
    PartialFederation,
    PartialReplicaStore,
    TrustWeighted,
    make_strategy,
)
from repro.groupcomm.moderation import (
    KeywordPolicy,
    ModerationOutcome,
    ModerationPolicy,
    NoModeration,
    PerInstancePolicy,
    ReputationPolicy,
    evaluate_policies,
)
from repro.groupcomm.privacy import (
    ExposureReport,
    audit_centralized,
    audit_replicated_federation,
    audit_social_p2p,
    exposure_score,
)
from repro.groupcomm.repudiation import (
    OtrConversation,
    OtrMessage,
    SignedConversation,
)
from repro.groupcomm.social_p2p import SocialP2PNetwork

__all__ = [
    "Message",
    "Audience",
    "Room",
    "CentralizedPlatform",
    "SingleHomeFederation",
    "ReplicatedFederation",
    "FederationBase",
    "PartialFederation",
    "FederationHub",
    "FederationPeer",
    "FederationPolicy",
    "PartialReplicaStore",
    "ConflictRecord",
    "ConflictStrategy",
    "LastWriterWins",
    "TrustWeighted",
    "ManualQueue",
    "make_strategy",
    "SocialP2PNetwork",
    "OtrConversation",
    "OtrMessage",
    "SignedConversation",
    "RatchetSession",
    "Ciphertext",
    "SessionCompromise",
    "ExposureReport",
    "audit_centralized",
    "audit_replicated_federation",
    "audit_social_p2p",
    "exposure_score",
    "ModerationPolicy",
    "NoModeration",
    "KeywordPolicy",
    "ReputationPolicy",
    "PerInstancePolicy",
    "ModerationOutcome",
    "evaluate_policies",
]
