"""Cache correctness for the sweep runner.

Covers: config-hash stability across dict key order, invalidation on
parameter and code change, ``--no-cache`` bypass, corrupted-cache-file
recovery, and the uncacheable-result path.
"""

import json

import pytest

import repro.analysis.runner as runner_module
from repro.analysis import (
    SweepCache,
    SweepRunner,
    canonical_config_hash,
)
from repro.__main__ import main


def _double(x: int = 0):
    """Top-level, picklable, and cheap — the cache tests' experiment."""
    return {"x": x, "doubled": 2 * x}


def _opaque(x: int = 0):
    """Returns something JSON can't round-trip (a set)."""
    return {"x", x}


class TestConfigHashing:
    def test_hash_independent_of_key_order(self):
        forward = {"alpha": 1, "beta": [2, 3], "gamma": {"a": 1, "b": 2}}
        backward = {"gamma": {"b": 2, "a": 1}, "beta": [2, 3], "alpha": 1}
        assert canonical_config_hash(forward) == canonical_config_hash(backward)

    def test_hash_sensitive_to_values(self):
        assert (
            canonical_config_hash({"a": 1})
            != canonical_config_hash({"a": 2})
        )
        assert (
            canonical_config_hash({"a": 1})
            != canonical_config_hash({"b": 1})
        )


class TestCacheHitsAndInvalidation:
    def test_same_config_hits_changed_config_misses(self, tmp_path):
        first = SweepRunner(cache=SweepCache(tmp_path))
        first.run("double", _double, [{"x": 1}, {"x": 2}])
        assert first.stats.misses == 2

        second = SweepRunner(cache=SweepCache(tmp_path))
        results = second.run("double", _double, [{"x": 1}, {"x": 3}])
        assert results == [{"x": 1, "doubled": 2}, {"x": 3, "doubled": 6}]
        assert second.stats.hits == 1  # x=1 replayed
        assert second.stats.misses == 1  # x=3 is a new parameter point

    def test_key_order_of_config_does_not_defeat_cache(self, tmp_path):
        SweepRunner(cache=SweepCache(tmp_path)).run(
            "double", _double, [{"x": 1}]
        )
        replayer = SweepRunner(cache=SweepCache(tmp_path))
        replayer.run("double", _double, [dict([("x", 1)])])
        assert replayer.stats.hits == 1

    def test_code_version_change_invalidates(self, tmp_path, monkeypatch):
        monkeypatch.setattr(runner_module, "code_version", lambda fn: "v1")
        SweepRunner(cache=SweepCache(tmp_path)).run(
            "double", _double, [{"x": 1}]
        )
        monkeypatch.setattr(runner_module, "code_version", lambda fn: "v2")
        fresh = SweepRunner(cache=SweepCache(tmp_path))
        fresh.run("double", _double, [{"x": 1}])
        assert fresh.stats.hits == 0
        assert fresh.stats.misses == 1
        # Old-version entry still present alongside the new one.
        payload = json.loads(
            SweepCache(tmp_path).path_for("double").read_text()
        )
        versions = {key.split(":")[0] for key in payload["entries"]}
        assert versions == {"v1", "v2"}

    def test_experiments_do_not_share_entries(self, tmp_path):
        SweepRunner(cache=SweepCache(tmp_path)).run(
            "double-a", _double, [{"x": 1}]
        )
        other = SweepRunner(cache=SweepCache(tmp_path))
        other.run("double-b", _double, [{"x": 1}])
        assert other.stats.misses == 1


class TestNoCacheBypass:
    def test_runner_without_cache_always_recomputes(self, tmp_path):
        for _ in range(2):
            runner = SweepRunner(cache=None)
            runner.run("double", _double, [{"x": 1}])
            assert runner.stats.hits == 0
            assert runner.stats.misses == 1
        assert list(tmp_path.iterdir()) == []  # nothing ever written

    def test_cli_no_cache_flag(self, tmp_path, capsys):
        assert main([
            "sweep", "E4", "--no-cache", "--cache-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "cache_misses" in out
        assert list(tmp_path.iterdir()) == []


class TestCorruptedCacheRecovery:
    @pytest.mark.parametrize("garbage", [
        b"{not json at all",
        b'{"schema": 999, "entries": "wrong shape"}',
        b'["a", "list", "payload"]',
        b"",
    ], ids=["truncated", "bad-schema", "wrong-type", "empty"])
    def test_corrupt_file_is_a_miss_not_a_crash(self, tmp_path, garbage):
        cache = SweepCache(tmp_path)
        SweepRunner(cache=cache).run("double", _double, [{"x": 5}])
        path = cache.path_for("double")
        path.write_bytes(garbage)

        recovering = SweepCache(tmp_path)
        runner = SweepRunner(cache=recovering)
        results = runner.run("double", _double, [{"x": 5}])
        assert results == [{"x": 5, "doubled": 10}]
        assert runner.stats.misses == 1  # corrupt entry not trusted
        assert recovering.corrupt_files >= 1

        # ...and the store after recovery rewrote a valid file.
        healed = SweepCache(tmp_path)
        replay = SweepRunner(cache=healed)
        assert replay.run("double", _double, [{"x": 5}]) == results
        assert replay.stats.hits == 1


class TestUncacheableResults:
    def test_non_json_result_is_returned_but_not_stored(self, tmp_path):
        runner = SweepRunner(cache=SweepCache(tmp_path))
        results = runner.run("opaque", _opaque, [{"x": 1}])
        assert results == [{"x", 1}]
        assert runner.stats.uncacheable == 1
        rerun = SweepRunner(cache=SweepCache(tmp_path))
        assert rerun.run("opaque", _opaque, [{"x": 1}]) == results
        assert rerun.stats.hits == 0  # never memoized


class TestSerialFallback:
    def test_unpicklable_fn_falls_back_to_inline(self):
        runner = SweepRunner(workers=4)
        results = runner.run(
            "lambda", lambda x: x + 1, [{"x": 1}, {"x": 2}]
        )
        assert results == [2, 3]
        assert runner.stats.serial_fallbacks == 1
