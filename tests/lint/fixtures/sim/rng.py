"""DET001 negative fixture: this path ends in sim/rng.py, the one module
allowed to import stdlib random."""

import random


def make(seed: int) -> random.Random:
    return random.Random(seed)
