"""Shared lint-test setup: keep the incremental cache out of the repo.

``python -m repro lint`` caches by default; without this fixture every
CLI test would drop a ``.repro_lint_cache`` directory into whatever cwd
pytest runs from.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_lint_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LINT_CACHE_DIR", str(tmp_path / "lint-cache"))
