"""The storage marketplace: matching, deals, audits, and payments.

The incentive loop of §3.3: consumers pay providers for storing and
serving data; each epoch, the marketplace audits every active deal with
the deal's proof system and releases payment only on a pass.  Failures
slash the deal (remaining escrow refunds to the consumer), so the
economics of cheating — the E7 experiment — fall out of the audit
soundness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.crypto.hashing import hash_obj
from repro.errors import ContractError, StorageError
from repro.net.transport import Network
from repro.sim.monitor import Monitor
from repro.sim.rng import RngStreams
from repro.storage.blob import DataBlob
from repro.storage.contracts import DealState, DirectLedger, StorageDeal
from repro.storage.proofs import Commitment, StorageVerifier
from repro.storage.provider import StorageProvider

__all__ = ["ProofKind", "StorageMarketplace"]


class ProofKind:
    """Audit mechanisms, one per Table 2 incentive family."""

    STORAGE = "proof_of_storage"
    RETRIEVABILITY = "proof_of_retrievability"
    REPLICATION = "proof_of_replication"
    SPACETIME = "proof_of_spacetime"
    NONE = "none"  # altruistic/tit-for-tat systems (IPFS Bitswap)

    ALL = (STORAGE, RETRIEVABILITY, REPLICATION, SPACETIME, NONE)


class StorageMarketplace:
    """Provider registry + deal lifecycle driver."""

    def __init__(
        self,
        network: Network,
        streams: RngStreams,
        ledger: Optional[DirectLedger] = None,
        client_id: str = "market-client",
        response_deadline: float = 0.5,
    ):
        self.network = network
        self.ledger = ledger if ledger is not None else DirectLedger()
        self.verifier = StorageVerifier(
            network, client_id, streams, response_deadline=response_deadline
        )
        self.monitor = Monitor()
        self._providers: Dict[str, StorageProvider] = {}
        self._deals: Dict[str, StorageDeal] = {}
        self._rng = streams.stream("storage.marketplace")

    # -- registry ------------------------------------------------------------

    def register_provider(self, provider: StorageProvider) -> None:
        if provider.node_id in self._providers:
            raise StorageError(f"provider {provider.node_id!r} already registered")
        self._providers[provider.node_id] = provider

    def providers(self) -> List[StorageProvider]:
        return list(self._providers.values())

    def provider(self, provider_id: str) -> StorageProvider:
        provider = self._providers.get(provider_id)
        if provider is None:
            raise StorageError(f"unknown provider {provider_id!r}")
        return provider

    def deals(self) -> List[StorageDeal]:
        return list(self._deals.values())

    def deal(self, deal_id: str) -> StorageDeal:
        deal = self._deals.get(deal_id)
        if deal is None:
            raise ContractError(f"unknown deal {deal_id!r}")
        return deal

    # -- matching and placement -------------------------------------------------

    def cheapest_providers(self, size_bytes: float, count: int) -> List[StorageProvider]:
        """Price-ascending providers with capacity (ties by id: stable)."""
        candidates = sorted(
            (
                p for p in self._providers.values()
                if p.has_capacity_for(size_bytes) and p.node.online
            ),
            key=lambda p: (p.price_per_gb_epoch, p.node_id),
        )
        if len(candidates) < count:
            raise StorageError(
                f"only {len(candidates)} providers can take {size_bytes}B,"
                f" need {count}"
            )
        return candidates[:count]

    def upload_blob(self, consumer: str, provider_id: str, blob: DataBlob) -> Generator:
        """Ship all chunks to a provider over the network (bytes paid)."""
        entries = [
            (index, chunk, blob.proof_for(index))
            for index, chunk in enumerate(blob.chunks)
        ]
        ok = yield from self.network.rpc(
            consumer,
            provider_id,
            "store.put",
            {
                "commitment_id": blob.merkle_root,
                "chunk_count": len(blob.chunks),
                "entries": entries,
            },
            size_bytes=blob.size_bytes,
            timeout=300.0,
        )
        if not ok:
            raise StorageError(f"upload to {provider_id!r} rejected")
        return blob.merkle_root

    def make_deal(
        self,
        consumer: str,
        blob: DataBlob,
        epochs: int,
        proof_kind: str = ProofKind.STORAGE,
        provider_id: Optional[str] = None,
        price_per_epoch: Optional[float] = None,
    ) -> Generator:
        """Match, upload, escrow: returns the active :class:`StorageDeal`.

        ``price_per_epoch`` overrides the provider's per-GB pricing (used
        by experiments on tiny blobs where metered pricing rounds away).
        """
        if proof_kind not in ProofKind.ALL:
            raise ContractError(f"unknown proof kind {proof_kind!r}")
        if epochs < 1:
            raise ContractError(f"epochs must be >= 1: {epochs}")
        provider = (
            self.provider(provider_id)
            if provider_id is not None
            else self.cheapest_providers(blob.size_bytes, 1)[0]
        )
        yield from self.upload_blob(consumer, provider.node_id, blob)
        if price_per_epoch is None:
            price_per_epoch = (
                provider.price_per_gb_epoch * blob.size_bytes / 1e9
            )
        deal = StorageDeal(
            deal_id=hash_obj(
                {"c": consumer, "p": provider.node_id, "r": blob.merkle_root,
                 "n": len(self._deals)}
            )[:16],
            consumer=consumer,
            provider_id=provider.node_id,
            commitment=Commitment(blob.merkle_root, len(blob.chunks)),
            size_bytes=blob.size_bytes,
            price_per_epoch=price_per_epoch,
            epochs_total=epochs,
            proof_kind=proof_kind,
        )
        yield from self.ledger.open_escrow(
            deal.deal_id, consumer, deal.total_price, provider=provider.node_id
        )
        self._deals[deal.deal_id] = deal
        self.monitor.counters.increment("deals_opened")
        return deal

    def register_external_deal(self, deal: StorageDeal) -> Generator:
        """Admit a deal whose data placement happened out of band (e.g. a
        sealed-replica deal where the provider claims storage it does not
        honestly hold — attack experiments build these)."""
        if deal.deal_id in self._deals:
            raise ContractError(f"deal {deal.deal_id!r} already registered")
        yield from self.ledger.open_escrow(
            deal.deal_id, deal.consumer, deal.total_price,
            provider=deal.provider_id,
        )
        self._deals[deal.deal_id] = deal
        self.monitor.counters.increment("deals_opened")
        return deal

    # -- the audit/payment epoch loop ----------------------------------------------

    def audit_deal(self, deal: StorageDeal) -> Generator:
        """One epoch's audit for one deal; returns True on pass."""
        if deal.proof_kind == ProofKind.NONE:
            return True
        if deal.proof_kind == ProofKind.STORAGE:
            report = yield from self.verifier.proof_of_storage(
                deal.provider_id, deal.commitment, rounds=1
            )
            return report.passed
        if deal.proof_kind == ProofKind.RETRIEVABILITY:
            report = yield from self.verifier.proof_of_retrievability(
                deal.provider_id, deal.commitment, sample_size=4
            )
            return report.passed
        if deal.proof_kind in (ProofKind.REPLICATION, ProofKind.SPACETIME):
            reports = yield from self.verifier.proof_of_replication(
                deal.provider_id, [deal.commitment]
            )
            return all(r.passed for r in reports.values())
        raise ContractError(f"unhandled proof kind {deal.proof_kind!r}")

    def run_epoch(self) -> Generator:
        """Audit every active deal once, paying or slashing.

        Returns ``{deal_id: passed}`` for the epoch.
        """
        results: Dict[str, bool] = {}
        for deal in list(self._deals.values()):
            if deal.state != DealState.ACTIVE:
                continue
            passed = yield from self.audit_deal(deal)
            results[deal.deal_id] = passed
            if passed:
                self.ledger.pay_from_escrow(
                    deal.deal_id, deal.provider_id, deal.price_per_epoch
                )
                deal.epochs_paid += 1
                self.monitor.counters.increment("epochs_paid")
                if deal.epochs_paid >= deal.epochs_total:
                    deal.state = DealState.COMPLETED
                    self.monitor.counters.increment("deals_completed")
            else:
                deal.epochs_failed += 1
                deal.state = DealState.FAILED
                refunded = self.ledger.refund_escrow(deal.deal_id, deal.consumer)
                self.monitor.samples.record("slash_refunds", refunded)
                self.monitor.counters.increment("deals_slashed")
        return results

    # -- measurement ------------------------------------------------------------------

    def provider_earnings(self, provider_id: str) -> float:
        return self.ledger.balance(provider_id)
