"""Framework behavior: fixtures, suppression, selection, ordering."""

from pathlib import Path

import pytest

from repro.lint import lint_file, lint_paths, lint_source, resolve_rules
from repro.lint.engine import LintError

FIXTURES = Path(__file__).parent / "fixtures"

# What the linter must find in each fixture file (one per rule).
EXPECTED_FIXTURE_RULES = {
    "det001_random_import.py": {"DET001"},
    "sim/wall_clock.py": {"DET002"},
    "det003_numpy_global.py": {"DET003"},
    "det004_ungoverned_generator.py": {"DET004"},
    "det005_stream_collision.py": {"DET005"},
    "sim/ord001_set_iteration.py": {"ORD001"},
    "par001_lambda_to_pool.py": {"PAR001"},
    "err001_broad_except.py": {"ERR001"},
    "api001_all_mismatch.py": {"API001"},
    "bench/ben001_timed_body.py": {"BEN001"},
    "flt001_direct_mutation.py": {"FLT001"},
    "shd001_cross_shard_mutation.py": {"SHD001"},
}

# Multi-file fixtures: each file is clean in isolation — the violation
# only exists in the whole-program view (see test_project_rules.py).
CLEAN_IN_ISOLATION = (
    "helpers_clock.py",
    "sim/det006_transitive.py",
    "cycle_a.py",
    "cycle_b.py",
)


class TestFixtures:
    @pytest.mark.parametrize(
        "relpath,expected", sorted(EXPECTED_FIXTURE_RULES.items())
    )
    def test_each_fixture_trips_exactly_its_rule(self, relpath, expected):
        findings = lint_file(str(FIXTURES / relpath))
        assert {f.rule_id for f in findings} == expected

    def test_clean_fixture_has_no_findings(self):
        assert lint_file(str(FIXTURES / "clean.py")) == []

    def test_rng_location_fixture_is_exempt_from_det001(self):
        assert lint_file(str(FIXTURES / "sim" / "rng.py")) == []

    @pytest.mark.parametrize("relpath", CLEAN_IN_ISOLATION)
    def test_project_fixtures_are_clean_per_file(self, relpath):
        assert lint_file(str(FIXTURES / relpath)) == []

    def test_directory_walk_finds_every_fixture_violation(self):
        findings = lint_paths([str(FIXTURES)])
        found_rules = {f.rule_id for f in findings}
        assert found_rules == {
            "DET001", "DET002", "DET003", "DET004", "DET005", "DET006",
            "ORD001", "IMP001", "PAR001", "ERR001", "API001", "FLT001",
            "BEN001", "SHD001",
        }

    def test_findings_sorted_by_path_then_line(self):
        findings = lint_paths([str(FIXTURES)])
        keys = [f.sort_key() for f in findings]
        assert keys == sorted(keys)

    def test_overlapping_paths_report_each_finding_once(self):
        once = lint_paths([str(FIXTURES)])
        twice = lint_paths([str(FIXTURES), str(FIXTURES / "sim"),
                            str(FIXTURES / "det001_random_import.py")])
        assert twice == once


class TestSuppression:
    def test_named_noqa_suppresses_that_rule(self):
        src = "import random  # repro: noqa[DET001]\n"
        assert lint_source(src) == []

    def test_named_noqa_does_not_suppress_other_rules(self):
        src = "import random  # repro: noqa[ERR001]\n"
        assert [f.rule_id for f in lint_source(src)] == ["DET001"]

    def test_bare_noqa_suppresses_everything_on_the_line(self):
        src = "import random  # repro: noqa\n"
        assert lint_source(src) == []

    def test_comma_list(self):
        src = "import random  # repro: noqa[ERR001, DET001]\n"
        assert lint_source(src) == []

    def test_noqa_on_other_line_does_not_suppress(self):
        src = "# repro: noqa[DET001]\nimport random\n"
        assert [f.rule_id for f in lint_source(src)] == ["DET001"]

    def test_suppressed_fixture_is_clean(self):
        assert lint_file(str(FIXTURES / "suppressed.py")) == []

    def test_marker_inside_string_literal_does_not_suppress(self):
        # The marker text is data, not a comment: tokenize-based
        # suppression must not treat it as a noqa directive.
        src = 'import random; MSG = "use # repro: noqa sparingly"\n'
        assert [f.rule_id for f in lint_source(src)] == ["DET001"]

    def test_real_comment_after_marker_like_string_still_suppresses(self):
        src = 'import random; M = "# repro: noqa[X]"  # repro: noqa[DET001]\n'
        assert lint_source(src) == []


class TestSelection:
    def test_rule_subset_runs_only_those_rules(self):
        rules = resolve_rules(["DET001"])
        src = "import random\n__all__ = ['phantom']\n"
        findings = lint_source(src, rules=rules)
        assert [f.rule_id for f in findings] == ["DET001"]

    def test_selection_is_case_insensitive(self):
        assert [r.rule_id for r in resolve_rules(["det001"])] == ["DET001"]

    def test_unknown_rule_rejected(self):
        with pytest.raises(LintError):
            resolve_rules(["NOPE999"])

    def test_unreadable_path_rejected(self):
        with pytest.raises(LintError):
            lint_paths([str(FIXTURES / "does_not_exist.py")])


class TestSyntaxErrors:
    def test_unparseable_source_reports_syntax_finding(self):
        findings = lint_source("def broken(:\n", path="broken.py")
        assert [f.rule_id for f in findings] == ["SYNTAX"]
        assert findings[0].path == "broken.py"
