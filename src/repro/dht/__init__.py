"""Kademlia DHT substrate: node ids, k-bucket routing, iterative lookups."""

from repro.dht.kademlia import DhtConfig, KademliaNode, build_overlay
from repro.dht.nodeid import (
    ID_BITS,
    bucket_index,
    key_for,
    node_id_for,
    xor_distance,
)
from repro.dht.routing import Contact, RoutingTable

__all__ = [
    "DhtConfig",
    "KademliaNode",
    "build_overlay",
    "Contact",
    "RoutingTable",
    "ID_BITS",
    "node_id_for",
    "key_for",
    "xor_distance",
    "bucket_index",
]
