"""Transactions for the simulated blockchain.

A transaction is a signed, replay-protected operation against the ledger
state machine.  The ``kind`` field selects the state-transition rule (see
:mod:`repro.chain.ledger`); ``payload`` carries rule-specific fields.  This
one transaction type serves every blockchain use the paper surveys:
payments, name operations (Namecoin/Blockstack-style, §3.1), and storage
contracts (Sia/Filecoin-style, §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.crypto.hashing import hash_obj
from repro.crypto.keys import KeyPair, Signature, verify
from repro.errors import InvalidTransactionError

__all__ = ["Transaction", "make_transaction", "make_coinbase", "COINBASE_SENDER", "TxKind"]

COINBASE_SENDER = "COINBASE"


class TxKind:
    """Transaction kinds understood by the ledger state machine."""

    COINBASE = "coinbase"
    PAY = "pay"
    NAME_REGISTER = "name_register"
    NAME_UPDATE = "name_update"
    NAME_TRANSFER = "name_transfer"
    NAME_RENEW = "name_renew"
    CONTRACT_OPEN = "contract_open"
    CONTRACT_CLOSE = "contract_close"
    DATA_ANCHOR = "data_anchor"

    ALL = (
        COINBASE,
        PAY,
        NAME_REGISTER,
        NAME_UPDATE,
        NAME_TRANSFER,
        NAME_RENEW,
        CONTRACT_OPEN,
        CONTRACT_CLOSE,
        DATA_ANCHOR,
    )


@dataclass(frozen=True)
class Transaction:
    """An immutable, signed ledger operation.

    ``nonce`` is a per-sender sequence number; the ledger rejects reuse,
    which is what makes replaying an old transaction impossible.
    """

    sender: str
    kind: str
    payload: Dict[str, Any]
    fee: float
    nonce: int
    signature: Optional[Signature] = field(default=None, compare=False)

    def body(self) -> Dict[str, Any]:
        """The signed portion (everything except the signature)."""
        return {
            "sender": self.sender,
            "kind": self.kind,
            "payload": self.payload,
            "fee": self.fee,
            "nonce": self.nonce,
        }

    @property
    def txid(self) -> str:
        return hash_obj(self.body())

    @property
    def is_coinbase(self) -> bool:
        return self.kind == TxKind.COINBASE

    def validate_shape(self) -> None:
        """Structural validation: kind known, fee sane, signature present
        and covering the body (coinbase excepted)."""
        if self.kind not in TxKind.ALL:
            raise InvalidTransactionError(f"unknown tx kind {self.kind!r}")
        if self.fee < 0:
            raise InvalidTransactionError(f"negative fee {self.fee}")
        if self.is_coinbase:
            if self.sender != COINBASE_SENDER:
                raise InvalidTransactionError(
                    "coinbase transactions must use the COINBASE sender"
                )
            return
        if self.signature is None:
            raise InvalidTransactionError(f"tx {self.txid[:12]} is unsigned")
        if self.signature.public_key != self.sender:
            raise InvalidTransactionError(
                "signature key does not match tx sender"
            )
        if not verify(self.signature, self.body()):
            raise InvalidTransactionError(
                f"bad signature on tx {self.txid[:12]}"
            )


def make_transaction(
    keypair: KeyPair,
    kind: str,
    payload: Dict[str, Any],
    nonce: int,
    fee: float = 0.0,
) -> Transaction:
    """Build and sign a transaction in one step."""
    unsigned = Transaction(
        sender=keypair.public_key,
        kind=kind,
        payload=dict(payload),
        fee=fee,
        nonce=nonce,
    )
    signature = keypair.sign(unsigned.body())
    return Transaction(
        sender=unsigned.sender,
        kind=unsigned.kind,
        payload=unsigned.payload,
        fee=unsigned.fee,
        nonce=unsigned.nonce,
        signature=signature,
    )


def make_coinbase(miner_pubkey: str, reward: float, height: int) -> Transaction:
    """The block-subsidy transaction crediting the miner.

    ``height`` rides in the payload so each block's coinbase is unique.
    """
    return Transaction(
        sender=COINBASE_SENDER,
        kind=TxKind.COINBASE,
        payload={"to": miner_pubkey, "reward": reward, "height": height},
        fee=0.0,
        nonce=height,
    )
