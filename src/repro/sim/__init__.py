"""Discrete-event simulation substrate.

Public surface:

* :class:`Simulator` — the event loop; spawn generator processes on it.
* :class:`Process`, :class:`Signal`, :class:`Timeout`, :class:`AllOf`,
  :class:`AnyOf`, :class:`Interrupt` — process combinators.
* :class:`RngStreams` — named deterministic randomness.
* :class:`Monitor`, :class:`Counter`, :class:`Sampler`,
  :class:`TimeWeightedGauge` — measurement.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Interrupt,
    Process,
    Signal,
    Simulator,
    Timeout,
)
from repro.sim.monitor import Counter, Monitor, Sampler, TimeWeightedGauge, summarize
from repro.sim.rng import RngStreams, derive_seed, seeded_rng

__all__ = [
    "Simulator",
    "Process",
    "Signal",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "RngStreams",
    "derive_seed",
    "seeded_rng",
    "Counter",
    "Sampler",
    "Monitor",
    "TimeWeightedGauge",
    "summarize",
]
