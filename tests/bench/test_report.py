"""Report building, rendering, and schema validation."""

import json

from repro.bench.harness import BenchResult
from repro.bench.report import (
    BENCH_SCHEMA_VERSION,
    build_report,
    render_bench_human,
    render_bench_json,
    validate_bench_report,
)


def _result(name="micro.x", **overrides):
    base = dict(name=name, suite="micro", repetitions=2,
                best_s=0.001, mean_s=0.0015,
                work={"sim.events_fired": 10}, deterministic=True)
    base.update(overrides)
    return BenchResult(**base)


def _report(*results):
    return build_report(results or [_result()], "micro", 2)


class TestBuildAndRender:
    def test_round_trip_is_valid(self):
        report = _report()
        assert report["schema"] == BENCH_SCHEMA_VERSION
        assert validate_bench_report(report) == []
        parsed = json.loads(render_bench_json(report))
        assert validate_bench_report(parsed) == []
        assert parsed == report

    def test_json_rendering_is_key_sorted(self):
        text = render_bench_json(_report())
        assert text == json.dumps(json.loads(text), indent=1, sort_keys=True)

    def test_human_rendering_lists_benchmarks(self):
        text = render_bench_human(_report())
        assert "suite=micro" in text
        assert "micro.x" in text
        assert "NONDETERMINISTIC" not in text

    def test_human_rendering_flags_nondeterminism(self):
        text = render_bench_human(_report(_result(deterministic=False)))
        assert "NONDETERMINISTIC" in text


class TestValidation:
    def test_non_object_rejected(self):
        assert validate_bench_report([]) != []
        assert validate_bench_report("nope") != []

    def test_missing_top_level_keys(self):
        errors = validate_bench_report({"schema": BENCH_SCHEMA_VERSION})
        assert any("suite" in e for e in errors)
        assert any("benchmarks" in e for e in errors)

    def test_wrong_schema_version(self):
        report = _report()
        report["schema"] = 99
        assert any("schema" in e for e in validate_bench_report(report))

    def test_missing_bench_keys(self):
        report = _report()
        del report["benchmarks"][0]["work"]
        assert any("work" in e for e in validate_bench_report(report))

    def test_duplicate_names_rejected(self):
        report = build_report([_result(), _result()], "micro", 2)
        assert any("duplicate" in e for e in validate_bench_report(report))

    def test_work_values_must_be_true_ints(self):
        report = _report(_result(work={"c": 1.5}))
        assert any("work" in e for e in validate_bench_report(report))
        report = _report(_result(work={"c": True}))
        assert any("work" in e for e in validate_bench_report(report))

    def test_negative_wall_clock_rejected(self):
        report = _report()
        report["benchmarks"][0]["best_s"] = -0.1
        assert any("best_s" in e for e in validate_bench_report(report))
