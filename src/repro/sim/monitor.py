"""Measurement helpers: counters, time-weighted gauges, and samplers.

Experiments record outcomes through these instead of ad-hoc lists so that
benches and tests can interrogate results uniformly.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["Counter", "Sampler", "TimeWeightedGauge", "Monitor", "summarize"]


@dataclass
class _Summary:
    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
        }


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile on a pre-sorted list."""
    if not sorted_values:
        raise ValueError("percentile of empty sample")
    rank = max(0, min(len(sorted_values) - 1, math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[rank]


def summarize(values: List[float]) -> _Summary:
    """Summary statistics (count/mean/stdev/min/max/p50/p90/p99)."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    ordered = sorted(values)
    n = len(ordered)
    # Float summation can drift the mean a few ULPs outside [min, max]
    # (e.g. three identical large values); clamp so the mathematical
    # invariant min <= mean <= max holds for downstream consumers.
    mean = min(max(sum(ordered) / n, ordered[0]), ordered[-1])
    var = sum((v - mean) ** 2 for v in ordered) / n
    return _Summary(
        count=n,
        mean=mean,
        stdev=math.sqrt(var),
        minimum=ordered[0],
        maximum=ordered[-1],
        p50=_percentile(ordered, 0.50),
        p90=_percentile(ordered, 0.90),
        p99=_percentile(ordered, 0.99),
    )


class Counter:
    """A monotonically increasing named counter."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = defaultdict(int)

    def increment(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Sampler for deltas")
        self._counts[name] += amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)


class Sampler:
    """Collects raw observations per metric name."""

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = defaultdict(list)

    def record(self, name: str, value: float) -> None:
        self._samples[name].append(float(value))

    def values(self, name: str) -> List[float]:
        return list(self._samples.get(name, []))

    def count(self, name: str) -> int:
        return len(self._samples.get(name, ()))

    def mean(self, name: str) -> float:
        values = self._samples.get(name)
        if not values:
            raise ValueError(f"no samples recorded for {name!r}")
        return sum(values) / len(values)

    def summary(self, name: str) -> _Summary:
        return summarize(self.values(name))

    def names(self) -> List[str]:
        return sorted(self._samples)


class TimeWeightedGauge:
    """Tracks a piecewise-constant quantity and integrates it over time.

    Used for, e.g., "average number of online replicas": call
    ``set(now, value)`` at every change and read ``time_average(now)``.
    """

    def __init__(self, initial: float = 0.0, start_time: float = 0.0):
        self._value = float(initial)
        self._last_change = float(start_time)
        self._area = 0.0
        self._start = float(start_time)

    @property
    def value(self) -> float:
        return self._value

    def set(self, now: float, value: float) -> None:
        if now < self._last_change:
            raise ValueError(
                f"gauge updated backwards in time: {now} < {self._last_change}"
            )
        self._area += self._value * (now - self._last_change)
        self._value = float(value)
        self._last_change = now

    def add(self, now: float, delta: float) -> None:
        self.set(now, self._value + delta)

    def time_average(self, now: float) -> float:
        """Average value over [start_time, now]."""
        elapsed = now - self._start
        if elapsed <= 0:
            return self._value
        area = self._area + self._value * (now - self._last_change)
        return area / elapsed


class Monitor:
    """Bundles a counter, a sampler, and named gauges for one experiment."""

    def __init__(self, start_time: float = 0.0):
        self.counters = Counter()
        self.samples = Sampler()
        self._gauges: Dict[str, TimeWeightedGauge] = {}
        self._start_time = start_time

    def gauge(self, name: str, initial: float = 0.0) -> TimeWeightedGauge:
        g = self._gauges.get(name)
        if g is None:
            g = TimeWeightedGauge(initial, self._start_time)
            self._gauges[name] = g
        return g

    def gauges(self) -> Dict[str, TimeWeightedGauge]:
        return dict(self._gauges)

    def report(self, now: Optional[float] = None) -> Dict[str, object]:
        """A flat dict snapshot suitable for printing or asserting on."""
        out: Dict[str, object] = {}
        for name, count in sorted(self.counters.as_dict().items()):
            out[f"count.{name}"] = count
        for name in self.samples.names():
            out[f"sample.{name}"] = self.samples.summary(name).as_dict()
        if now is not None:
            for name, g in sorted(self._gauges.items()):
                out[f"gauge.{name}"] = g.time_average(now)
        return out
