#!/usr/bin/env python3
"""The whole paper in one scenario: a community leaves its feudal lord.

Act I   — life on a centralized platform ends with a ban and a seizure.
Act II  — the community re-homes: identities on a blockchain, messaging on
          a replicated federation with E2E encryption, files on an audited
          storage marketplace, the community site on a visitor swarm.
Act III — the stress test: a server dies, a provider cheats, a 30%-hashrate
          attacker tries to steal the name.  The democratized stack holds.

Every number printed is measured from the simulation.

Run:  python examples/overthrow_simulation.py
"""

from repro.chain import (
    BlockchainNetwork,
    ConsensusParams,
    MajorityAttack,
    TxKind,
    make_transaction,
)
from repro.crypto import generate_keypair
from repro.groupcomm import (
    CentralizedPlatform,
    RatchetSession,
    ReplicatedFederation,
)
from repro.naming import BlockchainNameRegistry
from repro.net import ConstantLatency, Network
from repro.sim import RngStreams, Simulator
from repro.storage import ProofKind, StorageMarketplace, StorageProvider, make_random_blob
from repro.webapps import HostlessSite, SiteSwarm, Tracker

MEMBERS = ["ada", "bob", "cai", "dee"]
PARAMS = ConsensusParams(
    target_block_interval=10.0, retarget_interval=100, initial_difficulty=100.0
)


def act_one(sim, network):
    print("ACT I — the feudal platform")
    platform = CentralizedPlatform(network, server_id="bigcorp")
    for member in MEMBERS:
        network.create_node(member)
    platform.create_room("community", MEMBERS)

    def scenario():
        yield from platform.post("ada", "community", "organizing meetup")
        yield from platform.post("bob", "community", "count me in")
        platform.ban("ada")  # the operator's prerogative
        try:
            yield from platform.fetch("ada", "community")
            return False
        except Exception:
            return True

    locked_out = sim.run_process(scenario())
    spied = platform.surveil("community")
    print(f"  bigcorp read all {len(spied)} posts (content + metadata)")
    print(f"  bigcorp banned ada; her own posts are lost to her: {locked_out}")
    print()


def act_two(sim, streams, network):
    print("ACT II — the democratized stack")

    # Identities: a name each, on a blockchain no one controls.
    keys = {m: generate_keypair(f"overthrow-{m}") for m in MEMBERS}
    chain_net = BlockchainNetwork(
        sim, streams, params=PARAMS, propagation_delay=0.5,
        premine={kp.public_key: 50.0 for kp in keys.values()},
    )
    chain_net.add_participant("volunteer-1", hashrate=10.0)
    chain_net.add_participant("volunteer-2", hashrate=10.0)
    chain_net.start()
    registry = BlockchainNameRegistry(
        chain_net, chain_net.participant("volunteer-1"), confirmations=3
    )

    def register_all():
        latencies = []
        for member in MEMBERS:
            receipt = yield from registry.register(
                keys[member], f"{member}.community", {"pk": keys[member].public_key[:16]}
            )
            latencies.append(receipt.latency)
        return latencies

    latencies = sim.run_process(register_all(), until=sim.now + 50_000.0)
    print(f"  {len(MEMBERS)} names registered on-chain"
          f" (mean latency {sum(latencies)/len(latencies):.0f}s —"
          " the §3.1 performance price)")

    # Messaging: replicated federation, E2E encrypted.
    federation = ReplicatedFederation(
        network, ["coop-a", "coop-b"], streams, gossip_interval=2.0,
        allow_failover=True,
    )
    for i, member in enumerate(MEMBERS):
        federation.add_user(member, home=["coop-a", "coop-b"][i % 2])
    federation.create_room("community", MEMBERS)
    federation.start_replication()
    session = RatchetSession("community-room-secret")

    def repost():
        for member in ("ada", "bob"):
            ciphertext = session.encrypt(f"{member}: we made it")
            yield from federation.post(member, "community", ciphertext.sealed,
                                       encrypted=True)
        yield 30.0

    sim.run_process(repost(), until=sim.now + 10_000.0)
    exposure = federation.server_metadata_view("coop-a")
    readable = [e for e in exposure if "body" in e]
    print(f"  federation servers hold {len(exposure)} messages,"
          f" can read {len(readable)} (E2E: metadata only)")

    # Files: audited storage deals.
    market = StorageMarketplace(network, streams, response_deadline=0.3)
    market.register_provider(StorageProvider(network, "member-nas"))
    market.register_provider(StorageProvider(network, "cheater-nas"))
    market.ledger.credit("ada", 100.0)
    archive = make_random_blob(streams, 32 * 1024, chunk_size=1024, name="archive")

    def store_files():
        good = yield from market.make_deal(
            "ada", archive, epochs=5, proof_kind=ProofKind.RETRIEVABILITY,
            provider_id="member-nas", price_per_epoch=1.0,
        )
        bad = yield from market.make_deal(
            "ada", archive, epochs=5, proof_kind=ProofKind.RETRIEVABILITY,
            provider_id="cheater-nas", price_per_epoch=1.0,
        )
        market.provider("cheater-nas").drop_chunks(
            archive.merkle_root, 0.6, streams.stream("cheat")
        )
        for _ in range(5):
            yield from market.run_epoch()
        return good, bad

    good, bad = sim.run_process(store_files(), until=sim.now + 10_000.0)
    print(f"  storage: honest provider paid {good.epochs_paid}/5 epochs;"
          f" cheater slashed after {bad.epochs_paid}"
          f" (state={bad.state})")

    # The community site: hostless, visitor-seeded.
    swarm = SiteSwarm(network, Tracker(network, tracker_id="community-tracker"))
    site = HostlessSite("community-site")
    site.write_file("index.html", b"<h1>ours now</h1>")
    bundle = site.publish()

    def seed_site():
        yield from swarm.seed("bob", bundle)
        fetched = yield from swarm.visit("cai", bundle.manifest.site_address)
        yield from swarm.seed("cai", fetched)
        return fetched.verify()

    verified = sim.run_process(seed_site(), until=sim.now + 1000.0)
    print(f"  community site published at {bundle.manifest.site_address[:16]}..."
          f" (verified fetch: {verified})")
    print()
    return chain_net, registry, federation, keys, bundle, swarm


def act_three(sim, streams, network, chain_net, registry, federation, keys,
              bundle, swarm):
    print("ACT III — the stress test")

    # A federation server dies.
    network.node("coop-a").set_online(False, sim.now)

    def read_after_failure():
        messages = yield from federation.fetch("ada", "community")
        return len(messages)

    count = sim.run_process(read_after_failure(), until=sim.now + 1000.0)
    print(f"  coop-a died; ada (homed there) still reads {count} messages"
          " via failover")

    # A 30% attacker tries to steal ada's name.
    attacker = chain_net.add_participant("land-grabber", hashrate=8.6)  # ~30%
    attacker.start_mining()
    steal = make_transaction(
        attacker.keypair, TxKind.NAME_REGISTER,
        {"name": "ada.community", "value": "stolen"}, 0, fee=0.5,
    )
    honest = chain_net.participant("volunteer-1")
    victim_txid = next(
        tx.txid
        for block in honest.chain.main_chain()
        for tx in block.transactions
        if tx.kind == TxKind.NAME_REGISTER
        and tx.payload.get("name") == "ada.community"
    )
    outcome = MajorityAttack(chain_net, attacker).run(
        victim_txid, reference=honest, horizon=2000.0, release_lead=2,
        conflicting_tx=steal,
    )
    entry = honest.chain.state_at().live_name(
        "ada.community", honest.chain.height
    )
    still_ada = entry is not None and entry.owner == keys["ada"].public_key
    print(f"  30%-hashrate name-theft attack succeeded: {outcome.succeeded};"
          f" ada still owns ada.community: {still_ada}")

    federation.stop_replication()
    print()
    print("Outcome: no single party could read, ban, seize, or erase —")
    print("at the cost of minutes-long registrations, E2E key management,")
    print("audit overhead, and volunteer infrastructure. That cost IS the")
    print("paper's subject.")


def main() -> None:
    sim = Simulator()
    streams = RngStreams(99)
    network = Network(sim, streams, latency=ConstantLatency(0.02))
    act_one(sim, network)
    stack = act_two(sim, streams, network)
    act_three(sim, streams, network, *stack)


if __name__ == "__main__":
    main()
