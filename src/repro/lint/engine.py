"""Rule registry, per-file lint context, and the linting driver.

A rule is a subclass of :class:`Rule` registered with :func:`register`.
The driver parses each file once, builds a :class:`LintContext`, runs
every selected rule over it, and filters the findings through
``# repro: noqa[...]`` suppression comments before returning them.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.lint.findings import Finding

__all__ = [
    "LintContext",
    "LintError",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "resolve_rules",
]


class LintError(ReproError):
    """The linter was invoked incorrectly (unknown rule, bad path)."""


#: ``# repro: noqa`` or ``# repro: noqa[DET001]`` or ``...[DET001, PAR001]``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


class LintContext:
    """Everything a rule may inspect about one source file.

    ``module_parts`` is the path split on separators, truncated to start
    at the last ``repro`` component when one is present — so rules can
    reason about *package* location (``("repro", "sim", "rng.py")``)
    regardless of where the checkout lives.
    """

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        parts: Tuple[str, ...] = Path(path).parts
        if "repro" in parts:
            last = len(parts) - 1 - tuple(reversed(parts)).index("repro")
            parts = parts[last:]
        self.module_parts = parts

    def in_package(self, *names: str) -> bool:
        """Whether any directory component of the module path is in ``names``."""
        return any(part in names for part in self.module_parts[:-1])

    def is_module(self, *tail: str) -> bool:
        """Whether the module path ends with the given components."""
        n = len(tail)
        return n > 0 and self.module_parts[-n:] == tuple(tail)

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=rule_id,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )

    def suppressed_rules(self, line: int) -> Optional[Set[str]]:
        """Rules suppressed on ``line`` (1-based).

        Returns ``None`` when the line carries no noqa comment, the
        empty set for a bare ``# repro: noqa`` (suppress everything),
        and the named rule ids otherwise.
        """
        if not 1 <= line <= len(self.lines):
            return None
        match = _NOQA_RE.search(self.lines[line - 1])
        if match is None:
            return None
        rules = match.group("rules")
        if rules is None:
            return set()
        return {r.strip().upper() for r in rules.split(",") if r.strip()}


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id``/``title``/``rationale`` and implement
    :meth:`check`, yielding :class:`Finding` objects.  ``title`` and
    ``rationale`` feed ``--list-rules`` and the docs.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator: instantiate and register a rule by its id."""
    rule = rule_cls()
    if not rule.rule_id:
        raise LintError(f"rule {rule_cls.__name__} has no rule_id")
    if rule.rule_id in _REGISTRY:
        raise LintError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def resolve_rules(selection: Optional[Sequence[str]] = None) -> List[Rule]:
    """Map a ``--rules`` selection to rule objects (all rules if None)."""
    if selection is None:
        return all_rules()
    rules = []
    for raw in selection:
        rule_id = raw.strip().upper()
        rule = _REGISTRY.get(rule_id)
        if rule is None:
            known = ", ".join(sorted(_REGISTRY))
            raise LintError(f"unknown rule {raw!r}; known rules: {known}")
        rules.append(rule)
    return rules


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one in-memory source text; the unit every other entry wraps."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding("SYNTAX", path, exc.lineno or 1, exc.offset or 0,
                        f"cannot parse: {exc.msg}")]
    ctx = LintContext(path, source, tree)
    chosen = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    for rule in chosen:
        for finding in rule.check(ctx):
            suppressed = ctx.suppressed_rules(finding.line)
            if suppressed is not None and (
                not suppressed or finding.rule_id in suppressed
            ):
                continue
            findings.append(finding)
    return sorted(findings, key=Finding.sort_key)


def lint_file(path: str, rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint one file on disk."""
    try:
        source = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    return lint_source(source, path=str(path), rules=rules)


def _iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from (str(p) for p in sorted(path.rglob("*.py")))
        elif path.is_file():
            yield str(path)
        else:
            raise LintError(f"no such file or directory: {raw}")


def lint_paths(
    paths: Sequence[str], rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Lint files and directories (recursively); findings sorted."""
    findings: List[Finding] = []
    for file_path in _iter_python_files(paths):
        findings.extend(lint_file(file_path, rules=rules))
    return sorted(findings, key=Finding.sort_key)
