"""E4 — federated single points of failure (§3.2, §5.1).

The paper: OStatus-style applications "are bottlenecked by single servers
that can cause entire instances to be inaccessible if they fail", while
Matrix "provides high availability by replicating data over the entire
network".  The bench fails k of N servers and measures the fraction of
users who can still read the full room history.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table, run_federation_availability

N_SERVERS = 5
N_USERS = 20


def test_bench_federation_availability(benchmark):
    rows = benchmark.pedantic(
        run_federation_availability,
        kwargs={"seed": 7, "n_servers": N_SERVERS, "n_users": N_USERS,
                "failed_servers": 1},
        rounds=1, iterations=1,
    )
    emit("E4 — read availability after 1/5 servers fail", render_table(rows))
    by_model = {row["model"]: row["read_availability"] for row in rows}
    # Single-home: users of the dead instance (1/5 of them) are cut off.
    assert by_model["single_home"] == pytest.approx(1 - 1 / N_SERVERS)
    # Replication alone does not help users bound to their home server...
    assert by_model["replicated"] == pytest.approx(1 - 1 / N_SERVERS)
    # ...but replication + failover restores full availability.
    assert by_model["replicated_failover"] == 1.0


def test_bench_federation_availability_scaling_failures(benchmark):
    def sweep_failures():
        out = []
        for failed in (0, 1, 2, 3):
            rows = run_federation_availability(
                seed=11, n_servers=N_SERVERS, n_users=N_USERS,
                failed_servers=failed,
            )
            for row in rows:
                out.append(row)
        return out

    rows = benchmark.pedantic(sweep_failures, rounds=1, iterations=1)
    emit("E4 — availability vs number of failed servers", render_table(rows))
    failover = {
        row["failed"]: row["read_availability"]
        for row in rows if row["model"] == "replicated_failover"
    }
    single = {
        row["failed"]: row["read_availability"]
        for row in rows if row["model"] == "single_home"
    }
    # Single-home degrades linearly with failed instances; failover stays
    # at 1.0 until every server is gone.
    for failed in (0, 1, 2, 3):
        assert single[failed] == pytest.approx(1 - failed / N_SERVERS)
        assert failover[failed] == 1.0
