"""Tests for Bitswap barter ledgers and guerrilla encrypted-cloud storage."""

import pytest

from repro.errors import AccessDeniedError, CryptoError, StorageError
from repro.net import ConstantLatency, Network
from repro.sim import RngStreams, Simulator
from repro.storage import (
    BitswapLedger,
    BitswapPeer,
    CloudProvider,
    EncryptedCloudClient,
    make_random_blob,
)


def make_net(seed=1):
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams, latency=ConstantLatency(0.01))
    return sim, streams, network


class TestBitswapLedger:
    def test_new_peer_gets_grace(self):
        ledger = BitswapLedger(choke_debt_ratio=2.0, grace_bytes=1000)
        assert ledger.should_serve("newcomer")

    def test_freeloader_choked_past_grace(self):
        ledger = BitswapLedger(choke_debt_ratio=2.0, grace_bytes=1000)
        ledger.record_sent("leech", 5000)  # we gave 5000, got nothing
        assert not ledger.should_serve("leech")

    def test_reciprocating_peer_stays_served(self):
        ledger = BitswapLedger(choke_debt_ratio=2.0, grace_bytes=1000)
        ledger.record_sent("good", 50_000)
        ledger.record_received("good", 40_000)
        assert ledger.should_serve("good")

    def test_debtors_ranked(self):
        ledger = BitswapLedger()
        ledger.record_sent("a", 100)
        ledger.record_sent("b", 10_000)
        assert ledger.debtors()[0][0] == "b"

    def test_bad_ratio_rejected(self):
        with pytest.raises(StorageError):
            BitswapLedger(choke_debt_ratio=0.0)


class TestBitswapExchange:
    def test_fetch_blob_from_seeder(self):
        sim, streams, network = make_net(2)
        seeder = BitswapPeer(network, "seeder")
        leecher = BitswapPeer(network, "leecher")
        blob = make_random_blob(streams, 4 * 1024, chunk_size=1024)
        content_id = seeder.add_blob(blob)

        def scenario():
            missing = yield from leecher.fetch_blob(
                ["seeder"], content_id, len(blob.chunks)
            )
            return missing

        assert sim.run_process(scenario()) == 0
        assert leecher.chunk_count(content_id) == len(blob.chunks)
        # The ledgers agree on the byte flow.
        assert seeder.ledger.pair("leecher").bytes_sent == blob.size_bytes
        assert leecher.ledger.pair("seeder").bytes_received == blob.size_bytes

    def test_freeloader_eventually_choked(self):
        sim, streams, network = make_net(3)
        seeder = BitswapPeer(network, "seeder", grace_bytes=2048)
        leech = BitswapPeer(network, "leech", grace_bytes=2048)
        blob = make_random_blob(streams, 16 * 1024, chunk_size=1024)
        content_id = seeder.add_blob(blob)

        def scenario():
            missing = yield from leech.fetch_blob(
                ["seeder"], content_id, len(blob.chunks)
            )
            return missing

        missing = sim.run_process(scenario())
        # The leech got the grace allowance, then got choked.
        assert missing > 0
        assert seeder.chokes_issued > 0
        assert leech.chunk_count(content_id) < len(blob.chunks)

    def test_reciprocity_unlocks_full_transfer(self):
        sim, streams, network = make_net(4)
        peer_a = BitswapPeer(network, "peer-a", grace_bytes=2048)
        peer_b = BitswapPeer(network, "peer-b", grace_bytes=2048)
        blob_a = make_random_blob(streams, 16 * 1024, chunk_size=1024, name="a")
        blob_b = make_random_blob(streams, 16 * 1024, chunk_size=1024, name="b")
        id_a = peer_a.add_blob(blob_a)
        id_b = peer_b.add_blob(blob_b)

        def scenario():
            # Interleaved swapping keeps both ledgers balanced.
            missing = 0
            for index in range(len(blob_a.chunks)):
                missing += (yield from peer_b.fetch_blob(["peer-a"], id_a, index + 1))
                missing += (yield from peer_a.fetch_blob(["peer-b"], id_b, index + 1))
            return missing

        assert sim.run_process(scenario()) == 0
        assert peer_a.chunk_count(id_b) == len(blob_b.chunks)
        assert peer_b.chunk_count(id_a) == len(blob_a.chunks)

    def test_bitswap_does_not_detect_data_loss(self):
        # The structural weakness vs audit-based schemes: nothing notices
        # a peer that holds nothing until you try to fetch.
        sim, streams, network = make_net(5)
        empty = BitswapPeer(network, "empty-seeder")
        leech = BitswapPeer(network, "leech")

        def scenario():
            return (yield from leech.fetch_blob(["empty-seeder"], "ghost", 4))

        assert sim.run_process(scenario()) == 4  # all chunks missing


class TestGuerrillaStorage:
    def setup_cloud(self, seed=6):
        sim, streams, network = make_net(seed)
        provider = CloudProvider(network)
        client = EncryptedCloudClient(network, "user", provider, secret="k1")
        return sim, network, provider, client

    def test_put_get_roundtrip(self):
        sim, network, provider, client = self.setup_cloud()

        def scenario():
            yield from client.put("diary", b"my secret thoughts")
            return (yield from client.get("diary"))

        assert sim.run_process(scenario()) == b"my secret thoughts"

    def test_provider_sees_only_ciphertext(self):
        sim, network, provider, client = self.setup_cloud()

        def scenario():
            yield from client.put("diary", b"my secret thoughts")

        sim.run_process(scenario())
        [stored] = provider.surveil().values()
        assert b"my secret thoughts" not in stored

    def test_tampering_detected(self):
        sim, network, provider, client = self.setup_cloud()

        def scenario():
            yield from client.put("doc", b"original")
            provider.tamper("doc", b"x" * 80)
            try:
                yield from client.get("doc")
            except CryptoError:
                return "detected"

        assert sim.run_process(scenario()) == "detected"

    def test_censorship_still_possible(self):
        # The §5.3 residual: encryption removes reading/tampering powers,
        # not the withholding power.
        sim, network, provider, client = self.setup_cloud()

        def scenario():
            yield from client.put("doc", b"data")
            provider.censor("doc")
            try:
                yield from client.get("doc")
            except AccessDeniedError:
                return "censored"

        assert sim.run_process(scenario()) == "censored"

    def test_wrong_key_cannot_read(self):
        sim, network, provider, client = self.setup_cloud()
        other = EncryptedCloudClient(network, "attacker", provider, secret="k2")

        def scenario():
            yield from client.put("doc", b"data")
            try:
                yield from other.get("doc")
            except CryptoError:
                return "locked"

        assert sim.run_process(scenario()) == "locked"

    def test_empty_secret_rejected(self):
        sim, network, provider, _ = self.setup_cloud()
        with pytest.raises(CryptoError):
            EncryptedCloudClient(network, "x", provider, secret="")
