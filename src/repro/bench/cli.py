"""``python -m repro bench``: run, record, and compare benchmarks.

Usage::

    python -m repro bench                          # both suites, human
    python -m repro bench --suite micro --format json
    python -m repro bench --suite micro --out BENCH_6.json
    python -m repro bench --suite micro --compare BENCH_4.json
    python -m repro bench --compare OLD.json NEW.json   # no run, just diff
    python -m repro bench --list                   # benchmark catalog

Exit codes mirror ``repro lint`` / ``repro chaos``: 0 success, 1 a
regression was detected (work-counter drift, wall-clock past tolerance,
missing benchmark, or non-deterministic work counters), 2 usage error.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Optional

from repro.bench.compare import (
    DEFAULT_ABSOLUTE_FLOOR_S,
    DEFAULT_TOLERANCE,
    compare_reports,
    render_compare_human,
    restrict_baseline,
)
from repro.bench.harness import DEFAULT_REPETITIONS, run_suite
from repro.bench.registry import select_benchmarks
from repro.bench.report import (
    build_report,
    render_bench_human,
    render_bench_json,
    validate_bench_report,
)
from repro.errors import BenchError

__all__ = ["add_bench_arguments", "run_bench_command"]


def add_bench_arguments(parser: Any) -> None:
    """Attach the bench options to an ``argparse`` (sub)parser."""
    parser.add_argument(
        "--suite", choices=("micro", "macro", "all"), default="all",
        help="which benchmark suite to run (default: all)",
    )
    parser.add_argument(
        "--repetitions", type=int, default=DEFAULT_REPETITIONS,
        metavar="N",
        help=f"repetitions per benchmark; wall clock reports best-of-N"
             f" (default: {DEFAULT_REPETITIONS})",
    )
    parser.add_argument(
        "--filter", default=None, metavar="SUBSTR", dest="name_filter",
        help="only run benchmarks whose name contains SUBSTR",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON report here (e.g. BENCH_6.json)",
    )
    parser.add_argument(
        "--compare", nargs="+", default=None, metavar="REPORT",
        help="one path: run, then compare against that baseline;"
             " two paths: compare NEW against OLD without running",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE, metavar="F",
        help="allowed relative wall-clock growth before a regression"
             f" (default: {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--absolute-floor", type=float, default=DEFAULT_ABSOLUTE_FLOOR_S,
        metavar="S", dest="absolute_floor_s",
        help="absolute wall-clock slack in seconds added to the band"
             f" (default: {DEFAULT_ABSOLUTE_FLOOR_S})",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_benchmarks",
        help="print the benchmark catalog, then exit",
    )


def _listing() -> str:
    lines = ["benchmarks:"]
    for bench in select_benchmarks():
        lines.append(f"  {bench.name:<40} [{bench.suite}]"
                     f" {bench.description}")
    return "\n".join(lines)


def _load_report(path: str) -> Dict[str, Any]:
    """Read and schema-check one report file (usage errors raise)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise BenchError(f"cannot read report {path}: {exc}") from exc
    except ValueError as exc:
        raise BenchError(f"report {path} is not valid JSON: {exc}") from exc
    errors = validate_bench_report(doc)
    if errors:
        raise BenchError(
            f"report {path} failed schema validation: " + "; ".join(errors)
        )
    return doc


def run_bench_command(args: Any) -> int:
    """Execute the bench command from parsed arguments."""
    if args.list_benchmarks:
        print(_listing())
        return 0
    if args.repetitions < 1:
        print(f"bench: --repetitions must be >= 1, got {args.repetitions}",
              file=sys.stderr)
        return 2
    if args.tolerance < 0 or args.absolute_floor_s < 0:
        print("bench: --tolerance and --absolute-floor must be >= 0",
              file=sys.stderr)
        return 2
    if args.compare is not None and len(args.compare) > 2:
        print("bench: --compare takes one baseline or OLD NEW, not"
              f" {len(args.compare)} paths", file=sys.stderr)
        return 2

    try:
        if args.compare is not None and len(args.compare) == 2:
            old = _load_report(args.compare[0])
            new = _load_report(args.compare[1])
            report: Optional[Dict[str, Any]] = None
        else:
            suite = None if args.suite == "all" else args.suite
            results = run_suite(
                suite=suite,
                repetitions=args.repetitions,
                name_filter=args.name_filter,
                progress=lambda name: print(f"bench: running {name}",
                                            file=sys.stderr),
            )
            if not results:
                print("bench: no benchmarks matched the selection",
                      file=sys.stderr)
                return 2
            report = build_report(results, args.suite, args.repetitions)
            if args.out is not None:
                with open(args.out, "w", encoding="utf-8") as handle:
                    handle.write(render_bench_json(report) + "\n")
            old = _load_report(args.compare[0]) if args.compare else None
            if old is not None and (suite is not None
                                    or args.name_filter is not None):
                total = len(old.get("benchmarks", []))
                old = restrict_baseline(old, suite=suite,
                                        name_filter=args.name_filter)
                kept = len(old.get("benchmarks", []))
                if kept != total:
                    print(
                        f"bench: baseline restricted to the run selection"
                        f" ({kept} of {total} benchmark(s) compared)",
                        file=sys.stderr,
                    )
            new = report
    except BenchError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2

    findings = (
        compare_reports(
            old, new,
            tolerance=args.tolerance,
            absolute_floor_s=args.absolute_floor_s,
        )
        if old is not None
        else []
    )
    nondeterministic: List[str] = [
        bench["name"]
        for bench in new.get("benchmarks", [])
        if not bench.get("deterministic", True)
    ]

    if args.format == "json":
        payload: Dict[str, Any] = {}
        if report is not None:
            payload = dict(report)
        payload["compare"] = [
            {
                "benchmark": f.benchmark,
                "kind": f.kind,
                "message": f.message,
                "regression": f.regression,
            }
            for f in findings
        ]
        payload["nondeterministic"] = nondeterministic
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        if report is not None:
            print(render_bench_human(report))
            if args.out is not None:
                print(f"report written: {args.out}")
        if old is not None:
            print(render_compare_human(findings))
        for name in nondeterministic:
            print(f"  NONDETERMINISTIC {name}: work counters differed"
                  " between repetitions")

    regressed = any(f.regression for f in findings) or bool(nondeterministic)
    return 1 if regressed else 0
