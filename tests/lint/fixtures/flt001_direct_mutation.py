"""FLT001 positive fixture: poking transport fault state directly."""


def sabotage(network):
    network._partition = {"a": 0, "b": 1}
    network.loss_rate = 0.5
    network._set_fault_surface(None)


def censor_by_hand(network, surface):
    network._censor = surface
    network._set_censor_surface(surface)
    surface.blocklist.add("relay0")
