"""Behavior tests for the whole-program rule pack (DET005/DET006/IMP001)
and the scope-aware set-iteration rule (ORD001)."""

import pytest

from repro.lint import lint_paths, lint_source


def write_tree(tmp_path, files):
    root = tmp_path / "tree"
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return root


def rule_ids(findings):
    return [f.rule_id for f in findings]


SEEDED = "from repro.sim.rng import seeded_rng\n"


class TestDet005:
    def test_exact_collision_across_modules(self, tmp_path):
        root = write_tree(tmp_path, {
            "alpha.py": SEEDED + "def a(s):\n    return seeded_rng(s, 'pkg.x')\n",
            "beta.py": SEEDED + "def b(s):\n    return seeded_rng(s, 'pkg.x')\n",
        })
        findings = lint_paths([str(root)])
        assert rule_ids(findings) == ["DET005", "DET005"]
        assert "pkg.x" in findings[0].message

    def test_distinct_literal_roots_are_exempt(self, tmp_path):
        # Same name but provably different root seeds: the streams are
        # keyed apart, so the collision cannot produce correlated draws.
        root = write_tree(tmp_path, {
            "alpha.py": SEEDED + "def a():\n    return seeded_rng(1001, 'pkg.x')\n",
            "beta.py": SEEDED + "def b():\n    return seeded_rng(2002, 'pkg.x')\n",
        })
        assert lint_paths([str(root)]) == []

    def test_unknown_root_may_collide_with_known_root(self, tmp_path):
        root = write_tree(tmp_path, {
            "alpha.py": SEEDED + "def a():\n    return seeded_rng(1001, 'pkg.x')\n",
            "beta.py": SEEDED + "def b(s):\n    return seeded_rng(s, 'pkg.x')\n",
        })
        assert rule_ids(lint_paths([str(root)])) == ["DET005", "DET005"]

    def test_exact_name_inside_dynamic_family(self, tmp_path):
        root = write_tree(tmp_path, {
            "alpha.py": SEEDED + (
                "def a(s, i):\n"
                "    return seeded_rng(s, f'pkg.peer{i}')\n"
            ),
            "beta.py": SEEDED + (
                "def b(s):\n"
                "    return seeded_rng(s, 'pkg.peer7')\n"
            ),
        })
        findings = lint_paths([str(root)])
        # The exact site collides with the family; the family itself has
        # a dotted prefix, so only the exact side is flagged.
        assert rule_ids(findings) == ["DET005"]
        assert "pkg.peer*" in findings[0].message

    def test_generic_undotted_name(self):
        src = SEEDED + "def f(s):\n    return seeded_rng(s, 'drop')\n"
        findings = lint_source(src, path="repro/analysis/x.py")
        assert rule_ids(findings) == ["DET005"]
        assert "generic stream name" in findings[0].message

    def test_generic_dynamic_family_prefix(self):
        src = SEEDED + "def f(s, i):\n    return seeded_rng(s, f'peer{i}')\n"
        findings = lint_source(src, path="repro/analysis/x.py")
        assert rule_ids(findings) == ["DET005"]
        assert "dynamic stream family" in findings[0].message

    def test_dotted_unique_names_are_clean(self, tmp_path):
        root = write_tree(tmp_path, {
            "alpha.py": SEEDED + "def a(s):\n    return seeded_rng(s, 'pkg.a')\n",
            "beta.py": SEEDED + "def b(s):\n    return seeded_rng(s, 'pkg.b')\n",
        })
        assert lint_paths([str(root)]) == []

    def test_rng_module_itself_is_exempt(self):
        src = (
            "def seeded_rng(seed, name):\n"
            "    return seeded_rng(seed, name)\n"
            "def demo(seed):\n"
            "    return seeded_rng(seed, 'x')\n"
        )
        assert lint_source(src, path="repro/sim/rng.py") == []


class TestDet006:
    def test_two_hop_wall_clock_reach(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/util/clockio.py": (
                "import time\n"
                "def read_clock():\n    return time.perf_counter()\n"
            ),
            "repro/sim/driver.py": (
                "from repro.util.clockio import read_clock\n"
                "def sample():\n    return read_clock()\n"
            ),
        })
        findings = lint_paths([str(root)])
        assert rule_ids(findings) == ["DET006"]
        assert findings[0].path.endswith("driver.py")
        assert "time.perf_counter" in findings[0].message
        assert "sample -> " in findings[0].message

    def test_three_hop_chain_via_aliased_module_call(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/util/clockio.py": (
                "import time\n"
                "def read_clock():\n    return time.time()\n"
            ),
            "repro/util/mid.py": (
                "import repro.util.clockio as cio\n"
                "def relay():\n    return cio.read_clock()\n"
            ),
            "repro/net/hopper.py": (
                "from repro.util.mid import relay\n"
                "def step():\n    return relay()\n"
            ),
        })
        findings = lint_paths([str(root)])
        assert rule_ids(findings) == ["DET006"]
        assert (
            "repro.net.hopper.step -> repro.util.mid.relay ->"
            " repro.util.clockio.read_clock" in findings[0].message
        )

    def test_global_rng_reach_is_also_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/util/noise.py": (
                "import random\n"
                "def jitter():\n    return random.random()\n"
            ),
            "repro/chain/miner.py": (
                "from repro.util.noise import jitter\n"
                "def mine():\n    return jitter()\n"
            ),
        })
        findings = [f for f in lint_paths([str(root)])
                    if f.rule_id == "DET006"]
        assert len(findings) == 1
        assert "global-RNG" in findings[0].message

    def test_hazard_inside_simulated_package_is_not_det006(self, tmp_path):
        # A direct hazard in sim code is DET002's per-file territory;
        # DET006 only reports hazards *hiding* in non-simulated helpers.
        root = write_tree(tmp_path, {
            "repro/sim/clocky.py": (
                "import time\n"
                "def now():\n    return time.time()\n"
            ),
            "repro/sim/driver.py": (
                "from repro.sim.clocky import now\n"
                "def sample():\n    return now()\n"
            ),
        })
        assert "DET006" not in rule_ids(lint_paths([str(root)]))

    def test_non_simulated_caller_is_not_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/util/clockio.py": (
                "import time\n"
                "def read_clock():\n    return time.perf_counter()\n"
            ),
            "repro/analysis/report.py": (
                "from repro.util.clockio import read_clock\n"
                "def stamp():\n    return read_clock()\n"
            ),
        })
        assert "DET006" not in rule_ids(lint_paths([str(root)]))


class TestImp001:
    def test_module_level_cycle(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/net/aa.py": "import repro.net.bb\n",
            "repro/net/bb.py": "import repro.net.aa\n",
        })
        findings = lint_paths([str(root)])
        assert rule_ids(findings) == ["IMP001"]
        assert findings[0].path.endswith("aa.py")
        assert (
            "repro.net.aa -> repro.net.bb -> repro.net.aa"
            in findings[0].message
        )

    def test_three_module_cycle_reported_once(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/net/aa.py": "import repro.net.bb\n",
            "repro/net/bb.py": "import repro.net.cc\n",
            "repro/net/cc.py": "import repro.net.aa\n",
        })
        findings = lint_paths([str(root)])
        assert rule_ids(findings) == ["IMP001"]

    def test_type_checking_guard_breaks_the_cycle(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/net/aa.py": (
                "from typing import TYPE_CHECKING\n"
                "if TYPE_CHECKING:\n"
                "    import repro.net.bb\n"
            ),
            "repro/net/bb.py": "import repro.net.aa\n",
        })
        assert lint_paths([str(root)]) == []

    def test_lazy_import_breaks_the_cycle(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/net/aa.py": (
                "def late():\n"
                "    import repro.net.bb\n"
                "    return repro.net.bb\n"
            ),
            "repro/net/bb.py": "import repro.net.aa\n",
        })
        assert lint_paths([str(root)]) == []

    def test_from_import_of_submodule_participates(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/net/__init__.py": "",
            "repro/net/aa.py": "from repro.net import bb\n",
            "repro/net/bb.py": "import repro.net.aa\n",
        })
        assert "IMP001" in rule_ids(lint_paths([str(root)]))


SIM_PATH = "repro/sim/demo.py"


class TestOrd001:
    def test_for_loop_over_set_literal_name(self):
        src = (
            "def step(peers):\n"
            "    live = set(peers)\n"
            "    for p in live:\n"
            "        p.tick()\n"
        )
        findings = lint_source(src, path=SIM_PATH)
        assert rule_ids(findings) == ["ORD001"]
        assert "'live'" in findings[0].message

    def test_sorted_iteration_is_allowed(self):
        src = (
            "def step(peers):\n"
            "    live = set(peers)\n"
            "    for p in sorted(live):\n"
            "        p.tick()\n"
        )
        assert lint_source(src, path=SIM_PATH) == []

    def test_order_insensitive_consumer_is_exempt(self):
        src = (
            "def check(words, banned):\n"
            "    bad = set(banned)\n"
            "    return any(w in bad for w in words)\n"
        )
        assert lint_source(src, path=SIM_PATH) == []

    def test_membership_and_len_are_fine(self):
        src = (
            "def check(x):\n"
            "    live = {1, 2}\n"
            "    return x in live and len(live) > 1\n"
        )
        assert lint_source(src, path=SIM_PATH) == []

    def test_list_conversion_of_set_is_flagged(self):
        src = (
            "def order(peers):\n"
            "    live = set(peers)\n"
            "    return list(live)\n"
        )
        assert rule_ids(lint_source(src, path=SIM_PATH)) == ["ORD001"]

    def test_comprehension_over_set_is_flagged(self):
        src = (
            "def names(peers):\n"
            "    live = set(peers)\n"
            "    return [p.name for p in live]\n"
        )
        assert rule_ids(lint_source(src, path=SIM_PATH)) == ["ORD001"]

    def test_set_comprehension_over_set_keeps_orderlessness(self):
        src = (
            "def names(peers):\n"
            "    live = set(peers)\n"
            "    return {p.name for p in live}\n"
        )
        assert lint_source(src, path=SIM_PATH) == []

    def test_set_union_expression_is_flagged(self):
        src = (
            "def step(a, b):\n"
            "    left = set(a)\n"
            "    for p in left | set(b):\n"
            "        p.tick()\n"
        )
        assert rule_ids(lint_source(src, path=SIM_PATH)) == ["ORD001"]

    def test_self_attribute_set_is_tracked(self):
        src = (
            "class Pool:\n"
            "    def __init__(self, peers):\n"
            "        self.live = set(peers)\n"
            "    def step(self):\n"
            "        for p in self.live:\n"
            "            p.tick()\n"
        )
        findings = lint_source(src, path=SIM_PATH)
        assert rule_ids(findings) == ["ORD001"]
        assert "'self.live'" in findings[0].message

    def test_rebound_name_is_conservatively_unmarked(self):
        src = (
            "def step(peers):\n"
            "    live = set(peers)\n"
            "    live = order_peers(peers)\n"
            "    for p in live:\n"
            "        p.tick()\n"
        )
        assert lint_source(src, path=SIM_PATH) == []

    @pytest.mark.parametrize("path", [
        "repro/analysis/demo.py", "repro/bench/demo.py", "tools/demo.py",
    ])
    def test_non_simulated_packages_are_out_of_scope(self, path):
        src = (
            "def step(peers):\n"
            "    live = set(peers)\n"
            "    for p in live:\n"
            "        p.tick()\n"
        )
        assert lint_source(src, path=path) == []


class TestOrd001SetReturningCalls:
    """ORD001 also covers iteration over calls to file-local defs whose
    return annotation is a set type (e.g. ``servers_for_room``)."""

    def test_for_loop_over_set_returning_function_call(self):
        src = (
            "from typing import Set\n"
            "def members(room) -> Set[str]:\n"
            "    return set(room)\n"
            "def step(room):\n"
            "    for p in members(room):\n"
            "        p.tick()\n"
        )
        assert rule_ids(lint_source(src, path=SIM_PATH)) == ["ORD001"]

    def test_for_loop_over_set_returning_method_call(self):
        src = (
            "from typing import Set\n"
            "class Fed:\n"
            "    def servers_for_room(self, room) -> Set[str]:\n"
            "        return set(room)\n"
            "    def fan_out(self, room):\n"
            "        for peer in self.servers_for_room(room):\n"
            "            self.push(peer)\n"
        )
        assert rule_ids(lint_source(src, path=SIM_PATH)) == ["ORD001"]

    def test_string_annotation_counts(self):
        src = (
            "def members(room) -> \"Set[str]\":\n"
            "    return set(room)\n"
            "def step(room):\n"
            "    for p in members(room):\n"
            "        p.tick()\n"
        )
        assert rule_ids(lint_source(src, path=SIM_PATH)) == ["ORD001"]

    def test_bare_set_annotation_counts(self):
        src = (
            "def members(room) -> set:\n"
            "    return set(room)\n"
            "def step(room):\n"
            "    for p in members(room):\n"
            "        p.tick()\n"
        )
        assert rule_ids(lint_source(src, path=SIM_PATH)) == ["ORD001"]

    def test_sorted_call_is_allowed(self):
        src = (
            "from typing import Set\n"
            "def members(room) -> Set[str]:\n"
            "    return set(room)\n"
            "def step(room):\n"
            "    for p in sorted(members(room)):\n"
            "        p.tick()\n"
        )
        assert lint_source(src, path=SIM_PATH) == []

    def test_non_set_return_annotation_is_exempt(self):
        src = (
            "from typing import List\n"
            "def members(room) -> List[str]:\n"
            "    return list(room)\n"
            "def step(room):\n"
            "    for p in members(room):\n"
            "        p.tick()\n"
        )
        assert lint_source(src, path=SIM_PATH) == []

    def test_unannotated_def_is_conservatively_exempt(self):
        src = (
            "def members(room):\n"
            "    return set(room)\n"
            "def step(room):\n"
            "    for p in members(room):\n"
            "        p.tick()\n"
        )
        assert lint_source(src, path=SIM_PATH) == []

    def test_order_insensitive_use_of_set_call_is_exempt(self):
        src = (
            "from typing import Set\n"
            "def members(room) -> Set[str]:\n"
            "    return set(room)\n"
            "def check(room, user):\n"
            "    return user in members(room)\n"
        )
        assert lint_source(src, path=SIM_PATH) == []
