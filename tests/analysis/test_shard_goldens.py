"""Golden regressions for the shard-engine drivers.

Pinned at ``seed=1`` (E4/E6) and ``seed=3`` (E5) for ``K=2`` and
``K=4``: workload aggregates are K-invariant by the determinism
contract, while ``messages_crossed``/``sync_rounds`` describe the
engine itself and are pinned per K — a change to windowing, envelope
ordering, or the partitioner moves them.  The chaos golden proves
message conservation over the combined cross-shard envelope
accounting under the ``registration-partition`` preset.
"""

from repro.analysis.runner import SweepCache, SweepRunner
from repro.analysis.shard_driver import (
    run_federation_availability_shard,
    run_registration_shard_smoke,
    run_shard_chaos,
    run_social_tradeoff_shard,
)

# model -> (users_complete, messages_read, posts_stored) at seed=1;
# identical for every K (and for the single-process reference).
E4_AGGREGATES = {
    "single_home": (0, 96, 8),
    "replicated": (16, 128, 40),
    "replicated_failover": (20, 160, 40),
}

# model -> K -> (messages_crossed, sync_rounds): engine-shape pins.
E4_ENGINE = {
    "single_home": {2: (87, 89), 4: (106, 89)},
    "replicated": {2: (46, 81), 4: (53, 81)},
    "replicated_failover": {2: (48, 169), 4: (61, 169)},
}


class TestE4Goldens:
    def check(self, shards):
        rows = run_federation_availability_shard(seed=1, shards=shards)
        assert [r["model"] for r in rows] == list(E4_AGGREGATES)
        for row in rows:
            model = row["model"]
            assert (
                row["users_complete"], row["messages_read"],
                row["posts_stored"],
            ) == E4_AGGREGATES[model], model
            assert (
                row["messages_crossed"], row["sync_rounds"],
            ) == E4_ENGINE[model][shards], model
        # The paper's availability ladder survives sharding.
        availability = [r["read_availability"] for r in rows]
        assert availability == [0.0, 0.8, 1.0]

    def test_k2(self):
        self.check(2)

    def test_k4(self):
        self.check(4)


# (nodes, churn) -> (pings, pongs, p50_ms, p95_ms, crossed, rounds)
E5_GOLDEN = {
    (12, False): (144, 144, 213.404, 429.511, 144, 144),
    (12, True): (144, 126, 218.317, 429.511, 136, 161),
    (24, False): (288, 288, 213.404, 462.909, 304, 196),
    (24, True): (288, 199, 213.404, 462.909, 277, 223),
}


class TestE5Golden:
    def test_k2_seed3(self):
        rows = run_social_tradeoff_shard(seed=3, shards=2)
        assert len(rows) == len(E5_GOLDEN)
        for row in rows:
            key = (row["nodes"], row["churn"])
            assert (
                row["pings_sent"], row["pongs_received"],
                row["rtt_p50_ms"], row["rtt_p95_ms"],
                row["messages_crossed"], row["sync_rounds"],
            ) == E5_GOLDEN[key], key

    def test_churn_only_loses_pongs(self):
        rows = run_social_tradeoff_shard(seed=3, shards=2)
        by_key = {(r["nodes"], r["churn"]): r for r in rows}
        for nodes in (12, 24):
            quiet, churned = by_key[(nodes, False)], by_key[(nodes, True)]
            assert quiet["pings_sent"] == churned["pings_sent"]
            assert churned["pongs_received"] < quiet["pongs_received"]


class TestE6SmokeGolden:
    def test_k2_seed1(self):
        rows = run_registration_shard_smoke(seed=1, shards=2)
        clean, partitioned = rows
        assert clean["preset"] == "none"
        assert (clean["certified"], clean["attempts"]) == (6, 6)
        assert (clean["messages_crossed"], clean["sync_rounds"]) == (6, 72)
        assert partitioned["preset"] == "registration-partition"
        # The partitioned client retries through the 5.0-75.0 window:
        # everyone still certifies, it just takes 14 extra attempts.
        assert (
            partitioned["certified"], partitioned["attempts"],
        ) == (6, 20)
        assert (
            partitioned["messages_crossed"], partitioned["sync_rounds"],
        ) == (13, 86)


class TestChaosGolden:
    def test_conservation_under_registration_partition(self):
        report = run_shard_chaos()
        assert report["preset"] == "registration-partition"
        assert (report["certified"], report["attempts"]) == (6, 20)
        assert (
            report["sent"], report["delivered"], report["dropped"],
            report["in_flight"],
        ) == (26, 12, 14, 0)
        assert report["sent"] == (
            report["delivered"] + report["dropped"] + report["in_flight"]
        )
        assert report["conservation_checks"] == 86
        assert report["conservation_violations"] == 0


class TestSweepCacheReplay:
    def test_cached_replay_is_identical(self, tmp_path):
        cold_runner = SweepRunner(cache=SweepCache(str(tmp_path)))
        cold = run_federation_availability_shard(
            seed=1, shards=2, runner=cold_runner
        )
        warm_runner = SweepRunner(cache=SweepCache(str(tmp_path)))
        warm = run_federation_availability_shard(
            seed=1, shards=2, runner=warm_runner
        )
        assert warm == cold
        assert cold_runner.stats.hits == 0
        assert cold_runner.stats.misses == 3
        assert warm_runner.stats.hits == 3
        assert warm_runner.stats.misses == 0
