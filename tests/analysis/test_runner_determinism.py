"""Determinism harness for the sweep runner (DESIGN.md's bit-identical
reproducibility promise, extended to parallel and cached execution).

For several experiment drivers and >= 3 seeds, the serial loop, the
process-pool runner, and a cached replay must all produce equal results
— same values, same row order.
"""

import pytest

from repro.analysis import (
    SweepCache,
    SweepRunner,
    derive_task_seed,
    sweep,
)
from repro.analysis.experiments import (
    run_federation_availability,
    run_proof_economics,
    run_swarm_availability,
    run_usenet_collapse,
)

SEEDS = (1, 2, 3)

# (experiment id, driver, small-but-nontrivial parameters)
CASES = [
    ("E4", run_federation_availability,
     dict(n_servers=3, n_users=6, n_messages=3)),
    ("E7", run_proof_economics,
     dict(epochs=2, blob_chunks=4, chunk_size=64)),
    ("E8", run_swarm_availability,
     dict(offered_loads=(0.5, 8.0), horizon=500.0)),
    ("E11", run_usenet_collapse, dict(community_sizes=(8, 16))),
]


@pytest.mark.parametrize(
    "name,driver,params", CASES, ids=[case[0] for case in CASES]
)
def test_serial_parallel_and_cached_replay_identical(
    name, driver, params, tmp_path
):
    for seed in SEEDS:
        serial = driver(seed=seed, **params)

        parallel = driver(
            seed=seed, runner=SweepRunner(workers=2), **params
        )
        assert parallel == serial, (
            f"{name} seed={seed}: parallel output diverged from serial"
        )

        # Cold run populates the cache; the replay must recompute nothing.
        cold = driver(
            seed=seed, runner=SweepRunner(cache=SweepCache(tmp_path)),
            **params,
        )
        assert cold == serial
        replayer = SweepRunner(cache=SweepCache(tmp_path))
        replay = driver(seed=seed, runner=replayer, **params)
        assert replay == serial, (
            f"{name} seed={seed}: cached replay diverged from serial"
        )
        assert replayer.stats.misses == 0
        assert replayer.stats.hits == len(serial)


def test_worker_count_and_chunking_do_not_perturb_results():
    """Scheduling shape (workers, chunksize) is invisible in the output."""
    baseline = run_federation_availability(
        seed=2, n_servers=3, n_users=6, n_messages=3
    )
    for runner in (
        SweepRunner(workers=2),
        SweepRunner(workers=3, chunksize=2),
    ):
        assert run_federation_availability(
            seed=2, n_servers=3, n_users=6, n_messages=3, runner=runner
        ) == baseline


def test_sweep_helper_routes_through_runner_identically(tmp_path):
    """The generic ``sweep`` helper: serial == parallel == cached."""
    kwargs = dict(seed=4, n_servers=3, n_users=6, n_messages=3)
    serial = sweep(
        run_federation_availability, "failed_servers", [0, 1, 2], **kwargs
    )
    parallel = sweep(
        run_federation_availability, "failed_servers", [0, 1, 2],
        runner=SweepRunner(workers=3), **kwargs,
    )
    assert parallel == serial
    sweep(run_federation_availability, "failed_servers", [0, 1, 2],
          runner=SweepRunner(cache=SweepCache(tmp_path)), **kwargs)
    replayer = SweepRunner(cache=SweepCache(tmp_path))
    replay = sweep(
        run_federation_availability, "failed_servers", [0, 1, 2],
        runner=replayer, **kwargs,
    )
    assert replay == serial
    assert replayer.stats.misses == 0 and replayer.stats.hits == 3


def _echo_seed(label: str, seed: int = -1):
    """Top-level so the process pool can pickle it by reference."""
    return {"label": label, "seed": seed}


def test_derived_seeds_are_schedule_independent():
    """base_seed injection depends only on (base_seed, config) — the
    pool sees exactly the seeds the serial loop would."""
    configs = [{"label": f"t{i}"} for i in range(5)]
    serial = SweepRunner(base_seed=42).run("seed-injection", _echo_seed,
                                           list(configs))
    parallel = SweepRunner(base_seed=42, workers=3).run(
        "seed-injection", _echo_seed, list(configs)
    )
    assert serial == parallel
    assert len({row["seed"] for row in serial}) == len(configs)
    assert serial[0]["seed"] == derive_task_seed(42, {"label": "t0"})
    # A config that already fixes the seed param is left alone.
    pinned = SweepRunner(base_seed=42).run(
        "seed-injection", _echo_seed, [{"label": "t0", "seed": 7}]
    )
    assert pinned[0]["seed"] == 7
