"""Fixture: DET006 — simulated code reaching the clock via a helper.

No rule fires on this file in isolation: the wall-clock read lives in
``helpers_clock.py``, outside the simulated packages, where DET002
cannot see it.  Only the whole-program call graph connects the two.
"""

from helpers_clock import read_clock


def sample_latency():
    return read_clock()
