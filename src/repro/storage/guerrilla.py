"""'Guerrilla' storage: encrypted services on untrusted clouds (§5.3).

The paper's hard problem of *decoupling authority from infrastructure*
suggests "running encrypted services on the cloud": keep using the feudal
provider's machines but deny it authority over the data.  This module
makes the resulting security split measurable:

* **confidentiality / integrity move to the user** — the provider stores
  only ciphertext (keystream encryption keyed by the user) with a MAC, so
  :meth:`CloudProvider.surveil` yields nothing readable, and any
  tampering is detected on read;
* **availability stays feudal** — the provider can still censor or delete
  (:meth:`CloudProvider.censor`), exactly the residual power the paper
  says purely-technical decoupling cannot remove.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.crypto.hashing import sha256, sha256_hex
from repro.errors import AccessDeniedError, CryptoError, RemoteError, StorageError
from repro.net.node import NodeClass
from repro.net.transport import Network

__all__ = ["CloudProvider", "EncryptedCloudClient"]


def _keystream(key: str, name: str, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(sha256(f"guerrilla:{key}:{name}:{counter}".encode("utf-8")))
        counter += 1
    return bytes(out[:length])


def _mac(key: str, name: str, ciphertext: bytes) -> str:
    return sha256_hex(
        f"mac:{key}:{name}:".encode("utf-8") + ciphertext
    )


class CloudProvider:
    """The feudal substrate: a blob server that can snoop, tamper, censor."""

    def __init__(self, network: Network, provider_id: str = "cloud"):
        self.network = network
        self.provider_id = provider_id
        self.node = (
            network.node(provider_id)
            if network.has_node(provider_id)
            else network.create_node(provider_id, node_class=NodeClass.DATACENTER)
        )
        self._objects: Dict[str, bytes] = {}
        self._censored: set = set()
        self.node.register_handler("cloud.put", self._on_put)
        self.node.register_handler("cloud.get", self._on_get)

    def _on_put(self, node, payload: dict, sender: str) -> bool:
        self._objects[payload["name"]] = payload["data"]
        return True

    def _on_get(self, node, payload: dict, sender: str) -> bytes:
        name = payload["name"]
        if name in self._censored:
            raise AccessDeniedError(f"object {name!r} unavailable (censored)")
        data = self._objects.get(name)
        if data is None:
            raise StorageError(f"no object {name!r}")
        return data

    # -- feudal powers -------------------------------------------------------

    def surveil(self) -> Dict[str, bytes]:
        """Everything the operator can read: raw stored bytes."""
        return dict(self._objects)

    def tamper(self, name: str, new_data: bytes) -> None:
        if name not in self._objects:
            raise StorageError(f"no object {name!r}")
        self._objects[name] = new_data

    def censor(self, name: str) -> None:
        """Withhold an object: the availability power encryption cannot
        take away."""
        self._censored.add(name)


class EncryptedCloudClient:
    """A user keeping authority over data stored on a feudal provider."""

    def __init__(self, network: Network, client_id: str, provider: CloudProvider,
                 secret: str):
        if not secret:
            raise CryptoError("client needs a non-empty secret")
        self.network = network
        self.client_id = client_id
        if not network.has_node(client_id):
            network.create_node(client_id)
        self.provider = provider
        self._secret = secret

    def _seal(self, name: str, data: bytes) -> bytes:
        stream = _keystream(self._secret, name, len(data))
        ciphertext = bytes(a ^ b for a, b in zip(data, stream))
        tag = _mac(self._secret, name, ciphertext)
        return tag.encode("ascii") + ciphertext

    def _open(self, name: str, sealed: bytes) -> bytes:
        if len(sealed) < 64:
            raise CryptoError("sealed object too short to hold a MAC")
        tag, ciphertext = sealed[:64].decode("ascii"), sealed[64:]
        if _mac(self._secret, name, ciphertext) != tag:
            raise CryptoError(
                f"object {name!r} failed integrity check (tampered?)"
            )
        stream = _keystream(self._secret, name, len(ciphertext))
        return bytes(a ^ b for a, b in zip(ciphertext, stream))

    def put(self, name: str, data: bytes) -> Generator:
        sealed = self._seal(name, data)
        ok = yield from self.network.rpc(
            self.client_id, self.provider.provider_id, "cloud.put",
            {"name": name, "data": sealed}, size_bytes=len(sealed),
        )
        return ok

    def get(self, name: str) -> Generator:
        """Fetch and open; raises :class:`CryptoError` on tampering and
        propagates :class:`AccessDeniedError` on censorship."""
        try:
            sealed = yield from self.network.rpc(
                self.client_id, self.provider.provider_id, "cloud.get",
                {"name": name},
            )
        except RemoteError as exc:
            raise exc.remote_exception
        return self._open(name, sealed)
