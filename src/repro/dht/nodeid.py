"""Kademlia node identifiers and the XOR metric."""

from __future__ import annotations

from repro.crypto.hashing import sha256
from repro.errors import DHTError

__all__ = ["ID_BITS", "node_id_for", "key_for", "xor_distance", "bucket_index"]

ID_BITS = 160
_ID_MASK = (1 << ID_BITS) - 1


def node_id_for(name: str) -> int:
    """Derive a 160-bit Kademlia id from a node name (SHA-256 truncated)."""
    digest = sha256(f"dht-node:{name}".encode("utf-8"))
    return int.from_bytes(digest, "big") & _ID_MASK


def key_for(key: str) -> int:
    """Derive the 160-bit DHT key for an application-level key string."""
    digest = sha256(f"dht-key:{key}".encode("utf-8"))
    return int.from_bytes(digest, "big") & _ID_MASK


def xor_distance(a: int, b: int) -> int:
    """Kademlia's symmetric, unidirectional distance metric."""
    _check_id(a)
    _check_id(b)
    return a ^ b


def bucket_index(own_id: int, other_id: int) -> int:
    """Index of the k-bucket for ``other_id``: position of the highest
    differing bit (0 = closest possible non-equal, 159 = farthest half)."""
    distance = xor_distance(own_id, other_id)
    if distance == 0:
        raise DHTError("a node does not bucket itself")
    return distance.bit_length() - 1


def _check_id(value: int) -> None:
    if not isinstance(value, int) or not 0 <= value <= _ID_MASK:
        raise DHTError(f"not a valid {ID_BITS}-bit id: {value!r}")
