"""Simulated network nodes.

A :class:`Node` is an addressable endpoint with an online/offline state and
a registry of RPC handlers.  Protocol layers (DHT, blockchain, federation
servers...) attach behaviour to nodes by registering handlers; the transport
(:mod:`repro.net.transport`) invokes them when messages arrive.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, TYPE_CHECKING

from repro.errors import NetworkError

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.transport import Network

__all__ = ["Node", "NodeClass"]


class NodeClass:
    """Coarse hardware classes used throughout the experiments.

    The paper's §5.2 ("quality vs quantity") contrasts datacenter-grade
    infrastructure against user-device-grade infrastructure; these labels
    select churn and bandwidth profiles.
    """

    DATACENTER = "datacenter"
    HOME_SERVER = "home_server"
    PERSONAL_COMPUTER = "personal_computer"
    SMARTPHONE = "smartphone"
    TABLET = "tablet"

    ALL = (DATACENTER, HOME_SERVER, PERSONAL_COMPUTER, SMARTPHONE, TABLET)


Handler = Callable[["Node", Any, str], Any]


class Node:
    """An addressable endpoint in the simulated network.

    Parameters
    ----------
    node_id:
        Unique string identifier.
    node_class:
        One of :class:`NodeClass`; selects default churn/bandwidth profiles.
    upstream_bps / downstream_bps:
        Access-link capacities in bits per second.  The paper assumes
        1 Mbps upstream for user devices (§4).
    """

    def __init__(
        self,
        node_id: str,
        node_class: str = NodeClass.DATACENTER,
        upstream_bps: float = 1e9,
        downstream_bps: float = 1e9,
    ):
        if node_class not in NodeClass.ALL:
            raise NetworkError(f"unknown node class {node_class!r}")
        self.node_id = node_id
        self.node_class = node_class
        self.upstream_bps = float(upstream_bps)
        self.downstream_bps = float(downstream_bps)
        self.online = True
        self.network: Optional["Network"] = None
        self._handlers: Dict[str, Handler] = {}
        # Lifetime accounting, maintained by churn processes.
        self.total_online_time = 0.0
        self.last_state_change = 0.0
        self.sessions = 0

    # -- handler registry -------------------------------------------------

    def register_handler(self, method: str, handler: Handler) -> None:
        """Register ``handler(node, payload, sender_id)`` for ``method``.

        Re-registering a method replaces the previous handler (protocols
        may be re-deployed onto the same node).
        """
        self._handlers[method] = handler

    def has_handler(self, method: str) -> bool:
        return method in self._handlers

    def dispatch(self, method: str, payload: Any, sender_id: str) -> Any:
        """Invoke the registered handler; used by the transport layer."""
        handler = self._handlers.get(method)
        if handler is None:
            raise NetworkError(
                f"node {self.node_id!r} has no handler for {method!r}"
            )
        return handler(self, payload, sender_id)

    # -- liveness ----------------------------------------------------------

    def set_online(self, online: bool, now: float) -> None:
        """Flip liveness, maintaining uptime accounting.

        Idempotent: setting the current state again is a no-op.
        """
        if online == self.online:
            return
        if self.online:
            self.total_online_time += now - self.last_state_change
        else:
            self.sessions += 1
        self.online = online
        self.last_state_change = now

    def uptime_fraction(self, now: float) -> float:
        """Fraction of [0, now] this node was online."""
        if now <= 0:
            return 1.0 if self.online else 0.0
        total = self.total_online_time
        if self.online:
            total += now - self.last_state_change
        return total / now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.online else "down"
        return f"Node({self.node_id!r}, {self.node_class}, {state})"
