"""Integration tests: the mining network, consensus, and attacks."""

import pytest

from repro.chain import (
    BlockchainNetwork,
    ConsensusParams,
    MajorityAttack,
    Mempool,
    TxKind,
    catch_up_probability,
    double_spend_success_probability,
    make_transaction,
)
from repro.chain.ledger import LedgerRules, LedgerState
from repro.crypto import generate_keypair
from repro.errors import ChainError, InvalidTransactionError
from repro.sim import RngStreams, Simulator

FAST = ConsensusParams(
    target_block_interval=10.0, retarget_interval=20, initial_difficulty=100.0
)


def make_network(seed=1, propagation_delay=0.5, **kwargs):
    sim = Simulator()
    streams = RngStreams(seed)
    network = BlockchainNetwork(
        sim, streams, params=FAST, propagation_delay=propagation_delay, **kwargs
    )
    return sim, network


class TestMempool:
    def test_add_and_select(self):
        alice = generate_keypair("mp-alice")
        state = LedgerState()
        state._credit(alice.public_key, 100.0)
        pool = Mempool()
        t1 = make_transaction(alice, TxKind.PAY, {"to": "b", "amount": 1.0}, 0, fee=0.1)
        t2 = make_transaction(alice, TxKind.PAY, {"to": "b", "amount": 1.0}, 1, fee=0.5)
        assert pool.add(t1)
        assert pool.add(t2)
        assert not pool.add(t1)  # duplicate
        selected = pool.select(state, 1, LedgerRules())
        # Both selected, nonce order respected despite t2's higher fee.
        assert [t.nonce for t in selected] == [0, 1]

    def test_select_skips_conflicting_registration(self):
        a = generate_keypair("mp-a")
        b = generate_keypair("mp-b")
        state = LedgerState()
        state._credit(a.public_key, 10.0)
        state._credit(b.public_key, 10.0)
        pool = Mempool()
        pool.add(make_transaction(a, TxKind.NAME_REGISTER, {"name": "n", "value": 1}, 0, fee=0.2))
        pool.add(make_transaction(b, TxKind.NAME_REGISTER, {"name": "n", "value": 2}, 0, fee=0.1))
        selected = pool.select(state, 1, LedgerRules())
        names = [t for t in selected if t.kind == TxKind.NAME_REGISTER]
        assert len(names) == 1
        assert names[0].sender == a.public_key  # higher fee wins

    def test_drop_invalid_evicts_stale_nonces(self):
        alice = generate_keypair("mp-alice2")
        state = LedgerState()
        state._credit(alice.public_key, 10.0)
        state.nonces[alice.public_key] = 5
        pool = Mempool()
        stale = make_transaction(alice, TxKind.PAY, {"to": "b", "amount": 1.0}, 2)
        pool.add(stale)
        assert pool.drop_invalid(state, 1, LedgerRules()) == 1
        assert len(pool) == 0

    def test_coinbase_not_admitted(self):
        from repro.chain.transaction import make_coinbase

        pool = Mempool()
        with pytest.raises(InvalidTransactionError):
            pool.add(make_coinbase("m", 50.0, 1))


class TestMiningNetwork:
    def test_miners_converge_to_consensus(self):
        sim, network = make_network(seed=3)
        for i in range(4):
            network.add_participant(f"miner{i}", hashrate=10.0)
        network.start()
        sim.run(until=2000.0)
        # Allow propagation to settle: stop mining, drain in-flight blocks.
        for p in network.participants():
            p.stop_mining()
        sim.run(until=sim.now + 10.0)
        assert network.in_consensus()
        heights = [p.chain.height for p in network.participants()]
        assert min(heights) > 50  # ~10s interval over 2000s

    def test_block_interval_tracks_difficulty(self):
        sim, network = make_network(seed=4)
        network.add_participant("solo", hashrate=10.0)
        network.start()
        sim.run(until=5000.0)
        solo = network.participant("solo")
        blocks = solo.chain.main_chain()
        spans = [
            b2.timestamp - b1.timestamp
            for b1, b2 in zip(blocks[1:], blocks[2:])
        ]
        mean_interval = sum(spans) / len(spans)
        # Initial difficulty 100 at hashrate 10 => 10s expected interval.
        assert 5.0 < mean_interval < 20.0

    def test_hashrate_share_predicts_block_share(self):
        sim, network = make_network(seed=5)
        network.add_participant("big", hashrate=30.0)
        network.add_participant("small", hashrate=10.0)
        network.start()
        sim.run(until=20000.0)
        big = network.participant("big").blocks_mined
        small = network.participant("small").blocks_mined
        share = big / (big + small)
        assert 0.65 < share < 0.85  # expected 0.75

    def test_transaction_gets_mined_and_confirmed(self):
        alice = generate_keypair("net-alice")
        sim, network = make_network(seed=6, premine={alice.public_key: 100.0})
        network.add_participant("m1", hashrate=10.0)
        network.add_participant("m2", hashrate=10.0)
        network.start()
        t = make_transaction(alice, TxKind.PAY, {"to": "bob", "amount": 5.0}, 0, fee=0.1)
        network.submit_transaction(t)
        sim.run(until=500.0)
        for p in network.participants():
            height = p.chain.find_transaction(t.txid)
            assert height is not None
            assert p.chain.state_at().balance("bob") == pytest.approx(5.0)

    def test_difficulty_retargets_upward_with_more_hashrate(self):
        sim, network = make_network(seed=7)
        network.add_participant("m", hashrate=100.0)  # 10x the calibrated rate
        network.start()
        sim.run(until=2000.0)
        tip = network.participant("m").chain.tip
        assert tip.difficulty > FAST.initial_difficulty

    def test_start_without_miners_raises(self):
        sim, network = make_network()
        network.add_participant("observer", hashrate=0.0)
        with pytest.raises(ChainError):
            network.start()

    def test_duplicate_participant_rejected(self):
        sim, network = make_network()
        network.add_participant("m")
        with pytest.raises(ChainError):
            network.add_participant("m")

    def test_natural_forks_with_high_propagation_delay(self):
        # Delay comparable to the block interval forces stale blocks.
        sim, network = make_network(seed=8, propagation_delay=5.0)
        for i in range(4):
            network.add_participant(f"m{i}", hashrate=10.0)
        network.start()
        sim.run(until=5000.0)
        assert network.stale_block_count() > 0


class TestMajorityAttack:
    def test_catch_up_probability_analytic(self):
        assert catch_up_probability(0.6, 5) == 1.0
        assert catch_up_probability(0.3, 0) == 1.0
        p = catch_up_probability(0.3, 6)
        assert p == pytest.approx((0.3 / 0.7) ** 6)

    def test_double_spend_probability_monotone(self):
        probs = [double_spend_success_probability(0.3, z) for z in range(1, 8)]
        assert all(a >= b for a, b in zip(probs, probs[1:]))
        assert double_spend_success_probability(0.55, 6) == 1.0

    def test_majority_attacker_rewrites_history(self):
        alice = generate_keypair("atk-alice")
        sim, network = make_network(seed=9, premine={alice.public_key: 100.0})
        honest = network.add_participant("honest", hashrate=10.0)
        attacker = network.add_participant("attacker", hashrate=30.0)
        network.start()
        victim_tx = make_transaction(
            alice, TxKind.NAME_REGISTER, {"name": "victim.id", "value": "v"}, 0,
            fee=0.5,
        )
        network.submit_transaction(victim_tx, origin="honest")
        sim.run(until=300.0)  # let it confirm on the honest chain
        assert honest.chain.find_transaction(victim_tx.txid) is not None

        steal = make_transaction(
            attacker.keypair, TxKind.NAME_REGISTER,
            {"name": "victim.id", "value": "stolen"}, 0, fee=0.5,
        )
        attack = MajorityAttack(network, attacker)
        outcome = attack.run(
            victim_tx.txid, reference=honest, horizon=3000.0, release_lead=2,
            conflicting_tx=steal,
        )
        assert outcome.succeeded
        assert outcome.victim_tx_erased
        # The name now belongs to the attacker in consensus state.
        entry = honest.chain.state_at().live_name("victim.id", honest.chain.height)
        assert entry is not None
        assert entry.owner == attacker.keypair.public_key

    def test_minority_attacker_usually_fails(self):
        alice = generate_keypair("atk-alice2")
        sim, network = make_network(seed=10, premine={alice.public_key: 100.0})
        honest = network.add_participant("honest", hashrate=40.0)
        attacker = network.add_participant("attacker", hashrate=5.0)
        network.start()
        victim_tx = make_transaction(
            alice, TxKind.PAY, {"to": "bob", "amount": 1.0}, 0, fee=0.5
        )
        network.submit_transaction(victim_tx, origin="honest")
        sim.run(until=300.0)
        attack = MajorityAttack(network, attacker)
        outcome = attack.run(
            victim_tx.txid, reference=honest, horizon=2000.0, release_lead=3
        )
        assert not outcome.succeeded
        assert honest.chain.find_transaction(victim_tx.txid) is not None

    def test_withholding_blocks_stay_private_until_release(self):
        sim, network = make_network(seed=11)
        honest = network.add_participant("honest", hashrate=10.0)
        lurker = network.add_participant("lurker", hashrate=10.0)
        network.start()
        sim.run(until=200.0)
        lurker.begin_withholding()
        sim.run(until=400.0)
        assert lurker.private_chain_length > 0
        private_block_ids = [b.block_id for b in lurker._private_blocks]
        # Honest node has not seen any private block.
        assert not any(honest.chain.has_block(b) for b in private_block_ids)
        lurker.release_private_chain()
        sim.run(until=sim.now + 5.0)
        # After release, honest has received them all (adopted or not).
        assert all(honest.chain.has_block(b) for b in private_block_ids)


class TestMempoolIntrospection:
    def test_contains_and_pending_order(self):
        alice = generate_keypair("gap-alice")
        pool = Mempool()
        low = make_transaction(alice, TxKind.PAY, {"to": "x", "amount": 1}, 0, fee=0.1)
        high = make_transaction(alice, TxKind.PAY, {"to": "x", "amount": 1}, 1, fee=0.9)
        pool.add(low)
        pool.add(high)
        assert low.txid in pool
        assert len(pool) == 2
        assert pool.pending()[0].fee == 0.9  # fee-descending

    def test_full_pool_rejects(self):
        alice = generate_keypair("gap-alice2")
        pool = Mempool(max_size=1)
        t1 = make_transaction(alice, TxKind.PAY, {"to": "x", "amount": 1}, 0)
        t2 = make_transaction(alice, TxKind.PAY, {"to": "x", "amount": 1}, 1)
        assert pool.add(t1)
        assert not pool.add(t2)
        assert pool.rejected == 1

    def test_remove(self):
        alice = generate_keypair("gap-alice3")
        pool = Mempool()
        tx = make_transaction(alice, TxKind.PAY, {"to": "x", "amount": 1}, 0)
        pool.add(tx)
        pool.remove(tx.txid)
        assert tx.txid not in pool
