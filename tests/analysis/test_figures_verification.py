"""Tests for ASCII figures and the reproduction self-check."""

import pytest

from repro.analysis import ascii_plot, sparkline, verify_reproduction
from repro.errors import ReproError


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_values_monotone_blocks(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            sparkline([])


class TestAsciiPlot:
    def test_plot_contains_markers_and_axes(self):
        out = ascii_plot([0, 1, 2, 3], [0, 1, 4, 9], width=20, height=8,
                         x_label="t", y_label="v")
        assert "*" in out
        assert "+" in out  # axis corner
        assert "v vs t" in out
        assert len(out.splitlines()) == 8 + 3

    def test_extremes_labeled(self):
        out = ascii_plot([0, 10], [0.0, 1.0], width=20, height=6)
        assert "1" in out and "0" in out

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ReproError):
            ascii_plot([1, 2], [1], width=20, height=6)

    def test_too_small_rejected(self):
        with pytest.raises(ReproError):
            ascii_plot([1], [1], width=2, height=2)

    def test_single_point(self):
        out = ascii_plot([1], [1], width=12, height=4)
        assert "*" in out


class TestVerifyReproduction:
    def test_all_targets_pass(self):
        rows = verify_reproduction()
        failing = [row for row in rows if row["status"] != "PASS"]
        assert failing == [], failing

    def test_covers_every_major_experiment(self):
        targets = " ".join(row["target"] for row in rows_cache())
        for marker in ("E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"):
            assert marker in targets


_rows = None


def rows_cache():
    global _rows
    if _rows is None:
        _rows = verify_reproduction()
    return _rows
