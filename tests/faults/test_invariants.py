"""InvariantHarness sweeps, built-in invariants, and violation capture."""

import pytest

from repro.errors import FaultError, InvariantViolation
from repro.faults import (
    FaultInjector,
    FaultPlan,
    Invariant,
    InvariantHarness,
    Partition,
    eventually,
    message_conservation,
    monotonic,
    no_double_resume,
    read_your_writes,
)
from repro.net import ConstantLatency, Network
from repro.obs import Tracer, observe
from repro.sim import RngStreams, Simulator


def build(tracer=None):
    sim = Simulator(tracer=tracer)
    streams = RngStreams(1)
    network = Network(sim, streams, latency=ConstantLatency(0.05))
    network.create_node("a")
    network.create_node("b")
    return sim, streams, network


def always_fails(message="boom"):
    return Invariant(
        name="always_fails", description="test stub",
        check=lambda ctx: (message, {"k": 1}),
    )


class TestHarnessMechanics:
    def test_periodic_sweeps_and_finish(self):
        sim, _, network = build()
        harness = InvariantHarness(sim, network, interval=10.0)
        harness.add(message_conservation())
        harness.start()
        sim.run(until=35.0)
        violations = harness.finish()
        assert violations == []
        # 3 periodic sweeps (t=10,20,30) + 1 final
        assert harness.checks_run == 4

    def test_invalid_interval_rejected(self):
        sim, _, network = build()
        with pytest.raises(FaultError):
            InvariantHarness(sim, network, interval=0.0)

    def test_duplicate_invariant_rejected(self):
        sim, _, network = build()
        harness = InvariantHarness(sim, network)
        harness.add(message_conservation())
        with pytest.raises(FaultError):
            harness.add(message_conservation())

    def test_double_start_rejected(self):
        sim, _, network = build()
        harness = InvariantHarness(sim, network)
        harness.start()
        with pytest.raises(FaultError):
            harness.start()

    def test_violation_recorded_once_not_per_sweep(self):
        sim, _, network = build()
        harness = InvariantHarness(sim, network, interval=5.0)
        harness.add(always_fails())
        harness.start()
        sim.run(until=50.0)
        violations = harness.finish()
        assert len(violations) == 1
        violation = violations[0]
        assert violation.name == "always_fails"
        assert violation.at == 5.0
        assert violation.details == {"k": 1}

    def test_strict_mode_raises(self):
        sim, _, network = build()
        harness = InvariantHarness(sim, network, interval=5.0, strict=True)
        harness.add(always_fails())
        harness.start()
        with pytest.raises(InvariantViolation):
            sim.run(until=10.0)

    def test_finish_idempotent(self):
        sim, _, network = build()
        harness = InvariantHarness(sim, network)
        harness.add(always_fails())
        harness.start()
        sim.run(until=1.0)
        assert harness.finish() == harness.finish()

    def test_trace_events_emitted(self):
        tracer = Tracer()
        sim, _, network = build(tracer=tracer)
        harness = InvariantHarness(sim, network, interval=5.0)
        harness.add(message_conservation())
        harness.add(always_fails())
        harness.start()
        sim.run(until=6.0)
        harness.finish()
        assert tracer.count("invariant_checked") == 2  # one sweep + final
        violated = list(tracer.iter_kind("invariant_violated"))
        assert len(violated) == 1
        assert violated[0]["name"] == "always_fails"
        assert violated[0]["d_k"] == 1


class TestMessageConservation:
    def test_holds_through_lossy_traffic(self):
        sim, _, network = build()
        network = Network(sim.__class__(), RngStreams(3), loss_rate=0.3)
        # fresh sim to keep it simple
        sim = network.sim
        network.create_node("a")
        network.create_node("b")
        network.node("b").register_handler(
            "m", lambda node, payload, sender: None
        )
        for i in range(50):
            sim.schedule(float(i), network.send, "a", "b", "m", i)
        harness = InvariantHarness(sim, network, interval=7.0)
        harness.add(message_conservation())
        harness.start()
        sim.run(until=80.0)
        assert harness.finish() == []
        flow = network.flow_snapshot()
        assert flow["sent"] == 50
        assert flow["in_flight"] == 0
        assert flow["delivered"] + flow["dropped"] == 50

    def test_catches_broken_accounting(self):
        """Mutation smoke at the unit level: corrupt one counter."""
        sim, _, network = build()
        network._flow_sent += 3  # repro: noqa — simulating a lost update
        harness = InvariantHarness(sim, network)
        harness.add(message_conservation())
        harness.start()
        sim.run(until=1.0)
        violations = harness.finish()
        assert len(violations) == 1
        assert "sent=3" in violations[0].message


class TestNoDoubleResume:
    def test_clean_run_passes(self):
        sim, _, network = build()

        def proc():
            yield 1.0

        sim.spawn(proc())
        harness = InvariantHarness(sim, network)
        harness.add(no_double_resume())
        harness.start()
        sim.run(until=5.0)
        assert harness.finish() == []

    def test_stale_resume_detected(self):
        sim, _, network = build()

        def proc():
            yield 1.0

        process = sim.spawn(proc())
        sim.run(until=2.0)
        process._resume(None)  # simulate a leaked subscription firing
        harness = InvariantHarness(sim, network)
        harness.add(no_double_resume())
        harness.start()
        violations = harness.finish()
        assert len(violations) == 1
        assert violations[0].details == {"stale_resumes": 1}


class TestMonotonic:
    def test_rising_gauge_passes(self):
        sim, _, network = build()
        values = iter([1.0, 2.0, 2.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0])
        harness = InvariantHarness(sim, network, interval=1.0)
        harness.add(monotonic("gauge", lambda ctx: next(values)))
        harness.start()
        sim.run(until=4.5)
        assert harness.finish() == []

    def test_decrease_flagged(self):
        sim, _, network = build()
        values = iter([5.0, 3.0])
        harness = InvariantHarness(sim, network, interval=1.0)
        harness.add(monotonic("gauge", lambda ctx: next(values)))
        harness.start()
        sim.run(until=2.5)
        violations = harness.finish()
        assert len(violations) == 1
        assert violations[0].details == {"previous": 5.0, "current": 3.0}


class TestEventually:
    def test_vacuous_before_deadline(self):
        sim, _, network = build()
        harness = InvariantHarness(sim, network, interval=1.0)
        harness.add(eventually("live", deadline=100.0,
                               predicate=lambda ctx: False))
        harness.start()
        sim.run(until=5.0)
        # finish() happens at t=5 < deadline: still vacuous
        assert harness.finish() == []

    def test_violated_after_deadline(self):
        sim, _, network = build()
        harness = InvariantHarness(sim, network, interval=1.0)
        harness.add(eventually("live", deadline=3.0,
                               predicate=lambda ctx: False))
        harness.start()
        sim.run(until=5.0)
        violations = harness.finish()
        assert len(violations) == 1
        assert violations[0].details == {"deadline": 3.0}

    def test_satisfied_predicate_passes(self):
        sim, _, network = build()
        harness = InvariantHarness(sim, network, interval=1.0)
        harness.add(eventually("live", deadline=3.0,
                               predicate=lambda ctx: True))
        harness.start()
        sim.run(until=5.0)
        assert harness.finish() == []


class TestReadYourWrites:
    def _harness(self, sim, network, injector, probe_log):
        def probe(ctx):
            probe_log.append(ctx.now)
            return None

        harness = InvariantHarness(sim, network, injector, interval=5.0)
        harness.add(read_your_writes(probe, grace=10.0))
        return harness

    def test_probe_skipped_during_partition_and_grace(self):
        sim, streams, network = build()
        plan = FaultPlan([Partition((("a",), ("b",)), at=7.0, heal_at=23.0)])
        injector = FaultInjector(sim, network, plan, streams)
        probe_log = []
        harness = self._harness(sim, network, injector, probe_log)
        injector.arm()
        harness.start()
        sim.run(until=50.0)
        harness.finish()
        # Partition open [7, 23); grace until 33.  Sweeps at 5,10,...,50
        # plus the final check at t=50.
        assert probe_log == [5.0, 35.0, 40.0, 45.0, 50.0, 50.0]

    def test_probe_failure_after_heal_is_violation(self):
        sim, streams, network = build()
        plan = FaultPlan([Partition((("a",), ("b",)), at=1.0, heal_at=2.0)])
        injector = FaultInjector(sim, network, plan, streams)
        harness = InvariantHarness(sim, network, injector, interval=5.0)
        harness.add(read_your_writes(lambda ctx: "stale read", grace=1.0))
        injector.arm()
        harness.start()
        sim.run(until=10.0)
        violations = harness.finish()
        assert len(violations) == 1
        assert violations[0].message == "stale read"


class TestAmbientObservation:
    def test_harness_traces_through_observe_block(self):
        tracer = Tracer()
        with observe(tracer=tracer):
            sim, _, network = build()
            harness = InvariantHarness(sim, network, interval=2.0)
            harness.add(message_conservation())
            harness.start()
            sim.run(until=5.0)
            harness.finish()
        assert tracer.count("invariant_checked") >= 2
