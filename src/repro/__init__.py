"""feudalsim — an executable reproduction of
"The Barriers to Overthrowing Internet Feudalism" (HotNets 2017).

The paper is a position paper: it surveys re-decentralization efforts across
four problem areas (naming, group communication, data storage, web
applications) and performs one back-of-the-envelope feasibility analysis.
This library turns that analysis — and every qualitative claim around it —
into executable, measurable simulations:

* :mod:`repro.core` — the paper's conceptual contribution: the
  distribution x control axes, the project taxonomy (Table 1), the
  desirable-property scorecards, and the infrastructure feasibility model
  (Table 3).
* :mod:`repro.sim`, :mod:`repro.net`, :mod:`repro.crypto`,
  :mod:`repro.chain`, :mod:`repro.dht`, :mod:`repro.gossip` — substrates
  built from scratch: a deterministic discrete-event simulator, a network
  model with churn, a proof-of-work blockchain, and a Kademlia DHT.
* :mod:`repro.naming`, :mod:`repro.groupcomm`, :mod:`repro.storage`,
  :mod:`repro.webapps` — one simulated system family per problem area the
  paper surveys, each with centralized baselines and attack models.
* :mod:`repro.analysis` — experiment drivers that regenerate the paper's
  tables and the derived experiments documented in DESIGN.md.
"""

__version__ = "1.0.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
