"""Table 2 as machine-readable system profiles.

Each surveyed storage system is described by its blockchain usage and
incentive scheme (the paper's two columns) plus the concrete mechanism in
this library that models it.  The Table 2 bench *runs* each profile's
mechanism once (a contract, a payment, a proof round) before printing the
row — the table is behaviourally checked, not transcribed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import StorageError
from repro.storage.marketplace import ProofKind

__all__ = ["BlockchainUsage", "StorageSystemProfile", "TABLE2_SYSTEMS", "table2_rows", "profile_for"]


class BlockchainUsage:
    NONE = "None"
    CONTRACTS = "Blockchain-based contract"
    PAYMENTS = "Facilitate payments"
    FULL = "Naming, payments, and availability insurance"
    NAME_BINDING = "Bind domain name, public key, and zone file hash"


@dataclass(frozen=True)
class StorageSystemProfile:
    """One Table 2 row, with the simulation hooks that exercise it."""

    name: str
    blockchain_usage: str
    incentive_scheme: str
    proof_kind: str           # which audit game models the incentive
    uses_chain_rail: bool     # contracts/payments on chain vs direct ledger
    notes: str = ""

    def __post_init__(self) -> None:
        if self.proof_kind not in ProofKind.ALL:
            raise StorageError(
                f"{self.name}: unknown proof kind {self.proof_kind!r}"
            )


TABLE2_SYSTEMS: Tuple[StorageSystemProfile, ...] = (
    StorageSystemProfile(
        name="IPFS",
        blockchain_usage=BlockchainUsage.NONE,
        incentive_scheme="Bitswap Ledgers",
        proof_kind=ProofKind.NONE,
        uses_chain_rail=False,
        notes="Pairwise barter accounting; no global audits",
    ),
    StorageSystemProfile(
        name="MaidSafe",
        blockchain_usage=BlockchainUsage.NONE,
        incentive_scheme="Proof-of-resource / Distributed transaction",
        proof_kind=ProofKind.STORAGE,
        uses_chain_rail=False,
        notes="Resource proofs without a global chain",
    ),
    StorageSystemProfile(
        name="Sia",
        blockchain_usage=BlockchainUsage.CONTRACTS,
        incentive_scheme="Proof-of-storage",
        proof_kind=ProofKind.STORAGE,
        uses_chain_rail=True,
        notes="File contracts recorded on its blockchain",
    ),
    StorageSystemProfile(
        name="Storj",
        blockchain_usage=BlockchainUsage.PAYMENTS + " (storjcoin)",
        incentive_scheme="Proof-of-retrievability",
        proof_kind=ProofKind.RETRIEVABILITY,
        uses_chain_rail=True,
        notes="Audits sample chunks; payments in storjcoin",
    ),
    StorageSystemProfile(
        name="Swarm",
        blockchain_usage=BlockchainUsage.FULL + " (Ethereum)",
        incentive_scheme="Proof-of-storage: SWEAR",
        proof_kind=ProofKind.STORAGE,
        uses_chain_rail=True,
        notes="Ethereum for name resolution, payments, insurance",
    ),
    StorageSystemProfile(
        name="Filecoin",
        blockchain_usage=BlockchainUsage.PAYMENTS + " (filecoin)",
        incentive_scheme="Proof-of-replication / Proof-of-spacetime / Proof-of-work",
        proof_kind=ProofKind.REPLICATION,
        uses_chain_rail=True,
        notes="Sealed replicas audited under deadlines over time",
    ),
    StorageSystemProfile(
        name="Blockstack",
        blockchain_usage=BlockchainUsage.NAME_BINDING,
        incentive_scheme="N/A",
        proof_kind=ProofKind.NONE,
        uses_chain_rail=True,
        notes="Storage delegated to user-chosen backends; chain only names",
    ),
)


def table2_rows() -> List[Dict[str, str]]:
    """Regenerate Table 2: system -> blockchain usage, incentive scheme."""
    return [
        {
            "system": profile.name,
            "blockchain_usage": profile.blockchain_usage,
            "incentive_scheme": profile.incentive_scheme,
        }
        for profile in TABLE2_SYSTEMS
    ]


def profile_for(name: str) -> StorageSystemProfile:
    for profile in TABLE2_SYSTEMS:
        if profile.name.lower() == name.lower():
            return profile
    raise StorageError(f"no Table 2 profile named {name!r}")
