"""Declarative fault plans: timed fault events compiled by the injector.

A :class:`FaultPlan` is an ordered list of fault events, each a frozen
dataclass naming *what* goes wrong and *when*:

* :class:`Partition` — split the network into groups at ``at``; heal at
  ``heal_at`` (``None`` = never heals).
* :class:`Crash` — force one node offline at ``at``; restart at
  ``restart_at`` (``None`` = never restarts).
* :class:`DropBurst` — extra message-loss probability over a window.
* :class:`LatencySpike` — multiply all link delays over a window.
* :class:`Corrupt` — receiver-side corruption (checksum-reject drop)
  probability over a window.
* :class:`Censor` — a country-scale censorship campaign: an asymmetric
  border block over an ``inside`` node set with an endpoint blocklist,
  protocol-fingerprint detection of relays, and delayed re-blocking.

Plans are pure data: JSON-serializable (:meth:`FaultPlan.to_dict` /
:meth:`FaultPlan.from_dict`, plus file helpers), validated on
construction, and hashable into a stable fingerprint so two runs of the
same (plan, seed) pair are comparable byte-for-byte.  All probabilistic
behaviour lives in the injector/transport, driven by named RNG streams
— a plan itself contains no randomness.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import FaultError

__all__ = [
    "Censor",
    "Corrupt",
    "Crash",
    "DropBurst",
    "FaultPlan",
    "LatencySpike",
    "Partition",
]

#: A (start, end) window in simulated seconds.
Window = Tuple[float, float]


def _check_time(label: str, value: float) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise FaultError(f"{label} must be a number, got {value!r}")
    if value < 0:
        raise FaultError(f"{label} must be >= 0, got {value}")
    return float(value)


def _check_window(label: str, window: Sequence[float]) -> Window:
    try:
        start, end = window
    except (TypeError, ValueError):
        raise FaultError(
            f"{label} must be a (start, end) pair, got {window!r}"
        ) from None
    start = _check_time(f"{label} start", start)
    end = _check_time(f"{label} end", end)
    if end <= start:
        raise FaultError(
            f"{label} must end after it starts, got ({start}, {end})"
        )
    return (start, end)


def _check_prob(label: str, value: float) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise FaultError(f"{label} must be a number, got {value!r}")
    if not 0 < value < 1:
        raise FaultError(f"{label} must be in (0, 1), got {value}")
    return float(value)


@dataclass(frozen=True)
class Partition:
    """Split the network into ``groups`` at ``at``; heal at ``heal_at``.

    ``groups`` is a tuple of tuples of node ids; nodes named in no group
    form one implicit extra group (the semantics of
    :meth:`~repro.net.transport.Network.partition`).  ``heal_at=None``
    means the partition is never healed by this plan.
    """

    groups: Tuple[Tuple[str, ...], ...]
    at: float
    heal_at: Optional[float] = None

    def __post_init__(self) -> None:
        groups = tuple(tuple(str(n) for n in group) for group in self.groups)
        if not groups or not any(groups):
            raise FaultError("Partition needs at least one non-empty group")
        object.__setattr__(self, "groups", groups)
        object.__setattr__(self, "at", _check_time("Partition.at", self.at))
        if self.heal_at is not None:
            heal_at = _check_time("Partition.heal_at", self.heal_at)
            if heal_at <= self.at:
                raise FaultError(
                    f"Partition.heal_at must be after at:"
                    f" {heal_at} <= {self.at}"
                )
            object.__setattr__(self, "heal_at", heal_at)

    @property
    def kind(self) -> str:
        return "partition"

    def node_ids(self) -> Iterator[str]:
        for group in self.groups:
            yield from group

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": "partition",
            "groups": [list(group) for group in self.groups],
            "at": self.at,
        }
        if self.heal_at is not None:
            out["heal_at"] = self.heal_at
        return out


@dataclass(frozen=True)
class Crash:
    """Force ``node`` offline at ``at``; restart at ``restart_at``.

    On a node with an attached :class:`~repro.net.churn.ChurnProcess`
    the crash suspends the renewal clock (churn cannot revive a crashed
    node); on a plain node it is a direct liveness flip.
    ``restart_at=None`` means the node never comes back.
    """

    node: str
    at: float
    restart_at: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.node or not isinstance(self.node, str):
            raise FaultError(f"Crash.node must be a node id, got {self.node!r}")
        object.__setattr__(self, "at", _check_time("Crash.at", self.at))
        if self.restart_at is not None:
            restart_at = _check_time("Crash.restart_at", self.restart_at)
            if restart_at <= self.at:
                raise FaultError(
                    f"Crash.restart_at must be after at:"
                    f" {restart_at} <= {self.at}"
                )
            object.__setattr__(self, "restart_at", restart_at)

    @property
    def kind(self) -> str:
        return "crash"

    def node_ids(self) -> Iterator[str]:
        yield self.node

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": "crash", "node": self.node, "at": self.at}
        if self.restart_at is not None:
            out["restart_at"] = self.restart_at
        return out


@dataclass(frozen=True)
class _WindowFault:
    """Shared shape of the three windowed transport faults."""

    window: Window

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "window",
            _check_window(f"{type(self).__name__}.window", self.window),
        )

    @property
    def at(self) -> float:
        return self.window[0]

    @property
    def until(self) -> float:
        return self.window[1]

    def node_ids(self) -> Iterator[str]:
        return iter(())


@dataclass(frozen=True)
class DropBurst(_WindowFault):
    """Extra independent per-message drop probability over ``window``."""

    prob: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(
            self, "prob", _check_prob("DropBurst.prob", self.prob)
        )

    @property
    def kind(self) -> str:
        return "drop_burst"

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "drop_burst", "prob": self.prob,
                "window": list(self.window)}


@dataclass(frozen=True)
class LatencySpike(_WindowFault):
    """Multiply every link delay by ``factor`` over ``window``."""

    factor: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not isinstance(self.factor, (int, float)) or isinstance(
            self.factor, bool
        ):
            raise FaultError(
                f"LatencySpike.factor must be a number, got {self.factor!r}"
            )
        if self.factor <= 1.0:
            raise FaultError(
                f"LatencySpike.factor must be > 1, got {self.factor}"
            )
        object.__setattr__(self, "factor", float(self.factor))

    @property
    def kind(self) -> str:
        return "latency_spike"

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "latency_spike", "factor": self.factor,
                "window": list(self.window)}


@dataclass(frozen=True)
class Corrupt(_WindowFault):
    """Per-message corruption probability over ``window``.

    A corrupted message is rejected at the receiver (checksum failure)
    and dropped with reason ``"corrupt"``; RPC callers see a timeout.
    """

    prob: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(
            self, "prob", _check_prob("Corrupt.prob", self.prob)
        )

    @property
    def kind(self) -> str:
        return "corrupt"

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "corrupt", "prob": self.prob,
                "window": list(self.window)}


#: Directions a :class:`Censor` campaign may hard-block.
CENSOR_DIRECTIONS = ("outbound", "both")


@dataclass(frozen=True)
class Censor:
    """A national-firewall campaign over a bordered node set.

    ``inside`` names the nodes behind the border; ``blocked`` names
    outside endpoints on the censor's initial blocklist (the banned
    services).  While the campaign is active:

    * a message crossing the border to/from a blocklisted endpoint is
      hard-dropped when it travels in the blocked ``direction``
      (``"outbound"``: inside→outside blocked, outside→inside degraded
      with probability ``degrade_prob``; ``"both"``: hard-blocked in
      both directions);
    * cross-border traffic to endpoints *not* on the blocklist passes —
      that is the gap circumvention relays live in;
    * every crossing message whose method matches one of the
      ``fingerprints`` prefixes is observed by the censor's DPI; each
      observation is detected with probability ``detect_prob`` (drawn
      from the dedicated ``faults.censor`` stream), and a detected
      relay joins the blocklist ``reblock_delay`` seconds later.

    The campaign heals at ``heal_at`` (``None`` = never).  Like
    :class:`Partition`, overlapping ``Censor`` events do not compose:
    the most recent campaign wins and a replaced campaign's heal is a
    no-op.
    """

    inside: Tuple[str, ...]
    at: float
    heal_at: Optional[float] = None
    blocked: Tuple[str, ...] = ()
    direction: str = "outbound"
    degrade_prob: float = 0.0
    fingerprints: Tuple[str, ...] = ()
    detect_prob: float = 0.0
    reblock_delay: float = 0.0

    def __post_init__(self) -> None:
        inside = tuple(str(n) for n in self.inside)
        if not inside:
            raise FaultError("Censor needs a non-empty inside set")
        object.__setattr__(self, "inside", inside)
        blocked = tuple(str(n) for n in self.blocked)
        overlap = set(inside) & set(blocked)
        if overlap:
            raise FaultError(
                f"Censor.blocked endpoints must be outside the border:"
                f" {sorted(overlap)}"
            )
        object.__setattr__(self, "blocked", blocked)
        object.__setattr__(self, "at", _check_time("Censor.at", self.at))
        if self.heal_at is not None:
            heal_at = _check_time("Censor.heal_at", self.heal_at)
            if heal_at <= self.at:
                raise FaultError(
                    f"Censor.heal_at must be after at: {heal_at} <= {self.at}"
                )
            object.__setattr__(self, "heal_at", heal_at)
        if self.direction not in CENSOR_DIRECTIONS:
            raise FaultError(
                f"Censor.direction must be one of {CENSOR_DIRECTIONS},"
                f" got {self.direction!r}"
            )
        for label, prob in (("degrade_prob", self.degrade_prob),
                            ("detect_prob", self.detect_prob)):
            if not isinstance(prob, (int, float)) or isinstance(prob, bool):
                raise FaultError(
                    f"Censor.{label} must be a number, got {prob!r}"
                )
            if not 0 <= prob <= 1:
                raise FaultError(
                    f"Censor.{label} must be in [0, 1], got {prob}"
                )
            object.__setattr__(self, label, float(prob))
        fingerprints = tuple(str(f) for f in self.fingerprints)
        if any(not f for f in fingerprints):
            raise FaultError("Censor.fingerprints must be non-empty prefixes")
        object.__setattr__(self, "fingerprints", fingerprints)
        object.__setattr__(
            self, "reblock_delay",
            _check_time("Censor.reblock_delay", self.reblock_delay),
        )

    @property
    def kind(self) -> str:
        return "censor"

    def node_ids(self) -> Iterator[str]:
        yield from self.inside
        yield from self.blocked

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": "censor",
            "inside": list(self.inside),
            "at": self.at,
            "blocked": list(self.blocked),
            "direction": self.direction,
            "degrade_prob": self.degrade_prob,
            "fingerprints": list(self.fingerprints),
            "detect_prob": self.detect_prob,
            "reblock_delay": self.reblock_delay,
        }
        if self.heal_at is not None:
            out["heal_at"] = self.heal_at
        return out


#: Every concrete fault-event type, keyed by its serialized ``kind``.
_EVENT_TYPES = {
    "partition": Partition,
    "crash": Crash,
    "drop_burst": DropBurst,
    "latency_spike": LatencySpike,
    "corrupt": Corrupt,
    "censor": Censor,
}

FaultEvent = Any  # union of the six dataclasses above


class FaultPlan:
    """An ordered, validated list of fault events.

    Parameters
    ----------
    events:
        Any mix of :class:`Partition` / :class:`Crash` /
        :class:`DropBurst` / :class:`LatencySpike` / :class:`Corrupt`.
    name:
        A label carried into traces and reports (presets name
        themselves; file-loaded plans default to the file's ``name``).
    """

    def __init__(self, events: Sequence[FaultEvent], name: str = "custom"):
        events = list(events)
        for event in events:
            if type(event) not in _EVENT_TYPES.values():
                raise FaultError(
                    f"not a fault event: {event!r} (expected one of"
                    f" {', '.join(sorted(_EVENT_TYPES))})"
                )
        if not name or not isinstance(name, str):
            raise FaultError(f"plan name must be a non-empty string: {name!r}")
        # Stable order: by start time, then declaration order.
        self.events: List[FaultEvent] = sorted(
            events, key=lambda e: e.at
        )
        self.name = name

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def node_ids(self) -> List[str]:
        """Every node id the plan references, sorted and de-duplicated."""
        out = set()
        for event in self.events:
            out.update(event.node_ids())
        return sorted(out)

    @property
    def end_time(self) -> float:
        """Simulated time of the last scheduled plan action."""
        latest = 0.0
        for event in self.events:
            latest = max(latest, event.at)
            heal = getattr(event, "heal_at", None)
            restart = getattr(event, "restart_at", None)
            until = getattr(event, "until", None)
            for t in (heal, restart, until):
                if t is not None:
                    latest = max(latest, t)
        return latest

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "events": [event.to_dict() for event in self.events],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    def fingerprint(self) -> str:
        """A canonical string identifying the plan's exact content."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultError(f"plan must be an object, got {type(data).__name__}")
        raw_events = data.get("events")
        if not isinstance(raw_events, list):
            raise FaultError("plan needs an 'events' list")
        events = []
        for index, raw in enumerate(raw_events):
            if not isinstance(raw, dict):
                raise FaultError(f"event {index} must be an object")
            kind = raw.get("kind")
            event_type = _EVENT_TYPES.get(kind)
            if event_type is None:
                raise FaultError(
                    f"event {index} has unknown kind {kind!r}; known:"
                    f" {', '.join(sorted(_EVENT_TYPES))}"
                )
            fields = {k: v for k, v in raw.items() if k != "kind"}
            if kind == "partition" and "groups" in fields:
                fields["groups"] = tuple(
                    tuple(group) for group in fields["groups"]
                )
            if kind == "censor":
                for field_name in ("inside", "blocked", "fingerprints"):
                    if field_name in fields:
                        fields[field_name] = tuple(fields[field_name])
            if "window" in fields:
                fields["window"] = tuple(fields["window"])
            try:
                events.append(event_type(**fields))
            except TypeError as exc:
                raise FaultError(f"event {index} ({kind}): {exc}") from exc
        return cls(events, name=str(data.get("name", "custom")))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise FaultError(f"plan is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            raise FaultError(f"cannot read plan file {path!r}: {exc}") from exc
        return cls.from_json(text)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultPlan({self.name!r}, events={len(self.events)})"
