"""Compile a :class:`~repro.faults.plan.FaultPlan` into simulator events.

The injector is the only component allowed to touch the transport's
fault surface (lint rule FLT001 enforces this): it schedules every plan
event on the simulator at :meth:`FaultInjector.arm` time and, as windows
open and close, recomputes one combined :class:`FaultSurface` for the
network.

Composition rules for overlapping windows:

* ``DropBurst`` / ``Corrupt`` probabilities combine as independent
  hazards: ``1 - prod(1 - p_i)``.
* ``LatencySpike`` factors multiply.
* ``Partition`` events do **not** compose — the simulated network has a
  single partition state, so a later ``Partition`` replaces an earlier
  one (last writer wins).  A ``heal_at`` releases the partition **only
  if its own event is still the active one**: when a later window
  replaced it, the earlier heal is a no-op (no ``network.heal()``, no
  ``last_heal_at`` stamp, no ``fault_healed`` record), so the
  replacement holds until its own heal fires.  ``Censor`` campaigns
  follow the same last-writer-wins + guarded-heal discipline over their
  own single slot (a censor never displaces a partition or vice versa).

Determinism: fault coin flips draw from the dedicated named streams
``faults.drop``, ``faults.corrupt``, ``faults.censor`` (relay
detection) and ``faults.censor.degrade`` (degraded-direction drops), so
opening a window never perturbs the base ``net.loss`` sequence, and the
same (plan, seed) pair replays bit-identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import FaultError
from repro.faults.plan import (
    Censor,
    Corrupt,
    Crash,
    DropBurst,
    FaultPlan,
    LatencySpike,
    Partition,
)
from repro.net.churn import ChurnProcess
from repro.net.transport import CensorSurface, FaultSurface, Network
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules a plan's fault events onto a simulator.

    Parameters
    ----------
    sim / network / streams:
        The simulation fabric the faults act on.
    plan:
        The declarative fault schedule.
    churn:
        Optional mapping of node id to that node's
        :class:`~repro.net.churn.ChurnProcess`.  ``Crash`` events on a
        node with churn suspend its renewal clock (so churn cannot
        revive a crashed node); nodes without churn get a plain
        liveness flip.

    Call :meth:`arm` exactly once, before ``sim.run()``.  All plan
    events are validated and scheduled up front; nothing about the
    injector consults wall-clock time or unseeded randomness.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        plan: FaultPlan,
        streams: RngStreams,
        churn: Optional[Dict[str, ChurnProcess]] = None,
    ):
        self.sim = sim
        self.network = network
        self.plan = plan
        self.churn = dict(churn or {})
        self._armed = False
        # Open transport-fault windows, keyed by plan position so two
        # identical windows stay distinct.
        self._open_drops: List[DropBurst] = []
        self._open_spikes: List[LatencySpike] = []
        self._open_corrupts: List[Corrupt] = []
        self._active_partition: Optional[Partition] = None
        self._active_censor: Optional[Censor] = None
        self._censor_surface: Optional[CensorSurface] = None
        # Relays already detected (or pending reblock) under the active
        # campaign: each relay costs the censor at most one detection.
        self._detected_relays: set = set()
        # Cost counters folded in from healed campaigns (the live
        # surface's counters are added on top in censor_cost()).
        self._censor_cost_base: Dict[str, int] = {
            "blocked_flows": 0, "collateral_flows": 0, "degraded_drops": 0,
        }
        self.relays_reblocked = 0
        # (time, relay) logs across all campaigns — the time-to-reblock
        # measurement censor scenarios report.
        self.detection_log: List[Tuple[float, str]] = []
        self.reblock_log: List[Tuple[float, str]] = []
        self._crashed_nodes: List[str] = []
        self.last_heal_at: Optional[float] = None
        self.injected = 0
        self.healed = 0
        needs_drop = any(isinstance(e, DropBurst) for e in plan)
        needs_corrupt = any(isinstance(e, Corrupt) for e in plan)
        needs_censor = any(isinstance(e, Censor) for e in plan)
        self._drop_rng = streams.stream("faults.drop") if needs_drop else None
        self._corrupt_rng = (
            streams.stream("faults.corrupt") if needs_corrupt else None
        )
        # Detection draws and degraded-direction drops get their own
        # streams so a campaign never perturbs drop/corrupt sequences.
        self._censor_rng = (
            streams.stream("faults.censor") if needs_censor else None
        )
        self._censor_degrade_rng = (
            streams.stream("faults.censor.degrade") if needs_censor else None
        )

    # -- lifecycle -------------------------------------------------------

    def arm(self) -> None:
        """Validate the plan against the network and schedule every event."""
        if self._armed:
            raise FaultError("injector already armed")
        self._armed = True
        for node_id in self.plan.node_ids():
            if not self.network.has_node(node_id):
                raise FaultError(
                    f"plan {self.plan.name!r} references unknown node"
                    f" {node_id!r}"
                )
        for event in self.plan:
            if isinstance(event, Partition):
                self.sim.schedule_at(event.at, self._start_partition, event)
                if event.heal_at is not None:
                    self.sim.schedule_at(
                        event.heal_at, self._heal_partition, event
                    )
            elif isinstance(event, Censor):
                self.sim.schedule_at(event.at, self._start_censor, event)
                if event.heal_at is not None:
                    self.sim.schedule_at(
                        event.heal_at, self._heal_censor, event
                    )
            elif isinstance(event, Crash):
                self.sim.schedule_at(event.at, self._crash, event)
                if event.restart_at is not None:
                    self.sim.schedule_at(event.restart_at, self._restart, event)
            else:  # windowed transport fault
                self.sim.schedule_at(event.at, self._open_window, event)
                self.sim.schedule_at(event.until, self._close_window, event)

    @property
    def partition_active(self) -> bool:
        return self._active_partition is not None

    @property
    def censor_active(self) -> bool:
        return self._active_censor is not None

    @property
    def crashed_nodes(self) -> Tuple[str, ...]:
        """Nodes currently held down by a plan ``Crash``."""
        return tuple(self._crashed_nodes)

    def censor_cost(self) -> Dict[str, int]:
        """The censor's running cost model, summed over all campaigns.

        ``blocked_flows`` counts every hard directional kill,
        ``collateral_flows`` the subset that carried no watched
        fingerprint (innocent traffic the campaign destroyed — the
        collateral-damage curve Garcia Lopez et al. argue censorship
        resistance must be priced against), ``degraded_drops`` the
        probabilistic reverse-direction kills, and ``relays_reblocked``
        how many detected relays the campaign re-blocked.
        """
        totals = dict(self._censor_cost_base)
        surface = self._censor_surface
        if surface is not None:
            for key, value in surface.cost_snapshot().items():
                totals[key] += value
        totals["relays_reblocked"] = self.relays_reblocked
        return totals

    # -- event handlers --------------------------------------------------

    def _start_partition(self, event: Partition) -> None:
        self.network.partition(event.groups)
        self._active_partition = event
        self._record("fault_injected", event)

    def _heal_partition(self, event: Partition) -> None:
        # Last-writer-wins: a later Partition may have replaced `event`,
        # in which case this heal is a no-op — the replacement owns the
        # partition state until its own heal (or never).  Healing
        # unconditionally here would tear down the replacement early,
        # stamp a bogus last_heal_at (prematurely opening gated
        # invariants' grace windows), and record a spurious heal.
        if self._active_partition is not event:
            return
        self.network.heal()
        self._active_partition = None
        self.last_heal_at = self.sim.now
        self._record("fault_healed", event)

    def _start_censor(self, event: Censor) -> None:
        # Last-writer-wins over the single censor slot: a new campaign
        # replaces any open one, but an open campaign's accumulated cost
        # is folded into the totals first so censor_cost() never loses
        # history.
        if self._censor_surface is not None:
            for key, value in self._censor_surface.cost_snapshot().items():
                self._censor_cost_base[key] += value
        surface = CensorSurface(
            inside=event.inside,
            blocked=event.blocked,
            direction=event.direction,
            degrade_prob=event.degrade_prob,
            fingerprints=event.fingerprints,
            degrade_rng=self._censor_degrade_rng,
            on_fingerprint=self._observe_fingerprint,
        )
        self._censor_surface = surface
        self._active_censor = event
        self._detected_relays = set()
        self.network._set_censor_surface(surface)
        self._record("fault_injected", event)

    def _heal_censor(self, event: Censor) -> None:
        # Same guard as _heal_partition: only the active campaign's own
        # heal releases the border.
        if self._active_censor is not event:
            return
        surface = self._censor_surface
        if surface is not None:
            for key, value in surface.cost_snapshot().items():
                self._censor_cost_base[key] += value
        self.network._set_censor_surface(None)
        self._censor_surface = None
        self._active_censor = None
        self._detected_relays = set()
        self.last_heal_at = self.sim.now
        self._record("fault_healed", event)

    def _observe_fingerprint(self, src_id: str, dst_id: str,
                             method: str) -> None:
        """DPI saw one fingerprinted message cross the border.

        The relay is the outside endpoint of the flow.  Each observed
        message of a not-yet-detected relay is an independent detection
        draw from the ``faults.censor`` stream; on success the relay
        joins the blocklist after the campaign's ``reblock_delay``
        (detection is cheap, pushing a rule to the border routers is
        not).
        """
        event = self._active_censor
        surface = self._censor_surface
        rng = self._censor_rng
        if event is None or surface is None or rng is None:
            return
        if event.detect_prob <= 0:
            return
        relay = dst_id if src_id in surface.inside else src_id
        if relay in surface.blocklist or relay in self._detected_relays:
            return
        if rng.random() >= event.detect_prob:
            return
        self._detected_relays.add(relay)
        self.detection_log.append((self.sim.now, relay))
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("censor_detected", t=self.sim.now, relay=relay,
                        method=method, plan=self.plan.name)
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.inc("faults.censor.detected")
        self.sim.schedule(event.reblock_delay, self._apply_reblock,
                          event, relay)

    def _apply_reblock(self, event: Censor, relay: str) -> None:
        # The campaign may have healed (or been replaced) while the
        # block order was in flight — a dead campaign reblocks nothing.
        if self._active_censor is not event:
            return
        surface = self._censor_surface
        if surface is None:  # pragma: no cover - guarded above
            return
        surface.blocklist.add(relay)
        self.relays_reblocked += 1
        self.reblock_log.append((self.sim.now, relay))
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("censor_reblocked", t=self.sim.now, relay=relay,
                        plan=self.plan.name)
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.inc("faults.censor.reblocked")

    def _crash(self, event: Crash) -> None:
        process = self.churn.get(event.node)
        if process is not None:
            process.crash()
        else:
            self.network.node(event.node).set_online(False, self.sim.now)
        if event.node not in self._crashed_nodes:
            self._crashed_nodes.append(event.node)
        self._record("fault_injected", event)

    def _restart(self, event: Crash) -> None:
        process = self.churn.get(event.node)
        if process is not None:
            process.restore()
        else:
            self.network.node(event.node).set_online(True, self.sim.now)
        if event.node in self._crashed_nodes:
            self._crashed_nodes.remove(event.node)
        # A restart is a heal: gated invariants (read_your_writes) must
        # grant their grace period from it, same as partition heals and
        # window closes.
        self.last_heal_at = self.sim.now
        self._record("fault_healed", event)

    def _open_window(self, event) -> None:
        if isinstance(event, DropBurst):
            self._open_drops.append(event)
        elif isinstance(event, LatencySpike):
            self._open_spikes.append(event)
        else:
            self._open_corrupts.append(event)
        self._refresh_surface()
        self._record("fault_injected", event)

    def _close_window(self, event) -> None:
        if isinstance(event, DropBurst):
            self._open_drops.remove(event)
        elif isinstance(event, LatencySpike):
            self._open_spikes.remove(event)
        else:
            self._open_corrupts.remove(event)
        self._refresh_surface()
        self.last_heal_at = self.sim.now
        self._record("fault_healed", event)

    # -- surface maintenance ---------------------------------------------

    def _refresh_surface(self) -> None:
        if not (self._open_drops or self._open_spikes or self._open_corrupts):
            self.network._set_fault_surface(None)
            return
        drop = _combined_prob(e.prob for e in self._open_drops)
        corrupt = _combined_prob(e.prob for e in self._open_corrupts)
        factor = 1.0
        for spike in self._open_spikes:
            factor *= spike.factor
        self.network._set_fault_surface(FaultSurface(
            drop_prob=drop,
            latency_factor=factor,
            corrupt_prob=corrupt,
            drop_rng=self._drop_rng,
            corrupt_rng=self._corrupt_rng,
        ))

    def _record(self, kind: str, event) -> None:
        if kind == "fault_injected":
            self.injected += 1
        else:
            self.healed += 1
        tracer = self.sim.tracer
        if tracer is not None:
            fields = {"t": self.sim.now, "fault": event.kind,
                      "plan": self.plan.name}
            node = getattr(event, "node", None)
            if node is not None:
                fields["node"] = node
            tracer.emit(kind, **fields)
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.inc(f"faults.{'injected' if kind == 'fault_injected' else 'healed'}")


def _combined_prob(probs) -> float:
    """Independent-hazard composition: ``1 - prod(1 - p)``."""
    survive = 1.0
    for p in probs:
        survive *= 1.0 - p
    return 1.0 - survive
