"""CLI behavior of ``python -m repro lint``: exit codes and formats."""

import json
from pathlib import Path

from repro.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures"


class TestLintCommand:
    def test_clean_path_exits_zero(self, capsys):
        assert main(["lint", str(FIXTURES / "clean.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one_with_rule_ids(self, capsys):
        code = main(["lint", str(FIXTURES / "det001_random_import.py")])
        assert code == 1
        assert "DET001" in capsys.readouterr().out

    def test_json_format_emits_schema(self, capsys):
        code = main(["lint", "--format", "json",
                     str(FIXTURES / "err001_broad_except.py")])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert [f["rule"] for f in payload["findings"]] == ["ERR001"]

    def test_rules_filter(self, capsys):
        code = main(["lint", "--rules", "ERR001",
                     str(FIXTURES / "det001_random_import.py")])
        assert code == 0
        capsys.readouterr()

    def test_unknown_rule_exits_two(self, capsys):
        code = main(["lint", "--rules", "NOPE999", str(FIXTURES)])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        code = main(["lint", str(FIXTURES / "no_such_file.py")])
        assert code == 2
        capsys.readouterr()

    def test_list_rules_catalog(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003", "DET004", "DET005",
                        "DET006", "ORD001", "IMP001", "PAR001", "ERR001",
                        "API001", "FLT001", "BEN001"):
            assert rule_id in out

    def test_overlapping_paths_report_findings_once(self, capsys):
        target = str(FIXTURES / "det001_random_import.py")
        main(["lint", "--format", "json", target])
        once = json.loads(capsys.readouterr().out)
        main(["lint", "--format", "json", target, target])
        twice = json.loads(capsys.readouterr().out)
        assert twice["findings"] == once["findings"]

    def test_no_cache_flag_disables_the_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        args = ["lint", "--cache-dir", str(cache_dir), "--no-cache",
                str(FIXTURES / "clean.py")]
        assert main(args) == 0
        capsys.readouterr()
        assert not cache_dir.exists()

    def test_cache_dir_flag_populates_and_reuses(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        args = ["lint", "--cache-dir", str(cache_dir),
                str(FIXTURES / "clean.py")]
        assert main(args) == 0
        cold = capsys.readouterr()
        assert cache_dir.exists() and any(cache_dir.iterdir())
        assert main(args) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "1 cached" in warm.err

    def test_jobs_flag_matches_serial_output(self, capsys):
        main(["lint", "--format", "json", "--jobs", "1", str(FIXTURES)])
        serial = capsys.readouterr().out
        code = main(["lint", "--format", "json", "--jobs", "2",
                     str(FIXTURES)])
        parallel = capsys.readouterr().out
        assert code == 1
        assert parallel == serial
