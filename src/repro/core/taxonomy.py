"""The project taxonomy — the paper's Table 1 as a machine-readable registry.

Each surveyed project is recorded with the decentralization problem(s) it
tackles, its network model, and which simulated system family in this
library models its mechanism.  The Table 1 bench *derives* the table from
this registry instead of printing string constants, and tests check the
registry against the simulated families actually shipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ReproError

__all__ = ["Problem", "NetworkModel", "Project", "PROJECTS", "table1_rows", "projects_for"]


class Problem:
    """The four decentralization problem categories of §3."""

    NAMING = "Naming"
    GROUP_COMMUNICATION = "Group Communication"
    DATA_STORAGE = "Data storage"
    WEB_APPLICATIONS = "Web applications"

    ALL = (NAMING, GROUP_COMMUNICATION, DATA_STORAGE, WEB_APPLICATIONS)


class NetworkModel:
    """How a project organizes its participants (§3.2's dichotomy plus
    the blockchain and browser-based models of §3.1/§3.4)."""

    BLOCKCHAIN = "blockchain"
    FEDERATED = "federated"
    SOCIAL_P2P = "socially_aware_p2p"
    OPEN_P2P = "open_p2p"
    BROWSER_BASED = "browser_based"

    ALL = (BLOCKCHAIN, FEDERATED, SOCIAL_P2P, OPEN_P2P, BROWSER_BASED)


@dataclass(frozen=True)
class Project:
    """One surveyed system."""

    name: str
    problems: Tuple[str, ...]
    network_model: str
    simulated_by: str  # repro subpackage/family that models its mechanism
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.problems:
            raise ReproError(f"project {self.name!r} must tackle a problem")
        for problem in self.problems:
            if problem not in Problem.ALL:
                raise ReproError(f"unknown problem {problem!r} for {self.name!r}")
        if self.network_model not in NetworkModel.ALL:
            raise ReproError(
                f"unknown network model {self.network_model!r} for {self.name!r}"
            )


# Table 1 of the paper, row by row, plus per-project mechanism notes drawn
# from §3's prose.
PROJECTS: Tuple[Project, ...] = (
    # -- Naming (§3.1) -----------------------------------------------------
    Project(
        "Namecoin", (Problem.NAMING,), NetworkModel.BLOCKCHAIN,
        "repro.naming.BlockchainNameRegistry",
        "First blockchain name system; Bitcoin-derived chain stores names",
    ),
    Project(
        "Emercoin", (Problem.NAMING,), NetworkModel.BLOCKCHAIN,
        "repro.naming.BlockchainNameRegistry",
        "Blockchain DNS/identity services",
    ),
    Project(
        "Blockstack", (Problem.NAMING, Problem.DATA_STORAGE), NetworkModel.BLOCKCHAIN,
        "repro.naming.BlockchainNameRegistry",
        "Binds name + public key + zone-file hash on chain; data off-chain",
    ),
    # -- Group communication (§3.2) -----------------------------------------
    Project(
        "Matrix", (Problem.GROUP_COMMUNICATION,), NetworkModel.FEDERATED,
        "repro.groupcomm.ReplicatedFederation",
        "Replicates room data across federated servers; E2E double ratchet",
    ),
    Project(
        "Riot", (Problem.GROUP_COMMUNICATION,), NetworkModel.FEDERATED,
        "repro.groupcomm.ReplicatedFederation",
        "Chat application built on Matrix",
    ),
    Project(
        "Ring", (Problem.GROUP_COMMUNICATION,), NetworkModel.OPEN_P2P,
        "repro.groupcomm.SocialP2PNetwork",
        "Distributed communication platform",
    ),
    Project(
        "Nextcloud", (Problem.GROUP_COMMUNICATION, Problem.DATA_STORAGE),
        NetworkModel.FEDERATED,
        "repro.groupcomm.SingleHomeFederation",
        "Self-hosted file sync and sharing",
    ),
    Project(
        "GNU social", (Problem.GROUP_COMMUNICATION,), NetworkModel.FEDERATED,
        "repro.groupcomm.SingleHomeFederation",
        "OStatus federation; no intrinsic privacy mechanisms",
    ),
    Project(
        "Mastodon", (Problem.GROUP_COMMUNICATION,), NetworkModel.FEDERATED,
        "repro.groupcomm.SingleHomeFederation",
        "OStatus-based; per-instance abuse rules",
    ),
    Project(
        "Friendica", (Problem.GROUP_COMMUNICATION,), NetworkModel.FEDERATED,
        "repro.groupcomm.SingleHomeFederation",
        "pump.io-based; application-level privacy, data expiry",
    ),
    Project(
        "Identi.ca", (Problem.GROUP_COMMUNICATION,), NetworkModel.FEDERATED,
        "repro.groupcomm.SingleHomeFederation",
        "pump.io federated stream server",
    ),
    # -- Data storage (§3.3, Table 2) ------------------------------------------
    Project(
        "IPFS", (Problem.DATA_STORAGE,), NetworkModel.OPEN_P2P,
        "repro.storage.StorageSystemProfile",
        "Content-addressed DHT storage; Bitswap ledgers, no blockchain",
    ),
    Project(
        "MaidSafe", (Problem.DATA_STORAGE,), NetworkModel.OPEN_P2P,
        "repro.storage.StorageSystemProfile",
        "Proof-of-resource, distributed transactions, no blockchain",
    ),
    Project(
        "Secure-scuttlebutt", (Problem.DATA_STORAGE,), NetworkModel.SOCIAL_P2P,
        "repro.groupcomm.SocialP2PNetwork",
        "Unforgeable append-only feeds replicated between friends",
    ),
    Project(
        "Sia", (Problem.DATA_STORAGE,), NetworkModel.BLOCKCHAIN,
        "repro.storage.StorageSystemProfile",
        "Blockchain contracts + proof-of-storage",
    ),
    Project(
        "Storj", (Problem.DATA_STORAGE,), NetworkModel.BLOCKCHAIN,
        "repro.storage.StorageSystemProfile",
        "Payments in storjcoin; proof-of-retrievability",
    ),
    Project(
        "Swarm", (Problem.DATA_STORAGE,), NetworkModel.BLOCKCHAIN,
        "repro.storage.StorageSystemProfile",
        "Ethereum for naming/payments/insurance; SWEAR proof-of-storage",
    ),
    Project(
        "Filecoin", (Problem.DATA_STORAGE,), NetworkModel.BLOCKCHAIN,
        "repro.storage.StorageSystemProfile",
        "Proof-of-replication + proof-of-spacetime market",
    ),
    # -- Web applications (§3.4) --------------------------------------------------
    Project(
        "Beaker", (Problem.WEB_APPLICATIONS,), NetworkModel.BROWSER_BASED,
        "repro.webapps.HostlessSite",
        "Browser creates/hosts sites P2P; fork/merge like Git",
    ),
    Project(
        "ZeroNet", (Problem.WEB_APPLICATIONS,), NetworkModel.BROWSER_BASED,
        "repro.webapps.HostlessSite",
        "Sites seeded by visitors over BitTorrent; Bitcoin-key site ids",
    ),
    Project(
        "Freedom.js", (Problem.WEB_APPLICATIONS,), NetworkModel.BROWSER_BASED,
        "repro.webapps.HostlessSite",
        "Identity/storage/transport APIs; WebRTC + DHT backends",
    ),
)


def projects_for(problem: str) -> List[Project]:
    """Projects tackling a problem category (Table 1 row contents)."""
    if problem not in Problem.ALL:
        raise ReproError(f"unknown problem category {problem!r}")
    return [p for p in PROJECTS if problem in p.problems]


def table1_rows() -> List[Dict[str, str]]:
    """Regenerate Table 1: problem category -> comma-joined project list."""
    return [
        {
            "problem": problem,
            "projects": ", ".join(p.name for p in projects_for(problem)),
        }
        for problem in Problem.ALL
    ]
