"""FaultPlan construction, validation, and JSON round-trips."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    Corrupt,
    Crash,
    DropBurst,
    FaultPlan,
    LatencySpike,
    Partition,
)


class TestEventValidation:
    def test_partition_needs_nonempty_groups(self):
        with pytest.raises(FaultError):
            Partition((), at=1.0)
        with pytest.raises(FaultError):
            Partition(((), ()), at=1.0)

    def test_partition_heal_must_follow_at(self):
        with pytest.raises(FaultError):
            Partition((("a",),), at=10.0, heal_at=10.0)
        with pytest.raises(FaultError):
            Partition((("a",),), at=10.0, heal_at=5.0)

    def test_negative_times_rejected(self):
        with pytest.raises(FaultError):
            Crash("n", at=-1.0)
        with pytest.raises(FaultError):
            Partition((("a",),), at=-0.5)

    def test_crash_restart_must_follow_at(self):
        with pytest.raises(FaultError):
            Crash("n", at=5.0, restart_at=5.0)

    def test_crash_needs_node_id(self):
        with pytest.raises(FaultError):
            Crash("", at=1.0)

    def test_window_must_be_ordered_pair(self):
        with pytest.raises(FaultError):
            DropBurst(window=(10.0, 10.0), prob=0.5)
        with pytest.raises(FaultError):
            DropBurst(window=(10.0,), prob=0.5)

    def test_probabilities_open_interval(self):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(FaultError):
                DropBurst(window=(0.0, 1.0), prob=bad)
            with pytest.raises(FaultError):
                Corrupt(window=(0.0, 1.0), prob=bad)

    def test_latency_factor_must_exceed_one(self):
        for bad in (1.0, 0.5, 0.0, -2.0):
            with pytest.raises(FaultError):
                LatencySpike(window=(0.0, 1.0), factor=bad)

    def test_booleans_are_not_numbers(self):
        with pytest.raises(FaultError):
            Crash("n", at=True)


class TestPlanConstruction:
    def test_events_sorted_by_start_time(self):
        plan = FaultPlan([
            Crash("b", at=20.0),
            Crash("a", at=10.0),
            DropBurst(window=(5.0, 15.0), prob=0.5),
        ])
        assert [e.at for e in plan] == [5.0, 10.0, 20.0]

    def test_rejects_non_events(self):
        with pytest.raises(FaultError):
            FaultPlan([{"kind": "crash"}])

    def test_rejects_empty_name(self):
        with pytest.raises(FaultError):
            FaultPlan([], name="")

    def test_node_ids_deduplicated_sorted(self):
        plan = FaultPlan([
            Crash("b", at=1.0),
            Crash("a", at=2.0),
            Partition((("a", "c"), ("b",)), at=3.0),
        ])
        assert plan.node_ids() == ["a", "b", "c"]

    def test_end_time_covers_heals_and_windows(self):
        plan = FaultPlan([
            Crash("a", at=10.0, restart_at=90.0),
            Partition((("a",),), at=5.0, heal_at=50.0),
            LatencySpike(window=(20.0, 95.0), factor=2.0),
        ])
        assert plan.end_time == 95.0

    def test_len_and_iter(self):
        plan = FaultPlan([Crash("a", at=1.0)])
        assert len(plan) == 1
        assert [e.kind for e in plan] == ["crash"]


class TestSerialization:
    def _full_plan(self):
        return FaultPlan(
            [
                Partition((("a",), ("b", "c")), at=5.0, heal_at=50.0),
                Crash("a", at=10.0, restart_at=40.0),
                Crash("b", at=12.0),
                DropBurst(window=(20.0, 30.0), prob=0.25),
                LatencySpike(window=(22.0, 28.0), factor=3.0),
                Corrupt(window=(24.0, 26.0), prob=0.125),
            ],
            name="full",
        )

    def test_round_trip_dict(self):
        plan = self._full_plan()
        again = FaultPlan.from_dict(plan.to_dict())
        assert again.to_dict() == plan.to_dict()
        assert again.name == "full"

    def test_round_trip_json(self):
        plan = self._full_plan()
        again = FaultPlan.from_json(plan.to_json())
        assert again.fingerprint() == plan.fingerprint()

    def test_fingerprint_stable_and_distinct(self):
        assert self._full_plan().fingerprint() == self._full_plan().fingerprint()
        other = FaultPlan([Crash("a", at=1.0)], name="full")
        assert other.fingerprint() != self._full_plan().fingerprint()

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(FaultError):
            FaultPlan.from_dict(
                {"name": "x", "events": [{"kind": "meteor", "at": 1.0}]}
            )

    def test_from_dict_rejects_bad_shapes(self):
        with pytest.raises(FaultError):
            FaultPlan.from_dict([])
        with pytest.raises(FaultError):
            FaultPlan.from_dict({"name": "x"})
        with pytest.raises(FaultError):
            FaultPlan.from_dict({"name": "x", "events": ["crash"]})
        with pytest.raises(FaultError):
            FaultPlan.from_dict(
                {"name": "x", "events": [{"kind": "crash", "bogus": 1}]}
            )

    def test_from_json_rejects_invalid_json(self):
        with pytest.raises(FaultError):
            FaultPlan.from_json("{not json")

    def test_from_file_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(self._full_plan().to_json(), encoding="utf-8")
        assert FaultPlan.from_file(str(path)).fingerprint() == (
            self._full_plan().fingerprint()
        )

    def test_from_file_missing(self, tmp_path):
        with pytest.raises(FaultError):
            FaultPlan.from_file(str(tmp_path / "absent.json"))

    def test_validation_applies_on_load(self):
        with pytest.raises(FaultError):
            FaultPlan.from_dict({
                "name": "x",
                "events": [{"kind": "drop_burst", "prob": 2.0,
                            "window": [0.0, 1.0]}],
            })
