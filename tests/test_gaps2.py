"""Second gap-test batch: transport loss paths, pubsub under failure,
federation helpers, provider internals, room semantics."""

import pytest

from repro.errors import (
    GroupCommError,
    RpcTimeoutError,
    StorageError,
)
from repro.groupcomm import Room, SingleHomeFederation
from repro.net import ConstantLatency, Network
from repro.net.topology import ring_lattice
from repro.sim import RngStreams, Simulator


class TestRpcLossPaths:
    def test_response_can_be_lost(self):
        # With 50% loss, some RPCs lose the *response* (request delivered,
        # handler ran, answer dropped) — the caller still times out.
        sim = Simulator()
        network = Network(
            sim, RngStreams(51), latency=ConstantLatency(0.01), loss_rate=0.5
        )
        network.create_node("client")
        server = network.create_node("server")
        calls = {"handled": 0}

        def handler(node, payload, sender):
            calls["handled"] += 1
            return "pong"

        server.register_handler("m", handler)
        outcomes = {"ok": 0, "timeout": 0}

        def client():
            for _ in range(60):
                try:
                    yield from network.rpc("client", "server", "m", timeout=1.0)
                    outcomes["ok"] += 1
                except RpcTimeoutError:
                    outcomes["timeout"] += 1

        sim.run_process(client())
        assert outcomes["timeout"] > 0
        assert outcomes["ok"] > 0
        # Some handled requests produced lost responses.
        assert calls["handled"] > outcomes["ok"]

    def test_server_dying_before_response_times_out(self):
        sim = Simulator()
        network = Network(sim, RngStreams(52), latency=ConstantLatency(0.01))
        network.create_node("client")
        server = network.create_node("server")

        def slow(node, payload, sender):
            yield 5.0  # dies mid-work
            return "never sent"

        server.register_handler("m", slow)
        sim.schedule(1.0, server.set_online, False, 1.0)

        def client():
            try:
                yield from network.rpc("client", "server", "m", timeout=10.0)
            except RpcTimeoutError:
                return "lost"

        assert sim.run_process(client()) == "lost"


class TestPubSubUnderFailure:
    def test_offline_node_breaks_ring_flood(self):
        from repro.gossip import build_pubsub_overlay

        sim = Simulator()
        network = Network(sim, RngStreams(53), latency=ConstantLatency(0.01))
        graph = ring_lattice(6, k=2)  # pure ring: n3 is a cut vertex set
        overlay = build_pubsub_overlay(network, graph)
        for node in overlay.values():
            node.subscribe("t")
        # Cut the ring in two places: n1 and n4 offline.
        network.node("n1").set_online(False, 0.0)
        network.node("n4").set_online(False, 0.0)
        overlay["n0"].publish("t", "m")
        sim.run()
        # n0's remaining neighbour n5 gets it; n2/n3 are cut off.
        assert overlay["n5"].received_payloads("t") == ["m"]
        assert overlay["n2"].received_payloads("t") == []
        assert overlay["n3"].received_payloads("t") == []

    def test_returning_node_missed_messages_forever(self):
        # Flooding has no repair: §3.2's connectedness threat under churn.
        from repro.gossip import build_pubsub_overlay

        sim = Simulator()
        network = Network(sim, RngStreams(54), latency=ConstantLatency(0.01))
        graph = ring_lattice(4, k=2)
        overlay = build_pubsub_overlay(network, graph)
        for node in overlay.values():
            node.subscribe("t")
        network.node("n2").set_online(False, 0.0)
        overlay["n0"].publish("t", "missed")
        sim.run()
        network.node("n2").set_online(True, sim.now)
        sim.run(until=sim.now + 100.0)
        assert overlay["n2"].received_payloads("t") == []


class TestFederationHelpers:
    def test_add_users_bulk_assignment(self):
        sim = Simulator()
        network = Network(sim, RngStreams(55), latency=ConstantLatency(0.01))
        fed = SingleHomeFederation(network, ["s0", "s1"])
        users = [f"u{i}" for i in range(10)]
        fed.add_users(users, seed=3)
        homes = {fed.home_of(u) for u in users}
        assert homes == {"s0", "s1"}
        # Balanced: 5 per server.
        from collections import Counter

        counts = Counter(fed.home_of(u) for u in users)
        assert set(counts.values()) == {5}

    def test_unknown_server_rejected(self):
        sim = Simulator()
        network = Network(sim, RngStreams(56))
        fed = SingleHomeFederation(network, ["s0"])
        with pytest.raises(GroupCommError):
            fed.add_user("u", home="mystery")

    def test_room_membership_check_before_creation(self):
        sim = Simulator()
        network = Network(sim, RngStreams(57))
        fed = SingleHomeFederation(network, ["s0"])
        with pytest.raises(GroupCommError):
            fed.create_room("r", ["homeless-user"])

    def test_servers_for_room(self):
        sim = Simulator()
        network = Network(sim, RngStreams(58))
        fed = SingleHomeFederation(network, ["s0", "s1", "s2"])
        fed.add_user("a", home="s0")
        fed.add_user("b", home="s1")
        fed.create_room("r", ["a", "b"])
        assert fed.servers_for_room("r") == {"s0", "s1"}


class TestRoomSemantics:
    def test_public_room_admits_anyone(self):
        room = Room("plaza", set(), public=True)
        room.require_member("stranger")  # no exception

    def test_private_room_rejects_non_member(self):
        room = Room("private", {"alice"})
        with pytest.raises(GroupCommError):
            room.require_member("stranger")

    def test_membership_management(self):
        room = Room("r", set())
        room.add_member("alice")
        room.require_member("alice")
        room.remove_member("alice")
        with pytest.raises(GroupCommError):
            room.require_member("alice")


class TestProviderInternals:
    def test_incremental_put_accumulates(self):
        from repro.storage import StorageProvider, make_random_blob

        sim = Simulator()
        streams = RngStreams(59)
        network = Network(sim, streams, latency=ConstantLatency(0.01))
        provider = StorageProvider(network, "p")
        network.create_node("client")
        blob = make_random_blob(streams, 4 * 512, chunk_size=512)

        def scenario():
            # Upload chunk by chunk (resumable transfer).
            for index, chunk in enumerate(blob.chunks):
                yield from network.rpc(
                    "client", "p", "store.put",
                    {
                        "commitment_id": blob.merkle_root,
                        "chunk_count": len(blob.chunks),
                        "entries": [(index, chunk, blob.proof_for(index))],
                    },
                )
            return provider.commitments[blob.merkle_root]

        stored = sim.run_process(scenario())
        assert len(stored.payloads) == 4
        assert stored.physically_stored_bytes == blob.size_bytes

    def test_drop_chunks_validation(self):
        from repro.storage import StorageProvider, make_random_blob

        sim = Simulator()
        streams = RngStreams(60)
        network = Network(sim, streams)
        provider = StorageProvider(network, "p")
        blob = make_random_blob(streams, 1024, chunk_size=512)
        provider.accept_blob(blob)
        with pytest.raises(StorageError):
            provider.drop_chunks(blob.merkle_root, 1.5, streams.stream("x"))
        with pytest.raises(StorageError):
            provider.drop_chunks("unknown", 0.5, streams.stream("x"))
